"""The paper-grounded lint rules (XQL001–XQL008) and their registry.

Each rule encodes one footgun the paper hit in 2004:

* **XQL001** — the Galax optimizer "helpfully" deleting ``trace`` probes
  bound to dead variables;
* **XQL002** — the error-as-value convention used without its mandatory
  ``is-error`` check ("nearly every function call [became] a half-dozen
  lines");
* **XQL003** — positional predicates over sequences whose flattening is
  not statically fixed (the E1 sequence-indexing table, and the
  ``Index out of bounds, without any information of where`` death);
* **XQL004** — attribute constructors folding into the parent element or
  erroring when they arrive after content (the E2 table);
* **XQL005** — unused functions/variables and unreachable branches (what
  the optimizer silently removes, the author silently loses);
* **XQL006** — variable shadowing in FLWOR clauses (aggravated by the
  paper's syntax complaints: ``$n-1`` is a *name*, so shadowing is easy
  to introduce while "fixing" exactly that);
* **XQL007 / XQL008** — the name-resolution and arity checks that used to
  live in :mod:`repro.xquery.statictype`, re-homed as lint rules (their
  W3C codes XPST0008/XPST0017 ride along as ``spec_code``);
* **XQL009** — FLWOR nests that are unconstrained cartesian products: a
  later ``for`` clause with no join predicate (in its source or a
  ``where``) tying it to an earlier binding multiplies the tuple stream
  by its whole source, and a 2004 engine evaluated exactly that;
* **XQL010–XQL012** — the schema-aware checks from the typed inference
  pass (:mod:`.types` against :mod:`.schema`): dead paths that can never
  match an exportable node, comparisons/arithmetic that can only raise
  XPTY0004, and predicates provably vacuous against attribute domains
  (the paper's silently-empty-path failure mode, caught before running).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .. import ast
from ..optimizer import contains_trace, free_variables, has_side_effects
from ...xdm import ItemType
from .cardinality import (
    Env,
    iter_scoped,
    module_environments,
    positional_index,
)
from .diagnostics import Diagnostic
from .schema import awb_export_schema
from .types import ModuleTypeAnalysis, TypeAnalyzer


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    code: str
    slug: str
    summary: str
    paper: str  # where in the paper the footgun lives
    check: Callable[["ModuleAnalysis"], Iterable[Diagnostic]]


RULES: Dict[str, Rule] = {}


def rule(code: str, slug: str, summary: str, paper: str):
    """Class decorator-style registration for rule check functions."""

    def register(fn: Callable[["ModuleAnalysis"], Iterable[Diagnostic]]):
        RULES[code] = Rule(code=code, slug=slug, summary=summary, paper=paper, check=fn)
        return fn

    return register


class ModuleAnalysis:
    """Shared per-module facts the rules draw on.

    Built once per :func:`analyze_module` call: cardinality analyzer,
    initial environments, the fallible-function fixpoint, and the
    checker-function set.  ``has_body`` is False for library modules
    (prolog only, body synthesized) — some rules relax there.
    """

    def __init__(self, module: ast.Module, config=None, has_body: Optional[bool] = None):
        self.module = module
        self.config = config
        self.has_body = module.body is not None if has_body is None else has_body
        schema = None
        if getattr(config, "lint_schema", "awb") != "off":
            schema = awb_export_schema()
        self.analyzer = TypeAnalyzer(module, schema=schema)
        self.body_env, self._function_envs = module_environments(module, self.analyzer)
        self._fallible: Optional[Set[str]] = None
        self._constructors: Optional[Set[str]] = None
        self._checkers: Optional[Set[str]] = None
        self._types: Optional[ModuleTypeAnalysis] = None

    @property
    def types(self) -> ModuleTypeAnalysis:
        """The whole-module typed pass (scope issues + XQL010-012 findings)."""
        if self._types is None:
            self._types = ModuleTypeAnalysis(self.module, analyzer=self.analyzer)
        return self._types

    # -- traversal helpers --------------------------------------------------

    def units(self) -> Iterator[Tuple[str, object, Env]]:
        """Yield ``(owner, root_expr, initial_env)`` per function and body."""
        for function in self.module.functions:
            yield function.name, function.body, self._function_envs[id(function)]
        for declaration in self.module.variables:
            if declaration.value is not None:
                yield f"${declaration.name}", declaration.value, self.body_env
        if self.module.body is not None:
            yield "<body>", self.module.body, self.body_env

    def scoped(self) -> Iterator[Tuple[str, object, Env]]:
        """Yield ``(owner, expr, env)`` for every expression in the module."""
        for owner, root, env in self.units():
            for expr, scope in iter_scoped(root, env, self.analyzer):
                yield owner, expr, scope

    # -- the error-as-value convention (XQL002 machinery) -------------------

    @staticmethod
    def _local(name: str) -> str:
        return name.split(":")[-1]

    def checker_functions(self) -> Set[str]:
        """Functions that *test* for an error value (``local:is-error``):
        their body applies ``instance of element(error)`` to a parameter."""
        if self._checkers is None:
            checkers: Set[str] = set()
            for function in self.module.functions:
                params = {p.name for p in function.params}
                found: List[bool] = []

                def visit(node, params=params, found=found) -> None:
                    if (
                        isinstance(node, ast.InstanceOf)
                        and node.sequence_type is not None
                        and node.sequence_type.item_type is not None
                        and node.sequence_type.item_type.category == ItemType.NODE
                        and node.sequence_type.item_type.node_kind == "element"
                        and node.sequence_type.item_type.name == "error"
                        and isinstance(node.operand, ast.VarRef)
                        and node.operand.name in params
                    ):
                        found.append(True)

                ast.walk(function.body, visit)
                if found:
                    checkers.add(self._local(function.name))
            self._checkers = checkers
        return self._checkers

    @staticmethod
    def _constructs_error_element(expr) -> bool:
        found: List[bool] = []

        def visit(node) -> None:
            if isinstance(node, ast.DirectElement) and node.name == "error":
                found.append(True)
            elif isinstance(node, ast.ComputedElement) and node.name == "error":
                found.append(True)

        ast.walk(expr, visit)
        return bool(found)

    def fallible_functions(self) -> Tuple[Set[str], Set[str]]:
        """``(fallible, constructors)`` by local name.

        *Constructors* always return an error element (``local:mk-error``);
        calling one is intentional construction, never flagged.  *Fallible*
        functions may return an error element — directly, or by containing
        an unguarded call to another fallible function (fixpoint).
        """
        if self._fallible is None:
            constructors: Set[str] = set()
            fallible: Set[str] = set()
            for function in self.module.functions:
                body = _unwrap_parens(function.body)
                if (
                    isinstance(body, (ast.DirectElement, ast.ComputedElement))
                    and body.name == "error"
                ):
                    constructors.add(self._local(function.name))
                if self._constructs_error_element(function.body):
                    fallible.add(self._local(function.name))
            changed = True
            while changed:
                changed = False
                for function in self.module.functions:
                    local = self._local(function.name)
                    if local in fallible:
                        continue
                    # tail-position propagation spreads fallibility too, so
                    # the fixpoint does NOT exempt tail calls.
                    if self._unguarded_calls(
                        function.body, fallible | constructors, exempt_tail=False
                    ):
                        fallible.add(local)
                        changed = True
            self._fallible = fallible
            self._constructors = constructors
        return self._fallible, self._constructors

    def _unguarded_calls(
        self, root, fallible: Set[str], exempt_tail: bool = True
    ) -> List[ast.FunctionCall]:
        """Calls to *fallible* functions in *root* whose result is never
        passed through a checker (``local:is-error``).

        With *exempt_tail*, calls in result (tail) position are treated as
        guarded: returning a fallible result unchecked is the convention's
        propagation idiom — the caller checks.
        """
        checkers = self.checker_functions()
        calls: List[ast.FunctionCall] = []
        guarded_ids: Set[int] = set()
        checked_vars: Set[str] = set()
        if exempt_tail:
            guarded_ids.update(id(node) for node in _result_roots(root))

        def visit(node) -> None:
            if isinstance(node, ast.FunctionCall):
                if self._local(node.name) in fallible:
                    calls.append(node)
                if self._local(node.name) in checkers:
                    for arg in node.args:
                        if isinstance(arg, ast.VarRef):
                            checked_vars.add(arg.name)
                        for inner in _result_roots(arg):
                            guarded_ids.add(id(inner))

        ast.walk(root, visit)

        def mark_guarded_lets(node) -> None:
            if isinstance(node, ast.FLWOR):
                for clause in node.clauses:
                    if (
                        isinstance(clause, ast.LetClause)
                        and clause.var in checked_vars
                    ):
                        for inner in _result_roots(clause.value):
                            guarded_ids.add(id(inner))

        ast.walk(root, mark_guarded_lets)
        return [call for call in calls if id(call) not in guarded_ids]


def _unwrap_parens(expr):
    """Strip no-op wrappers: a parenthesized expression parses as a
    step-less, anchor-less PathExpr."""
    while (
        isinstance(expr, ast.PathExpr)
        and expr.anchor is None
        and not expr.steps
        and expr.first is not None
    ):
        expr = expr.first
    return expr


def _result_roots(expr) -> List[object]:
    """The sub-expressions a value can *be* (through parens, conditionals
    and try/catch) — where a fallible call's result escapes unwrapped."""
    expr = _unwrap_parens(expr)
    if isinstance(expr, ast.IfExpr):
        roots = _result_roots(expr.then_branch)
        if expr.else_branch is not None:
            roots += _result_roots(expr.else_branch)
        return [expr] + roots
    if isinstance(expr, ast.TryCatch):
        return [expr] + _result_roots(expr.body) + _result_roots(expr.handler)
    if isinstance(expr, ast.FLWOR):
        return [expr] + _result_roots(expr.result)
    return [expr]


def _flwor_downstream_names(flwor: ast.FLWOR, index: int) -> Set[str]:
    """Free variables referenced after clause *index* — exactly the
    optimizer's liveness computation, shared so XQL001 predicts it."""
    downstream: Set[str] = set()
    for later in flwor.clauses[index + 1 :]:
        if isinstance(later, ast.ForClause):
            downstream |= free_variables(later.source)
        elif isinstance(later, ast.LetClause):
            downstream |= free_variables(later.value)
        elif isinstance(later, ast.WhereClause):
            downstream |= free_variables(later.condition)
        elif isinstance(later, ast.OrderByClause):
            for spec in later.specs:
                downstream |= free_variables(spec.key)
    downstream |= free_variables(flwor.result)
    return downstream


def _iter_flwors(analysis: ModuleAnalysis) -> Iterator[Tuple[str, ast.FLWOR]]:
    for owner, root, _env in analysis.units():
        found: List[ast.FLWOR] = []
        ast.walk(root, lambda n: found.append(n) if isinstance(n, ast.FLWOR) else None)
        for flwor in found:
            yield owner, flwor


# ---------------------------------------------------------------------------
# XQL001 — trace() in dead-variable position
# ---------------------------------------------------------------------------


@rule(
    "XQL001",
    "dead-trace",
    "trace() bound to an unused variable: the 2004 dead-code optimizer "
    "silently deletes the binding and the trace with it",
    '"Simply adding the trace introduces a dead variable $dummy, which the '
    'Galax compiler helpfully optimizes away — along with the call to trace."',
)
def check_dead_trace(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    severity = "warning"
    config = analysis.config
    if config is not None and getattr(config, "optimize", False) and getattr(
        config, "trace_is_dead_code", False
    ):
        severity = "error"  # this engine *will* eat the probe
    for owner, flwor in _iter_flwors(analysis):
        for index, clause in enumerate(flwor.clauses):
            if not isinstance(clause, ast.LetClause):
                continue
            if not contains_trace(clause.value):
                continue
            if clause.var in _flwor_downstream_names(flwor, index):
                continue
            # the buggy optimizer keeps the let only for error(); with
            # trace demoted to dead code, this binding is gone.
            if has_side_effects(clause.value, trace_is_dead_code=True):
                continue
            yield Diagnostic(
                code="XQL001",
                severity=severity,
                message=(
                    f"in {owner}: trace() is bound to unused variable "
                    f"${clause.var}; the 2004 dead-code pass deletes this "
                    f"binding and the trace output vanishes"
                ),
                line=clause.line or clause.value.line,
                column=clause.column or clause.value.column,
                rule="dead-trace",
                hint=f"insinuate the trace into live code: "
                f"let ${clause.var} := trace(..., <live value>)",
            )


# ---------------------------------------------------------------------------
# XQL002 — error-as-value result used without a check
# ---------------------------------------------------------------------------


@rule(
    "XQL002",
    "unchecked-error-value",
    "result of a fallible function (one that may return <error>) used "
    "without an is-error check",
    '"[The convention] turned nearly every function call into a half-dozen '
    'lines of code" — and forgetting those lines silently propagates an '
    "<error> element into the document.",
)
def check_unchecked_error_value(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    fallible, constructors = analysis.fallible_functions()
    flagged = fallible - constructors
    if not flagged:
        return
    checkers = analysis.checker_functions()
    if not checkers:
        # no is-error-style checker declared: the convention is not in
        # force in this module, so every "fallible" call would be noise.
        return
    for owner, root, _env in analysis.units():
        # tail propagation is fine inside functions; an unchecked fallible
        # result in the module body flows straight into the output.
        is_function = not owner.startswith(("<", "$"))
        for call in analysis._unguarded_calls(root, flagged, exempt_tail=is_function):
            yield Diagnostic(
                code="XQL002",
                severity="warning",
                message=(
                    f"in {owner}: result of fallible {call.name}() is used "
                    f"without an is-error check; an <error> element can flow "
                    f"into the output"
                ),
                line=call.line,
                column=call.column,
                rule="unchecked-error-value",
                hint="bind the result with let and test it: "
                "let $r := ... return if (local:is-error($r)) then ... else ...",
            )


# ---------------------------------------------------------------------------
# XQL003 — positional predicates the E1 table warns about
# ---------------------------------------------------------------------------


@rule(
    "XQL003",
    "positional-predicate",
    "positional predicate on a possibly-empty or non-singleton sequence: "
    "which item is selected depends on runtime flattening",
    "The E1 sequence-indexing table: ($X, $Y, $Z)[2] slides across X, Y and "
    'Z as parts flatten; Galax reported the surprises as "Index out of '
    'bounds, without any information of where".',
)
def check_positional_predicates(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    for owner, expr, env in analysis.scoped():
        if not isinstance(expr, ast.FilterExpr):
            continue
        base_card = analysis.analyzer.card(expr.base, env)
        for predicate in expr.predicates:
            n = positional_index(predicate)
            if n is None:
                continue
            if n < 1:
                yield Diagnostic(
                    code="XQL003",
                    severity="error",
                    message=(
                        f"in {owner}: positional predicate [{n}] can never "
                        f"select an item (positions are 1-based)"
                    ),
                    line=predicate.line or expr.line,
                    column=predicate.column or expr.column,
                    rule="positional-predicate",
                )
            elif base_card.hi is not None and n > base_card.hi:
                yield Diagnostic(
                    code="XQL003",
                    severity="error",
                    message=(
                        f"in {owner}: positional predicate [{n}] can never "
                        f"select an item — the base sequence has at most "
                        f"{base_card.hi} item(s)"
                    ),
                    line=predicate.line or expr.line,
                    column=predicate.column or expr.column,
                    rule="positional-predicate",
                )
            else:
                base = _unwrap_parens(expr.base)
                if isinstance(base, ast.SequenceExpr) and any(
                    not analysis.analyzer.card(item, env).is_exactly_one
                    for item in base.items
                ):
                    yield Diagnostic(
                        code="XQL003",
                        severity="warning",
                        message=(
                            f"in {owner}: [{n}] indexes a concatenation whose "
                            f"parts may be empty or plural; which item is at "
                            f"position {n} depends on runtime flattening (E1)"
                        ),
                        line=predicate.line or expr.line,
                        column=predicate.column or expr.column,
                        rule="positional-predicate",
                        hint="make each part exactly-one (wrap with "
                        "exactly-one()) or select from a single sub-sequence",
                    )


# ---------------------------------------------------------------------------
# XQL004 — attribute constructor folding surprises (E2)
# ---------------------------------------------------------------------------


def _attribute_content_findings(
    analysis: ModuleAnalysis,
    owner: str,
    element_name: str,
    parts: List[object],
    env: Env,
    static_attr_names: List[str],
    where,
) -> Iterator[Diagnostic]:
    analyzer = analysis.analyzer
    seen_names = list(static_attr_names)
    seen_content = False
    for part in parts:
        if isinstance(part, ast.DirectText):
            seen_content = True
            continue
        if not isinstance(part, ast.Expr):
            seen_content = True
            continue
        if analyzer.may_construct_attribute(part, env):
            line = getattr(part, "line", 0) or where.line
            column = getattr(part, "column", 0) or where.column
            if seen_content:
                yield Diagnostic(
                    code="XQL004",
                    severity="error",
                    message=(
                        f"in {owner}: attribute node in <{element_name}> "
                        f"content arrives after non-attribute content — this "
                        f"raises XQTY0024 at runtime (E2)"
                    ),
                    line=line,
                    column=column,
                    rule="attribute-folding",
                    spec_code="XQTY0024",
                )
            else:
                name = analyzer.static_attribute_name(part, env)
                if name is not None and name in seen_names:
                    yield Diagnostic(
                        code="XQL004",
                        severity="warning",
                        message=(
                            f"in {owner}: duplicate attribute name "
                            f"{name!r} on <{element_name}>: which value "
                            f'survives is "one of two results" (and the '
                            f"Galax bug kept both)"
                        ),
                        line=line,
                        column=column,
                        rule="attribute-folding",
                        spec_code="XQDY0025",
                    )
                if name is not None:
                    seen_names.append(name)
                if isinstance(where, ast.DirectElement):
                    yield Diagnostic(
                        code="XQL004",
                        severity="info",
                        message=(
                            f"in {owner}: enclosed expression at the start of "
                            f"<{element_name}> content may yield attribute "
                            f"nodes, which silently fold into "
                            f"<{element_name}>'s attributes (E2)"
                        ),
                        line=line,
                        column=column,
                        rule="attribute-folding",
                    )
        else:
            seen_content = True


@rule(
    "XQL004",
    "attribute-folding",
    "attribute constructor in element content: silently folds into the "
    "parent's attributes, duplicates one of two results, or errors after "
    "content",
    'The E2 attribute-folding table ("Treatment of Child Elements"): a '
    "leading attribute node becomes an attribute of the parent; duplicates "
    'give "one of two results" (Galax kept both); late attributes error.',
)
def check_attribute_folding(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    for owner, expr, env in analysis.scoped():
        if isinstance(expr, ast.DirectElement):
            static_names: List[str] = []
            for attr_name, _parts in expr.attributes:
                if attr_name in static_names:
                    yield Diagnostic(
                        code="XQL004",
                        severity="warning",
                        message=(
                            f"in {owner}: <{expr.name}> declares attribute "
                            f"{attr_name!r} twice"
                        ),
                        line=expr.line,
                        column=expr.column,
                        rule="attribute-folding",
                        spec_code="XQDY0025",
                    )
                static_names.append(attr_name)
            yield from _attribute_content_findings(
                analysis, owner, expr.name, expr.content, env, static_names, expr
            )
        elif isinstance(expr, ast.ComputedElement) and expr.content is not None:
            content = _unwrap_parens(expr.content)
            parts = (
                list(content.items)
                if isinstance(content, ast.SequenceExpr)
                else [content]
            )
            # computed constructors put attributes first by idiom; only the
            # attribute-after-content error is worth reporting there.
            for finding in _attribute_content_findings(
                analysis,
                owner,
                expr.name or "element",
                parts,
                env,
                [],
                expr,
            ):
                if finding.severity == "error":
                    yield finding


# ---------------------------------------------------------------------------
# XQL005 — unused declarations and unreachable branches
# ---------------------------------------------------------------------------


@rule(
    "XQL005",
    "dead-code",
    "unused function, unused variable, or unreachable branch",
    "What the optimizer silently removes, the author silently loses — the "
    "trace bug was exactly a dead-code pass disagreeing with the author "
    "about what mattered.",
)
def check_dead_code(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    module = analysis.module
    # unused user functions (only meaningful when a body exists to reach them)
    if analysis.has_body:
        called: Set[str] = set()

        def note_call(node) -> None:
            if isinstance(node, ast.FunctionCall):
                called.add(node.name.split(":")[-1])

        for _owner, root, _env in analysis.units():
            ast.walk(root, note_call)
        for function in module.functions:
            if function.name.split(":")[-1] not in called:
                yield Diagnostic(
                    code="XQL005",
                    severity="warning",
                    message=f"function {function.name}() is never called",
                    line=function.line,
                    column=function.column,
                    rule="dead-code",
                )
    # unused global variables
    referenced: Set[str] = set()

    def note_var(node) -> None:
        if isinstance(node, ast.VarRef):
            referenced.add(node.name)

    for _owner, root, _env in analysis.units():
        ast.walk(root, note_var)
    for declaration in module.variables:
        if declaration.name not in referenced:
            yield Diagnostic(
                code="XQL005",
                severity="warning",
                message=f"variable ${declaration.name} is declared but never used",
                line=declaration.line,
                column=declaration.column,
                rule="dead-code",
            )
    # unused let bindings (the optimizer removes them without a word)
    for owner, flwor in _iter_flwors(analysis):
        for index, clause in enumerate(flwor.clauses):
            if not isinstance(clause, ast.LetClause):
                continue
            if clause.var in _flwor_downstream_names(flwor, index):
                continue
            if contains_trace(clause.value):
                continue  # XQL001's territory
            survives = has_side_effects(clause.value, trace_is_dead_code=True)
            yield Diagnostic(
                code="XQL005",
                severity="info",
                message=(
                    f"in {owner}: let ${clause.var} is never used"
                    + (
                        " (kept only for its error() side effect)"
                        if survives
                        else "; the optimizer removes it silently"
                    )
                ),
                line=clause.line or (clause.value.line if clause.value else 0),
                column=clause.column or (clause.value.column if clause.value else 0),
                rule="dead-code",
            )
    # unreachable branches
    for owner, expr, _env in analysis.scoped():
        if isinstance(expr, ast.IfExpr):
            condition = _const_bool(expr.condition)
            if condition is not None:
                dead = expr.else_branch if condition else expr.then_branch
                which = "else" if condition else "then"
                if dead is None:
                    continue
                yield Diagnostic(
                    code="XQL005",
                    severity="warning",
                    message=(
                        f"in {owner}: condition is constantly "
                        f"{str(condition).lower()}; the {which} "
                        f"branch is unreachable"
                    ),
                    line=getattr(dead, "line", 0) or expr.line,
                    column=getattr(dead, "column", 0) or expr.column,
                    rule="dead-code",
                )
        elif isinstance(expr, ast.FLWOR):
            for clause in expr.clauses:
                if (
                    isinstance(clause, ast.WhereClause)
                    and _const_bool(clause.condition) is False
                ):
                    yield Diagnostic(
                        code="XQL005",
                        severity="warning",
                        message=(
                            f"in {owner}: where clause is constantly false; "
                            f"the FLWOR always returns ()"
                        ),
                        line=clause.line or expr.line,
                        column=clause.column or expr.column,
                        rule="dead-code",
                    )


def _const_bool(expr) -> Optional[bool]:
    """The statically known truth value of a condition, if any.

    XQuery has no boolean literals — ``true()``/``false()`` are function
    calls — so this looks through both shapes (the Literal form appears
    after constant folding).
    """
    expr = _unwrap_parens(expr)
    if isinstance(expr, ast.Literal) and isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, ast.FunctionCall) and not expr.args:
        local = expr.name.split(":")[-1]
        if local == "true":
            return True
        if local == "false":
            return False
    return None


# ---------------------------------------------------------------------------
# XQL006 — variable shadowing in FLWOR clauses
# ---------------------------------------------------------------------------


@rule(
    "XQL006",
    "shadowed-variable",
    "a for/let/quantifier binding reuses a name already in scope",
    "The paper's syntax lesson: with $n-1 scanning as one variable name and "
    "bare names meaning node tests, silently rebinding $x is an easy way to "
    "read the wrong value with no diagnostic at all.",
)
def check_shadowing(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    global_names = {declaration.name for declaration in analysis.module.variables}

    def walk(owner: str, expr, scope: Set[str]) -> Iterator[Diagnostic]:
        if expr is None or not isinstance(expr, ast.Expr):
            return
        if isinstance(expr, ast.FLWOR):
            inner = set(scope)
            for clause in expr.clauses:
                if isinstance(clause, ast.ForClause):
                    yield from walk(owner, clause.source, inner)
                    for name, line, column in (
                        (clause.var, clause.line, clause.column),
                        (clause.position_var, clause.line, clause.column),
                    ):
                        if name and name in inner:
                            yield _shadow(owner, "for", name, line, column)
                        if name:
                            inner.add(name)
                elif isinstance(clause, ast.LetClause):
                    yield from walk(owner, clause.value, inner)
                    if clause.var in inner:
                        yield _shadow(owner, "let", clause.var, clause.line, clause.column)
                    inner.add(clause.var)
                elif isinstance(clause, ast.WhereClause):
                    yield from walk(owner, clause.condition, inner)
                elif isinstance(clause, ast.OrderByClause):
                    for spec in clause.specs:
                        yield from walk(owner, spec.key, inner)
            yield from walk(owner, expr.result, inner)
            return
        if isinstance(expr, ast.Quantified):
            inner = set(scope)
            for name, source in expr.bindings:
                yield from walk(owner, source, inner)
                if name in inner:
                    yield _shadow(owner, expr.quantifier, name, source.line, source.column)
                inner.add(name)
            yield from walk(owner, expr.satisfies, inner)
            return
        if isinstance(expr, ast.Typeswitch):
            yield from walk(owner, expr.operand, scope)
            for case in expr.cases:
                inner = set(scope)
                if case.var:
                    if case.var in inner:
                        yield _shadow(owner, "case", case.var, expr.line, expr.column)
                    inner.add(case.var)
                yield from walk(owner, case.result, inner)
            inner = set(scope)
            if expr.default_var:
                if expr.default_var in inner:
                    yield _shadow(owner, "default", expr.default_var, expr.line, expr.column)
                inner.add(expr.default_var)
            yield from walk(owner, expr.default, inner)
            return
        if isinstance(expr, ast.TryCatch):
            yield from walk(owner, expr.body, scope)
            inner = set(scope)
            if expr.catch_var:
                if expr.catch_var in inner:
                    yield _shadow(owner, "catch", expr.catch_var, expr.line, expr.column)
                inner.add(expr.catch_var)
            yield from walk(owner, expr.handler, inner)
            return
        for child in ast.children_of(expr):
            yield from walk(owner, child, scope)

    for function in analysis.module.functions:
        scope = set(global_names)
        for param in function.params:
            if param.name in scope:
                yield Diagnostic(
                    code="XQL006",
                    severity="warning",
                    message=(
                        f"in {function.name}: parameter ${param.name} shadows "
                        f"the global variable of the same name"
                    ),
                    line=param.line or function.line,
                    column=param.column or function.column,
                    rule="shadowed-variable",
                )
            scope.add(param.name)
        yield from walk(function.name, function.body, scope)
    if analysis.module.body is not None:
        yield from walk("<body>", analysis.module.body, set(global_names))


def _shadow(owner: str, kind: str, name: str, line: int, column: int) -> Diagnostic:
    return Diagnostic(
        code="XQL006",
        severity="warning",
        message=(
            f"in {owner}: {kind} binding ${name} shadows an in-scope "
            f"variable of the same name"
        ),
        line=line,
        column=column,
        rule="shadowed-variable",
    )


# ---------------------------------------------------------------------------
# XQL007 / XQL008 — the re-homed statictype checks
# ---------------------------------------------------------------------------

_SPEC_TO_XQL = {"XPST0008": "XQL007", "XPST0017": "XQL008"}


@rule(
    "XQL007",
    "undefined-variable",
    "reference to an undeclared variable (re-homed XPST0008)",
    'Under galax_diagnostics this surfaced as "Internal_Error: Variable '
    "'$glx:dot' not found.\" with no location at all.",
)
def check_undefined_variables(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    yield from _rehomed(analysis, "XQL007")


@rule(
    "XQL008",
    "unknown-function",
    "call to an unknown function or with the wrong arity (re-homed XPST0017)",
    "The paper's author had no analyzer at all: name and arity mistakes "
    "surfaced only when the query happened to execute the call.",
)
def check_unknown_functions(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    yield from _rehomed(analysis, "XQL008")


def _rehomed(analysis: ModuleAnalysis, code: str) -> Iterator[Diagnostic]:
    for issue in analysis.types.issues:
        mapped = _SPEC_TO_XQL.get(issue.code)
        if mapped != code:
            continue
        yield Diagnostic(
            code=mapped,
            severity="error",
            message=issue.message,
            line=issue.line,
            column=issue.column,
            rule=RULES[mapped].slug if mapped in RULES else "",
            spec_code=issue.code,
        )


# ---------------------------------------------------------------------------
# XQL009 — unconstrained cartesian products in FLWOR nests
# ---------------------------------------------------------------------------


def _flatten_flwor_nest(flwor: ast.FLWOR) -> Tuple[List[object], Set[int]]:
    """The nest's clause list with directly-nested result FLWORs merged in.

    ``for $a in X return for $b in Y return ...`` is the same nest as the
    two-clause spelling; merging lets the join check look across the seam.
    Returns ``(clauses, absorbed_flwor_ids)`` so the caller can skip the
    absorbed inner FLWORs when they come around on their own.
    """
    clauses: List[object] = list(flwor.clauses)
    absorbed: Set[int] = set()
    result = _unwrap_parens(flwor.result)
    while isinstance(result, ast.FLWOR):
        absorbed.add(id(result))
        clauses.extend(result.clauses)
        result = _unwrap_parens(result.result)
    return clauses, absorbed


@rule(
    "XQL009",
    "cartesian-product",
    "a later for clause neither references an earlier for binding nor is "
    "linked to one by a where clause: the nest multiplies out as an "
    "unconstrained cartesian product",
    "The nested-for join idiom the document-generation era leaned on was "
    '"preposterously inefficient" even WITH its equi-join predicate; drop '
    "the predicate and a 2004 engine silently evaluates |X|×|Y| tuples "
    "with no diagnostic at all.",
)
def check_cartesian_product(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    skip: Set[int] = set()
    for owner, flwor in _iter_flwors(analysis):
        if id(flwor) in skip:
            continue
        clauses, absorbed = _flatten_flwor_nest(flwor)
        skip |= absorbed
        # names whose value varies per-tuple: for bindings (and their
        # positional vars), plus lets derived from them.
        tainted: Set[str] = set()
        # surviving suspects: (clause, names-derived-from-it)
        candidates: List[Tuple[ast.ForClause, Set[str]]] = []
        saw_for = False
        for clause in clauses:
            if isinstance(clause, ast.ForClause):
                free = free_variables(clause.source)
                source = _unwrap_parens(clause.source)
                singleton = isinstance(source, ast.Literal)
                if saw_for and not (free & tainted) and not singleton:
                    names = {clause.var}
                    if clause.position_var:
                        names.add(clause.position_var)
                    candidates.append((clause, names))
                saw_for = True
                tainted.add(clause.var)
                if clause.position_var:
                    tainted.add(clause.position_var)
            elif isinstance(clause, ast.LetClause):
                value_free = free_variables(clause.value)
                if value_free & tainted:
                    tainted.add(clause.var)
                for _clause, names in candidates:
                    if value_free & names:
                        names.add(clause.var)
            elif isinstance(clause, ast.WhereClause):
                free = free_variables(clause.condition)
                # a where that mentions a suspect (or a let derived from
                # it) AND some other tuple-varying name is a join
                # predicate: the suspect is constrained after all.
                candidates = [
                    (clause_, names)
                    for clause_, names in candidates
                    if not (free & names and free & (tainted - names))
                ]
        for clause, names in candidates:
            yield Diagnostic(
                code="XQL009",
                severity="warning",
                message=(
                    f"in {owner}: for ${clause.var} is not joined to any "
                    f"earlier for binding — the nest multiplies into a "
                    f"cartesian product over its whole source"
                ),
                line=clause.line or clause.source.line,
                column=clause.column or clause.source.column,
                rule="cartesian-product",
                hint="constrain the source with a predicate on an earlier "
                "binding (e.g. [@ref eq $x/@id]) or add a where clause "
                "linking the two",
            )


# ---------------------------------------------------------------------------
# XQL010–XQL012 — schema-aware findings from the typed inference pass
# ---------------------------------------------------------------------------


def _typed_findings(analysis: ModuleAnalysis, code: str) -> Iterator[Diagnostic]:
    if analysis.analyzer.schema is None:
        return
    for finding in analysis.types.findings:
        if finding.code != code:
            continue
        yield Diagnostic(
            code=finding.code,
            severity=finding.severity,
            message=finding.message,
            line=finding.line,
            column=finding.column,
            rule=RULES[code].slug if code in RULES else "",
            spec_code=finding.spec_code,
        )


@rule(
    "XQL010",
    "dead-path",
    "path step that can never match any node the exporter produces",
    'The paper\'s queries "silently returned nothing" when a path was '
    "misspelled or aimed at the wrong level; the 2004 stack had no schema "
    "to check against, so empty output was the only diagnostic.",
)
def check_dead_paths(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    yield from _typed_findings(analysis, "XQL010")


@rule(
    "XQL011",
    "ill-typed-operands",
    "comparison or arithmetic whose operand types can only raise XPTY0004",
    "Running untyped meant XPTY0004 surfaced at runtime, mid-pipeline, "
    "with Galax's trademark absence of location information; the typed "
    "pass raises it at lint time instead.",
)
def check_ill_typed_operands(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    yield from _typed_findings(analysis, "XQL011")


@rule(
    "XQL012",
    "vacuous-predicate",
    "predicate provably always-false (or always-true) against the "
    "export's attribute domains",
    'The exporter omits @type for string-valued properties, so the natural '
    '[@type eq "string"] filter matches nothing, ever — exactly the class '
    "of silent empty result the paper complains about.",
)
def check_vacuous_predicates(analysis: ModuleAnalysis) -> Iterator[Diagnostic]:
    yield from _typed_findings(analysis, "XQL012")


def rule_catalog() -> List[Rule]:
    """All registered rules, ordered by code."""
    return [RULES[code] for code in sorted(RULES)]
