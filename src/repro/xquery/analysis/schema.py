"""Document schemas for schema-aware static analysis.

The engine almost always queries one document shape: the AWB model
export.  Its vocabulary is fixed by ``awb/xml_io.py`` — ``<awb-model>``
over ``<node>``/``<relation>`` over ``<property>`` (with ``<html-value>``
wrapping rich-text payloads) — and the exporter *always* writes the
structural attributes (``@id``, ``@type``, ``@source``, ``@target``,
``@name``) while stamping ``@type`` on properties only for the non-string
value types.  Those conventions are a schema in the FLUX sense: a static
description of every tree the exporter can produce, precise enough to
prove a path dead (`XQL010`), a predicate vacuous (`XQL012`), or an
existence check redundant (the optimizer's pruning rewrite).

Two ways to get one:

* :func:`awb_export_schema` — the static schema derived from the export
  conventions themselves; true of **every** exporter-produced document,
  past and future, which is what licenses semantics-affecting rewrites.
* ``StatisticsCatalog.from_root`` (``algebra/stats.py``) — the catalog
  walk additionally records parent→child edges and attribute value
  domains, and attaches the static schema to the catalog only after
  verifying the walked document actually conforms.  The export pays for
  one walk; statistics and schema both ride it.

Open-world edges are explicit: ``<html-value>`` holds arbitrary markup
(``children=None``), and ``@type`` on nodes/relations is an *advisory*
metamodel domain (users invent types freely), so neither is closed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...xdm import DocumentNode, ElementNode

__all__ = [
    "AttributeSchema",
    "ElementSchema",
    "DocumentSchema",
    "awb_export_schema",
]


@dataclass(frozen=True)
class AttributeSchema:
    """One attribute an element may carry."""

    name: str
    #: the exporter writes this attribute on every such element.
    required: bool = False
    #: closed set of possible values; ``None`` means any string.
    domain: Optional[frozenset] = None


@dataclass(frozen=True)
class ElementSchema:
    """One element of the vocabulary: attributes and permitted children."""

    name: str
    attributes: Dict[str, AttributeSchema] = field(default_factory=dict)
    #: closed set of permitted child-element names; ``None`` = open content
    #: (anything may appear below — schema reasoning stops here).
    children: Optional[frozenset] = None
    #: whether text content may appear.
    text: bool = True

    @property
    def open_content(self) -> bool:
        return self.children is None


class DocumentSchema:
    """Element vocabulary + edges + attribute domains for one document shape.

    Everything the analyzer asks is phrased negatively — "can this step
    ever match?", "can this predicate ever be true?" — so an absent fact
    always degrades to "unknown, assume possible", never to a false claim.
    """

    def __init__(self, name: str, root: str, elements: Iterable[ElementSchema]):
        self.name = name
        self.root = root
        self.elements: Dict[str, ElementSchema] = {e.name: e for e in elements}

    def element(self, name: str) -> Optional[ElementSchema]:
        return self.elements.get(name)

    def child_allowed(self, parent: str, child: str) -> bool:
        """May *child* appear as a direct child of *parent*?

        True whenever the schema cannot prove otherwise.
        """
        decl = self.elements.get(parent)
        if decl is None or decl.open_content:
            return True
        return child in decl.children

    def attribute(self, element: str, attr: str) -> Optional[AttributeSchema]:
        decl = self.elements.get(element)
        if decl is None:
            return None
        return decl.attributes.get(attr)

    def attribute_allowed(self, element: str, attr: str) -> bool:
        decl = self.elements.get(element)
        if decl is None:
            return True
        return attr in decl.attributes

    def attribute_required(self, element: str, attr: str) -> bool:
        declared = self.attribute(element, attr)
        return declared is not None and declared.required

    def attribute_domain(self, element: str, attr: str) -> Optional[frozenset]:
        declared = self.attribute(element, attr)
        return declared.domain if declared is not None else None

    # -- conformance -------------------------------------------------------

    def violations(self, node, path: str = "") -> List[str]:
        """Why *node*'s subtree is not an instance of this schema.

        Empty list means the subtree conforms.  Subtrees below
        open-content elements are not inspected — the schema makes no
        claims there.
        """
        problems: List[str] = []
        if isinstance(node, DocumentNode):
            roots = [c for c in node.children if isinstance(c, ElementNode)]
            for child in roots:
                problems.extend(self.violations(child, path))
            return problems
        if not isinstance(node, ElementNode):
            return problems
        here = f"{path}/{node.name}"
        decl = self.elements.get(node.name)
        if decl is None:
            problems.append(f"{here}: element <{node.name}> is not in the vocabulary")
            return problems
        seen: Set[str] = set()
        for attribute in node.attributes:
            seen.add(attribute.name)
            declared = decl.attributes.get(attribute.name)
            if declared is None:
                problems.append(f"{here}: unexpected attribute @{attribute.name}")
            elif declared.domain is not None and attribute.value not in declared.domain:
                problems.append(
                    f"{here}: @{attribute.name}={attribute.value!r} outside domain "
                    f"{sorted(declared.domain)}"
                )
        for declared in decl.attributes.values():
            if declared.required and declared.name not in seen:
                problems.append(f"{here}: missing required attribute @{declared.name}")
        if decl.open_content:
            return problems  # anything goes below; stop checking
        for child in node.children:
            if isinstance(child, ElementNode):
                if child.name not in decl.children:
                    problems.append(
                        f"{here}: <{child.name}> may not appear inside <{node.name}>"
                    )
                else:
                    problems.extend(self.violations(child, here))
        return problems

    def admits(self, node) -> bool:
        """True if *node*'s subtree is an instance of this schema."""
        return not self.violations(node)

    def admits_observations(
        self,
        element_counts: Dict[str, int],
        edges: Set[Tuple[str, str]],
        attr_present: Dict[Tuple[str, str], int],
        attr_domains: Dict[Tuple[str, str], Optional[frozenset]],
    ) -> bool:
        """True if whole-document walk observations conform to this schema.

        This is the cheap conformance check the statistics walk uses: it
        sees aggregated facts (per-name counts, parent→child edge pairs,
        attribute presence counts and value sets) rather than the tree.
        It is deliberately conservative — arbitrary markup below an
        open-content element can reuse a vocabulary name (an ``<html-value>``
        payload containing a ``<node>``) and the aggregates cannot tell
        those apart, so any such collision simply fails conformance and
        the caller falls back to schema-free behavior.
        """
        for parent, child in edges:
            decl = self.elements.get(parent)
            if decl is None or decl.open_content:
                continue
            if child not in decl.children:
                return False
        for (element, attr), _count in attr_present.items():
            decl = self.elements.get(element)
            if decl is None:
                continue
            declared = decl.attributes.get(attr)
            if declared is None:
                return False
            if declared.domain is not None:
                observed = attr_domains.get((element, attr))
                if observed is None or not observed <= declared.domain:
                    return False
        for element, count in element_counts.items():
            decl = self.elements.get(element)
            if decl is None:
                continue
            for declared in decl.attributes.values():
                if declared.required:
                    if attr_present.get((element, declared.name), 0) != count:
                        return False
        return True

    # -- reachability ------------------------------------------------------

    def descendants_closed(self, name: str) -> Optional[frozenset]:
        """The closed set of element names reachable below *name*, or
        ``None`` when an open-content element is reachable (then *any*
        name may occur in the subtree)."""
        reached: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            decl = self.elements.get(current)
            if decl is None:
                continue
            if decl.open_content:
                return None
            for child in decl.children:
                if child not in reached:
                    reached.add(child)
                    frontier.append(child)
        return frozenset(reached)


#: value types the exporter stamps into ``property/@type`` — ``string`` is
#: the default and deliberately *omitted* (the paper-era footgun XQL012
#: exists to catch: ``[@type eq "string"]`` matches nothing, ever).
PROPERTY_TYPE_DOMAIN = frozenset({"integer", "boolean", "float", "html"})


def awb_export_schema() -> DocumentSchema:
    """The schema of every document ``awb.xml_io.export_model`` can emit.

    Derived from the export conventions, not from any particular model:
    structural attributes are always written, ``property/@type`` draws
    from the closed non-string value-type domain, node/relation ``@type``
    stays open (metamodel conformance is advisory — users invent types),
    and ``<html-value>`` is open content.
    """
    return DocumentSchema(
        name="awb-export",
        root="awb-model",
        elements=[
            ElementSchema(
                "awb-model",
                attributes={
                    "name": AttributeSchema("name", required=True),
                    "metamodel": AttributeSchema("metamodel", required=True),
                },
                children=frozenset({"node", "relation"}),
                text=False,
            ),
            ElementSchema(
                "node",
                attributes={
                    "id": AttributeSchema("id", required=True),
                    "type": AttributeSchema("type", required=True),
                },
                children=frozenset({"property"}),
                text=False,
            ),
            ElementSchema(
                "relation",
                attributes={
                    "id": AttributeSchema("id", required=True),
                    "type": AttributeSchema("type", required=True),
                    "source": AttributeSchema("source", required=True),
                    "target": AttributeSchema("target", required=True),
                },
                children=frozenset({"property"}),
                text=False,
            ),
            ElementSchema(
                "property",
                attributes={
                    "name": AttributeSchema("name", required=True),
                    "type": AttributeSchema(
                        "type", required=False, domain=PROPERTY_TYPE_DOMAIN
                    ),
                },
                children=frozenset({"html-value"}),
                text=True,
            ),
            ElementSchema("html-value", attributes={}, children=None, text=True),
        ],
    )
