"""Whole-program type & path inference for the XQuery subset.

The paper used XQuery "in the untyped mode, avoiding the type system
entirely" — and paid for it at runtime with silently empty paths and
``Index out of bounds, without any information of where``.  This module
is the typed mode the 2004 stack never offered: an abstract
interpretation that infers, for every expression, an XDM item type
(:class:`AbstractItem`) and an occurrence interval (:class:`~.cardinality.Card`,
rendered as ``empty | 1 | ? | + | *``), optionally evaluated against a
:class:`~.schema.DocumentSchema` describing what the queried document can
contain.

Three consumers:

* the lint rules — XQL007/XQL008 (name resolution, re-homed from the old
  ``statictype`` module), XQL010 (dead path), XQL011 (statically
  ill-typed comparison/arithmetic), XQL012 (vacuous predicate);
* the algebra optimizer, which reads the same schema off the statistics
  catalog to tighten estimates and prune provably redundant predicates;
* the fuzz harness's type-soundness oracle, which asserts every runtime
  value the differential engines observe inhabits its inferred type.

The soundness contract is strict: the *inferred type and occurrence* of
an expression must admit every value any engine can produce for it, for
every generated program — the fuzzer holds the analyzer to that the same
way it holds the engines to bit-identical results.  Schema facts are the
one deliberate exception: they describe exporter-produced documents, so
they surface as *findings* (a constructed ``<awb-model>`` can violate
them) and never tighten the inferred type itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .. import ast
from ..functions import lookup_builtin
from ...xdm import UntypedAtomic, atomic_type_name, is_atomic, is_node
from ...xdm.types import ATOMIC_HIERARCHY, ItemType, atomic_type_derives_from
from .cardinality import (
    Card,
    CardinalityAnalyzer,
    EMPTY,
    Env,
    ONE,
    STAR,
    from_sequence_type,
    join as card_join,
    module_environments,
    positional_index,
)
from .schema import DocumentSchema

__all__ = [
    "AbstractItem",
    "Inferred",
    "ModuleTypeAnalysis",
    "StaticIssue",
    "TypeAnalyzer",
    "TypeFinding",
    "annotation_pressure",
    "call_graph",
    "check_module",
    "check_sequence",
    "infer_body_type",
    "occurrence_indicator",
]


# -- the item-type lattice ----------------------------------------------------

_NODE_KINDS = frozenset(
    {
        "node",
        "document",
        "element",
        "attribute",
        "text",
        "comment",
        "processing-instruction",
    }
)

_NUMERIC_ATOMICS = frozenset(
    {
        "xs:integer",
        "xs:decimal",
        "xs:double",
        "xs:nonNegativeInteger",
        "xs:positiveInteger",
    }
)


@dataclass(frozen=True)
class AbstractItem:
    """An abstract XDM item type.

    ``kind`` is ``"item"`` (anything), ``"atomic"`` (with an optional
    ``xs:`` type name; ``None`` = any atomic), or a node kind.  Elements
    and attributes may carry a statically known ``name``; elements may
    additionally carry ``schema_element``, the schema vocabulary entry
    they are *anchored* to — used only to drive findings, never to
    narrow :meth:`matches` (constructed documents can violate schemas).
    """

    kind: str = "item"
    atomic: Optional[str] = None
    name: Optional[str] = None
    schema_element: Optional[str] = None

    def describe(self) -> str:
        if self.kind == "item":
            return "item()"
        if self.kind == "atomic":
            return self.atomic or "xs:anyAtomicType"
        if self.kind in ("element", "attribute"):
            return f"{self.kind}({self.name or '*'})"
        if self.kind == "node":
            return "node()"
        return f"{self.kind}()"

    def matches(self, value: object) -> bool:
        """True if the runtime *value* inhabits this item type."""
        if self.kind == "item":
            return True
        if self.kind == "atomic":
            if not is_atomic(value):
                return False
            if self.atomic is None:
                return True
            return atomic_type_derives_from(atomic_type_name(value), self.atomic)
        if not is_node(value):
            return False
        if self.kind == "node":
            return True
        if value.kind != self.kind:
            return False
        if self.name is not None and getattr(value, "name", None) != self.name:
            return False
        return True


ANY_ITEM = AbstractItem()
ANY_NODE = AbstractItem(kind="node")
ANY_ATOMIC = AbstractItem(kind="atomic")
BOOLEAN = AbstractItem(kind="atomic", atomic="xs:boolean")
INTEGER = AbstractItem(kind="atomic", atomic="xs:integer")
STRING = AbstractItem(kind="atomic", atomic="xs:string")
DOUBLE = AbstractItem(kind="atomic", atomic="xs:double")


def _common_atomic(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Nearest common supertype in the atomic hierarchy (None = any)."""
    if a is None or b is None:
        return None
    ancestors = set()
    current: Optional[str] = a
    while current is not None:
        ancestors.add(current)
        current = ATOMIC_HIERARCHY.get(current)
    current = b
    while current is not None:
        if current in ancestors:
            return None if current == "xs:anyAtomicType" else current
        current = ATOMIC_HIERARCHY.get(current)
    return None


def join_items(a: AbstractItem, b: AbstractItem) -> AbstractItem:
    """Least upper bound of two item types."""
    if a == b:
        return a
    if a.kind == b.kind:
        if a.kind == "atomic":
            return AbstractItem(kind="atomic", atomic=_common_atomic(a.atomic, b.atomic))
        name = a.name if a.name == b.name else None
        schema = a.schema_element if a.schema_element == b.schema_element else None
        return AbstractItem(kind=a.kind, name=name, schema_element=schema)
    if a.kind in _NODE_KINDS and b.kind in _NODE_KINDS:
        return ANY_NODE
    return ANY_ITEM


def _from_item_type(item_type: Optional[ItemType]) -> AbstractItem:
    """Translate a declared :class:`~repro.xdm.ItemType` into the lattice."""
    if item_type is None:
        return ANY_ITEM
    if item_type.category == ItemType.ITEM:
        return ANY_ITEM
    if item_type.category == ItemType.ATOMIC:
        name = item_type.name if item_type.name in ATOMIC_HIERARCHY else None
        return AbstractItem(kind="atomic", atomic=name)
    kind = item_type.node_kind or "node"
    if kind == "document-node":
        kind = "document"
    if kind not in _NODE_KINDS:
        kind = "node"
    return AbstractItem(kind=kind, name=item_type.name)


# -- inferred sequence types --------------------------------------------------


def occurrence_indicator(card: Card) -> str:
    """Render a cardinality interval as the paper-facing occurrence."""
    if card.hi == 0:
        return "empty"
    if card.lo >= 1 and card.hi == 1:
        return "1"
    if card.hi == 1:
        return "?"
    if card.lo >= 1:
        return "+"
    return "*"


@dataclass(frozen=True)
class Inferred:
    """The static type of one expression: item type x occurrence."""

    item: AbstractItem
    card: Card

    def describe(self) -> str:
        occurrence = occurrence_indicator(self.card)
        if occurrence == "empty":
            return "empty-sequence()"
        if occurrence == "1":
            return self.item.describe()
        return f"{self.item.describe()}{occurrence}"


def _describe_value(value: object) -> str:
    if is_node(value):
        name = getattr(value, "name", None)
        return f"{value.kind}({name})" if name else f"{value.kind}()"
    if is_atomic(value):
        return f"{atomic_type_name(value)} {str(value)[:40]!r}"
    return type(value).__name__


def check_sequence(inferred: Inferred, items: List[object]) -> Optional[str]:
    """Why a runtime sequence does *not* inhabit *inferred* (None = it does)."""
    n = len(items)
    if n < inferred.card.lo:
        return (
            f"runtime sequence has {n} item(s), below the inferred minimum "
            f"{inferred.card.lo} of {inferred.describe()}"
        )
    if inferred.card.hi is not None and n > inferred.card.hi:
        return (
            f"runtime sequence has {n} item(s), above the inferred maximum "
            f"{inferred.card.hi} of {inferred.describe()}"
        )
    for index, value in enumerate(items):
        if not inferred.item.matches(value):
            return (
                f"item {index + 1} is {_describe_value(value)}, which does not "
                f"inhabit the inferred type {inferred.describe()}"
            )
    return None


# -- findings -----------------------------------------------------------------


@dataclass
class StaticIssue:
    """One name-resolution problem (the old ``statictype`` currency)."""

    code: str
    message: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"[{self.code}] {self.message} (line {self.line}, column {self.column})"


@dataclass(frozen=True)
class TypeFinding:
    """One schema/type finding destined for an XQL010-012 diagnostic."""

    code: str
    message: str
    line: int
    column: int
    severity: str = "warning"
    spec_code: str = ""


# -- builtin result types -----------------------------------------------------

_CALL_BOOLEAN = {
    "true", "false", "not", "boolean", "empty", "exists", "deep-equal",
    "contains", "starts-with", "ends-with", "matches", "doc-available",
}
_CALL_INTEGER = {"count", "position", "last", "string-length", "string-to-codepoints"}
_CALL_STRING = {
    "string", "concat", "string-join", "normalize-space", "upper-case",
    "lower-case", "translate", "replace", "codepoints-to-string", "substring",
    "substring-before", "substring-after", "name", "local-name",
}
_CALL_DOUBLE = {"number"}
_CALL_ATOMIC = {"data", "distinct-values", "sum", "avg", "min", "max",
                "abs", "floor", "ceiling", "round"}
#: builtins that return (items drawn from) their first argument.
_CALL_PASSTHROUGH = {"trace", "exactly-one", "zero-or-one", "one-or-more",
                     "reverse", "subsequence", "insert-before", "remove"}


class TypeAnalyzer(CardinalityAnalyzer):
    """Occurrence *and* item-type inference, optionally schema-aware.

    Extends the occurrence analyzer with :meth:`item` /:meth:`infer`; the
    binding hooks are overridden so environments threaded through
    ``iter_scoped``/``module_environments`` carry item types too.  The
    ``schema``, when present, only ever produces findings (via
    ``_path_info``'s sink) — see the module docstring for why.
    """

    def __init__(self, module: ast.Module, schema: Optional[DocumentSchema] = None):
        super().__init__(module)
        self.schema = schema

    def infer(self, expr, env: Env) -> Inferred:
        if isinstance(expr, ast.PathExpr):
            item, card = self._path_info(expr, env, None)
            return Inferred(item, card)
        return Inferred(self.item(expr, env), self.card(expr, env))

    # -- item types --------------------------------------------------------

    def item(self, expr, env: Env) -> AbstractItem:
        if expr is None:
            return ANY_ITEM
        if isinstance(expr, ast.Literal):
            return AbstractItem(kind="atomic", atomic=atomic_type_name(expr.value))
        if isinstance(expr, ast.VarRef):
            binding = env.get(expr.name)
            if binding is not None and binding.item is not None:
                return binding.item
            return ANY_ITEM
        if isinstance(expr, ast.SequenceExpr):
            result: Optional[AbstractItem] = None
            for part in expr.items:
                part_item = self.item(part, env)
                result = part_item if result is None else join_items(result, part_item)
            return result or ANY_ITEM
        if isinstance(expr, ast.RangeExpr):
            return INTEGER
        if isinstance(expr, (ast.Arithmetic, ast.Unary)):
            return self._arithmetic_item(expr, env)
        if isinstance(expr, (ast.Comparison, ast.BooleanOp, ast.Quantified,
                             ast.InstanceOf, ast.CastableAs)):
            return BOOLEAN
        if isinstance(expr, ast.CastAs):
            name = expr.type_name if expr.type_name in ATOMIC_HIERARCHY else None
            return AbstractItem(kind="atomic", atomic=name)
        if isinstance(expr, ast.TreatAs):
            return _from_item_type(
                expr.sequence_type.item_type if expr.sequence_type else None
            )
        if isinstance(expr, ast.SetOp):
            left = self.item(expr.left, env)
            right = self.item(expr.right, env)
            joined = join_items(left, right)
            return joined if joined.kind in _NODE_KINDS else ANY_NODE
        if isinstance(expr, ast.PathExpr):
            item, _ = self._path_info(expr, env, None)
            return item
        if isinstance(expr, ast.AxisStep):
            item, _ = self._step_info(ANY_ITEM, STAR, "/", expr, env, None)
            return item
        if isinstance(expr, ast.FilterExpr):
            return self.item(expr.base, env)
        if isinstance(expr, ast.IfExpr):
            then_item = self.item(expr.then_branch, env)
            if expr.else_branch is None:
                return then_item
            return join_items(then_item, self.item(expr.else_branch, env))
        if isinstance(expr, ast.Typeswitch):
            result: Optional[AbstractItem] = None
            for case in expr.cases:
                case_item = self.item(case.result, self._case_env(env, case))
                result = case_item if result is None else join_items(result, case_item)
            default_env = env
            if expr.default_var:
                default_env = dict(env)
                default_env[expr.default_var] = self.default_case_binding(
                    expr.operand, env
                )
            default_item = self.item(expr.default, default_env)
            return default_item if result is None else join_items(result, default_item)
        if isinstance(expr, ast.TryCatch):
            body_item = self.item(expr.body, env)
            handler_env = env
            if expr.catch_var:
                handler_env = dict(env)
                handler_env[expr.catch_var] = self.catch_binding()
            return join_items(body_item, self.item(expr.handler, handler_env))
        if isinstance(expr, ast.FLWOR):
            return self.item(expr.result, self._flwor_env(expr, env))
        if isinstance(expr, ast.FunctionCall):
            return self._call_item(expr, env)
        if isinstance(expr, (ast.DirectElement, ast.ComputedElement)):
            return AbstractItem(kind="element", name=expr.name)
        if isinstance(expr, ast.ComputedAttribute):
            return AbstractItem(kind="attribute", name=expr.name)
        if isinstance(expr, (ast.DirectComment, ast.ComputedComment)):
            return AbstractItem(kind="comment")
        if isinstance(expr, ast.DirectPI):
            return AbstractItem(kind="processing-instruction")
        if isinstance(expr, ast.ComputedText):
            return AbstractItem(kind="text")
        if isinstance(expr, ast.ComputedDocument):
            return AbstractItem(kind="document")
        return ANY_ITEM

    def _arithmetic_item(self, expr, env: Env) -> AbstractItem:
        operands = (
            [expr.operand] if isinstance(expr, ast.Unary) else [expr.left, expr.right]
        )
        op = expr.op
        all_integer = op != "div"
        for operand in operands:
            operand_item = self.item(operand, env)
            if not (operand_item.kind == "atomic" and operand_item.atomic == "xs:integer"):
                all_integer = False
        return INTEGER if all_integer else ANY_ATOMIC

    def _call_item(self, expr: ast.FunctionCall, env: Env) -> AbstractItem:
        name = expr.name
        if name.startswith("fn:"):
            name = name[3:]
        if name.startswith("xs:"):
            atomic = name if name in ATOMIC_HIERARCHY else None
            return AbstractItem(kind="atomic", atomic=atomic)
        # same prefix handling as the runtime: only "local:" is stripped,
        # and a matching declaration shadows any same-named builtin.
        local = name.split(":", 1)[1] if name.startswith("local:") else name
        declaration = self.functions.get((local, len(expr.args)))
        if declaration is not None:
            if declaration.return_type is not None:
                return _from_item_type(declaration.return_type.item_type)
            return ANY_ITEM
        if local in _CALL_BOOLEAN:
            return BOOLEAN
        if local in _CALL_INTEGER:
            return INTEGER
        if local in _CALL_STRING:
            return STRING
        if local in _CALL_DOUBLE:
            return DOUBLE
        if local in _CALL_ATOMIC:
            return ANY_ATOMIC
        if local == "trace" and expr.args:
            # fn:trace returns its *last* argument (the value; earlier
            # arguments are labels) — a fuzz-found soundness bug when this
            # used args[0] like the other passthroughs.
            return self.item(expr.args[-1], env)
        if local == "insert-before" and len(expr.args) == 3:
            # the result interleaves the target (args[0]) and the inserted
            # items (args[2]); drawing from args[0] alone was unsound.
            return join_items(
                self.item(expr.args[0], env), self.item(expr.args[2], env)
            )
        if local in _CALL_PASSTHROUGH and expr.args:
            return self.item(expr.args[0], env)
        if local == "root":
            return ANY_NODE
        if local == "doc":
            return AbstractItem(kind="document")
        return ANY_ITEM

    def _flwor_env(self, expr: ast.FLWOR, env: Env) -> Env:
        inner = dict(env)
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                inner[clause.var] = self.for_binding(clause.source, inner)
                if clause.position_var:
                    inner[clause.position_var] = self.position_binding()
            elif isinstance(clause, ast.LetClause):
                inner[clause.var] = self.binding_of(clause.value, inner)
        return inner

    def _case_env(self, env: Env, case: ast.CaseClause) -> Env:
        if not case.var:
            return env
        inner = dict(env)
        inner[case.var] = self.case_binding(case.sequence_type)
        return inner

    # -- binding hooks (override the untyped versions) ---------------------

    def binding_of(self, expr, env: Env):
        binding = super().binding_of(expr, env)
        return binding.with_item(self.item(expr, env))

    def for_binding(self, source, env: Env):
        return super().for_binding(source, env).with_item(self.item(source, env))

    def quantifier_binding(self, source, env: Env):
        return super().quantifier_binding(source, env).with_item(self.item(source, env))

    def position_binding(self):
        return super().position_binding().with_item(INTEGER)

    def case_binding(self, sequence_type):
        item = _from_item_type(sequence_type.item_type if sequence_type else None)
        return super().case_binding(sequence_type).with_item(item)

    def catch_binding(self):
        return super().catch_binding().with_item(
            AbstractItem(kind="element", name="error")
        )

    def param_binding(self, param):
        item = _from_item_type(
            param.declared_type.item_type if param.declared_type else None
        )
        return super().param_binding(param).with_item(item)

    def global_binding(self, declaration, env: Env):
        binding = super().global_binding(declaration, env)
        if declaration.declared_type is not None:
            return binding.with_item(_from_item_type(declaration.declared_type.item_type))
        if declaration.value is not None:
            return binding.with_item(self.item(declaration.value, env))
        return binding

    # -- paths against the schema ------------------------------------------

    def _path_info(self, expr: ast.PathExpr, env: Env, sink) -> Tuple[AbstractItem, Card]:
        if expr.anchor is not None:
            item: AbstractItem = AbstractItem(kind="document")
            card = ONE
        elif expr.first is not None:
            item = self.item(expr.first, env)
            card = self.card(expr.first, env)
        else:
            item = ANY_ITEM
            card = ONE
        descended = expr.anchor == "//"
        for separator, step in expr.steps:
            if descended:
                separator = "//"
                descended = False
            item, card = self._step_info(item, card, separator, step, env, sink)
        return item, card

    def _step_info(
        self,
        base_item: AbstractItem,
        base_card: Card,
        separator: str,
        step,
        env: Env,
        sink,
    ) -> Tuple[AbstractItem, Card]:
        if not isinstance(step, ast.AxisStep):
            return self.item(step, env), STAR
        schema = self.schema
        anchored = base_item.schema_element if base_item.kind == "element" else None
        test = step.test
        item = ANY_NODE
        card = STAR
        if step.axis == "attribute":
            name = test.name if test.kind == "name" else None
            item = AbstractItem(kind="attribute", name=name)
            if separator == "//":
                # ``//@x`` reaches the attributes of *every* descendant —
                # one per element at most, but unboundedly many elements
                # (a fuzz-found soundness bug: Card(0, base.hi) undercounted).
                card = EMPTY if base_card.hi == 0 else Card(0, STAR.hi)
            else:
                card = Card(0, base_card.hi)
            if (
                schema is not None
                and anchored
                and name is not None
                and separator != "//"
            ):
                if not schema.attribute_allowed(anchored, name):
                    self._report(
                        sink,
                        "XQL010",
                        step,
                        f"dead path: <{anchored}> never carries @{name} in the "
                        f"{schema.name} schema",
                    )
                elif schema.attribute_required(anchored, name):
                    card = Card(base_card.lo, base_card.hi)
        elif test.kind == "name":
            name = test.name
            sch: Optional[str] = None
            if separator == "//" or step.axis in ("descendant", "descendant-or-self"):
                if schema is not None and anchored:
                    closure = schema.descendants_closed(anchored)
                    if closure is not None and name not in closure:
                        self._report(
                            sink,
                            "XQL010",
                            step,
                            f"dead path: no <{name}> can occur anywhere below "
                            f"<{anchored}> in the {schema.name} schema",
                        )
            elif step.axis == "child":
                if schema is not None:
                    if anchored:
                        decl = schema.element(anchored)
                        if decl is not None and not decl.open_content:
                            if name in decl.children:
                                sch = name
                            else:
                                self._report(
                                    sink,
                                    "XQL010",
                                    step,
                                    f"dead path: <{name}> can never be a child of "
                                    f"<{anchored}> in the {schema.name} schema",
                                )
                    elif name == schema.root and base_item.kind in (
                        "item",
                        "node",
                        "document",
                    ):
                        # by-name anchoring: a step selecting the export root
                        # element pins the rest of the path to the schema.
                        sch = name
            item = AbstractItem(kind="element", name=name, schema_element=sch)
        elif test.kind == "wildcard":
            kind = "attribute" if step.axis == "attribute" else "element"
            item = AbstractItem(kind=kind)
        else:
            kind_map = {
                "node": "node",
                "text": "text",
                "element": "element",
                "attribute": "attribute",
                "comment": "comment",
                "processing-instruction": "processing-instruction",
                "document-node": "document",
                "document": "document",
            }
            item = AbstractItem(kind=kind_map.get(test.kind, "node"))
            if step.axis == "self" and test.kind == "node":
                item = base_item if base_item.kind in _NODE_KINDS else ANY_NODE
        for predicate in step.predicates:
            self._check_predicate(item.schema_element, predicate, sink)
            if positional_index(predicate) is not None:
                card = Card(0, 0 if card.hi == 0 else 1)
            else:
                card = Card(0, card.hi)
        return item, card

    def _check_predicate(self, element: Optional[str], predicate, sink) -> None:
        """XQL012: predicates provably vacuous against attribute domains."""
        schema = self.schema
        if sink is None or schema is None or element is None:
            return
        attr = _bare_attribute_name(predicate)
        if attr is not None:
            if not schema.attribute_allowed(element, attr):
                self._report(
                    sink,
                    "XQL012",
                    predicate,
                    f"predicate [@{attr}] is always false: <{element}> never "
                    f"carries @{attr} in the {schema.name} schema",
                )
            elif schema.attribute_required(element, attr):
                self._report(
                    sink,
                    "XQL012",
                    predicate,
                    f"predicate [@{attr}] is always true: @{attr} is required "
                    f"on every <{element}> in the {schema.name} schema",
                    severity="info",
                )
            return
        parsed = _attr_comparison(predicate)
        if parsed is None:
            return
        attr, literals = parsed
        if not literals:
            return
        if not schema.attribute_allowed(element, attr):
            self._report(
                sink,
                "XQL012",
                predicate,
                f"predicate on @{attr} is always false: <{element}> never "
                f"carries @{attr} in the {schema.name} schema",
            )
            return
        domain = schema.attribute_domain(element, attr)
        if domain is None:
            return
        if not any(literal in domain for literal in literals):
            shown = ", ".join(repr(v) for v in literals)
            self._report(
                sink,
                "XQL012",
                predicate,
                f"predicate is always false: {shown} can never be the value of "
                f"@{attr} on <{element}> (domain: "
                f"{', '.join(sorted(domain))}; absent means string)",
            )

    @staticmethod
    def _report(sink, code: str, expr, message: str, severity: str = "warning") -> None:
        if sink is None:
            return
        spec = {"XQL010": "XPST0005", "XQL011": "XPTY0004"}.get(code, "")
        sink.append(
            TypeFinding(
                code=code,
                message=message,
                line=getattr(expr, "line", 0),
                column=getattr(expr, "column", 0),
                severity=severity,
                spec_code=spec,
            )
        )


def _unwrap_single_step(expr):
    """The lone AxisStep of ``@a``-shaped expressions, else None."""
    if isinstance(expr, ast.PathExpr):
        if expr.anchor is None and not expr.steps:
            return _unwrap_single_step(expr.first)
        if expr.anchor is None and expr.first is None and len(expr.steps) == 1:
            return _unwrap_single_step(expr.steps[0][1])
        return None
    if isinstance(expr, ast.AxisStep):
        return expr
    return None


def _bare_attribute_name(expr) -> Optional[str]:
    step = _unwrap_single_step(expr)
    if (
        isinstance(step, ast.AxisStep)
        and step.axis == "attribute"
        and step.test.kind == "name"
        and not step.predicates
    ):
        return step.test.name
    return None


def _literal_strings(expr) -> Optional[List[str]]:
    """The literal string values of ``"a"`` or ``("a", "b")``, else None."""
    if isinstance(expr, ast.Literal):
        return [expr.value] if isinstance(expr.value, str) else None
    if isinstance(expr, ast.SequenceExpr):
        collected: List[str] = []
        for item in expr.items:
            if isinstance(item, ast.Literal) and isinstance(item.value, str):
                collected.append(item.value)
            else:
                return None
        return collected
    return None


def _attr_comparison(expr) -> Optional[Tuple[str, List[str]]]:
    """``(attr, literals)`` for ``@a eq "x"`` / ``@a = ("x", "y")`` shapes."""
    if not isinstance(expr, ast.Comparison):
        return None
    if expr.style == "value" and expr.op not in ("eq", "ne"):
        return None
    if expr.style == "general" and expr.op not in ("=",):
        return None
    if expr.style == "node":
        return None
    if expr.op == "ne":  # [@a ne "x"] is satisfiable whenever @a exists
        return None
    for attr_side, value_side in ((expr.left, expr.right), (expr.right, expr.left)):
        attr = _bare_attribute_name(attr_side)
        if attr is None:
            continue
        literals = _literal_strings(value_side)
        if literals is not None:
            return attr, literals
    return None


# -- the whole-module pass ----------------------------------------------------


class ModuleTypeAnalysis:
    """One pass over a module: scope checking, typed findings, body type.

    Replicates the old ``statictype`` scope semantics exactly — function
    bodies see all globals plus parameters, a global declaration's value
    sees only *previously declared* globals, the body sees all globals —
    while also threading typed environments for the XQL010-012 checks.
    """

    def __init__(
        self,
        module: ast.Module,
        schema: Optional[DocumentSchema] = None,
        analyzer: Optional[TypeAnalyzer] = None,
    ):
        self.module = module
        if analyzer is None:
            analyzer = TypeAnalyzer(module, schema=schema)
        elif schema is not None and analyzer.schema is None:
            analyzer.schema = schema
        self.analyzer = analyzer
        #: the old statictype currency: XPST0008 / XPST0017 issues.
        self.issues: List[StaticIssue] = []
        #: raw material for the XQL010-012 rules.
        self.findings: List[TypeFinding] = []
        #: inferred type of the module body, if there is one.
        self.body_type: Optional[Inferred] = None
        self._functions = _declared_functions(module)
        self._run()

    def _run(self) -> None:
        analyzer = self.analyzer
        body_env, function_envs = module_environments(self.module, analyzer)
        for function in self.module.functions:
            self._walk(function.body, function_envs[id(function)])
        env: Env = {}
        for declaration in self.module.variables:
            if declaration.value is not None:
                self._walk(declaration.value, dict(env))
            env[declaration.name] = body_env[declaration.name]
        if self.module.body is not None:
            self._walk(self.module.body, dict(body_env))
            self.body_type = analyzer.infer(self.module.body, body_env)

    # -- traversal ---------------------------------------------------------

    def _walk(self, expr, env: Env) -> None:
        if expr is None:
            return
        analyzer = self.analyzer
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                self.issues.append(
                    StaticIssue(
                        "XPST0008",
                        f"undefined variable ${expr.name}",
                        expr.line,
                        expr.column,
                    )
                )
            return
        if isinstance(expr, ast.FunctionCall):
            self._check_call(expr)
            for arg in expr.args:
                self._walk(arg, env)
            return
        if isinstance(expr, (ast.Arithmetic, ast.Unary, ast.Comparison)):
            self._check_operators(expr, env)
            for child in ast.children_of(expr):
                self._walk(child, env)
            return
        if isinstance(expr, ast.PathExpr):
            analyzer._path_info(expr, env, self.findings)
            for child in ast.children_of(expr):
                self._walk(child, env)
            return
        if isinstance(expr, ast.FilterExpr):
            base_item = analyzer.item(expr.base, env)
            if base_item.kind == "element" and base_item.schema_element:
                for predicate in expr.predicates:
                    analyzer._check_predicate(
                        base_item.schema_element, predicate, self.findings
                    )
            for child in ast.children_of(expr):
                self._walk(child, env)
            return
        if isinstance(expr, ast.FLWOR):
            inner = dict(env)
            for clause in expr.clauses:
                if isinstance(clause, ast.ForClause):
                    self._walk(clause.source, inner)
                    inner = dict(inner)
                    inner[clause.var] = analyzer.for_binding(clause.source, inner)
                    if clause.position_var:
                        inner[clause.position_var] = analyzer.position_binding()
                elif isinstance(clause, ast.LetClause):
                    self._walk(clause.value, inner)
                    inner = dict(inner)
                    inner[clause.var] = analyzer.binding_of(clause.value, inner)
                elif isinstance(clause, ast.WhereClause):
                    self._walk(clause.condition, inner)
                elif isinstance(clause, ast.OrderByClause):
                    for spec in clause.specs:
                        self._walk(spec.key, inner)
            self._walk(expr.result, inner)
            return
        if isinstance(expr, ast.Quantified):
            inner = dict(env)
            for var, source in expr.bindings:
                self._walk(source, inner)
                inner = dict(inner)
                inner[var] = analyzer.quantifier_binding(source, inner)
            self._walk(expr.satisfies, inner)
            return
        if isinstance(expr, ast.Typeswitch):
            self._walk(expr.operand, env)
            for case in expr.cases:
                self._walk(case.result, analyzer._case_env(env, case))
            inner = env
            if expr.default_var:
                inner = dict(env)
                inner[expr.default_var] = analyzer.default_case_binding(
                    expr.operand, env
                )
            self._walk(expr.default, inner)
            return
        if isinstance(expr, ast.TryCatch):
            self._walk(expr.body, env)
            inner = env
            if expr.catch_var:
                inner = dict(env)
                inner[expr.catch_var] = analyzer.catch_binding()
            self._walk(expr.handler, inner)
            return
        for child in ast.children_of(expr):
            self._walk(child, env)

    # -- checks ------------------------------------------------------------

    def _check_call(self, expr: ast.FunctionCall) -> None:
        name = expr.name
        if name.startswith("fn:"):
            name = name[3:]
        if name.startswith("xs:"):
            if len(expr.args) != 1:
                self.issues.append(
                    StaticIssue(
                        "XPST0017",
                        f"{name} expects exactly one argument",
                        expr.line,
                        expr.column,
                    )
                )
            return
        local = name[len("local:"):] if name.startswith("local:") else name
        if (local, len(expr.args)) in self._functions:
            return
        if lookup_builtin(name, len(expr.args)) is not None:
            return
        self.issues.append(
            StaticIssue(
                "XPST0017",
                f"unknown function {expr.name}() with {len(expr.args)} argument(s)",
                expr.line,
                expr.column,
            )
        )

    def _check_operators(self, expr, env: Env) -> None:
        """XQL011: comparisons/arithmetic that can only raise XPTY0004."""
        analyzer = self.analyzer
        if isinstance(expr, (ast.Arithmetic, ast.Unary)):
            operands = (
                [expr.operand] if isinstance(expr, ast.Unary) else [expr.left, expr.right]
            )
            for operand in operands:
                item = analyzer.item(operand, env)
                group = _value_group(item)
                if group in ("string", "boolean"):
                    analyzer._report(
                        self.findings,
                        "XQL011",
                        expr,
                        f"arithmetic '{expr.op}' on an operand of type "
                        f"{item.atomic} can only raise XPTY0004",
                    )
            return
        if isinstance(expr, ast.Comparison) and expr.style == "value":
            left = analyzer.item(expr.left, env)
            right = analyzer.item(expr.right, env)
            left_group = _value_group(left)
            right_group = _value_group(right)
            if left_group and right_group and left_group != right_group:
                analyzer._report(
                    self.findings,
                    "XQL011",
                    expr,
                    f"'{expr.op}' comparison between {left.atomic} and "
                    f"{right.atomic} can only raise XPTY0004",
                )


def _value_group(item: AbstractItem) -> Optional[str]:
    """Comparison group of a *concrete* atomic type (None = unknown)."""
    if item.kind != "atomic" or item.atomic is None:
        return None
    if item.atomic in _NUMERIC_ATOMICS:
        return "numeric"
    if item.atomic == "xs:string":
        return "string"
    if item.atomic == "xs:boolean":
        return "boolean"
    return None  # untypedAtomic casts to either side; stay quiet


def _declared_functions(module: ast.Module) -> Dict[Tuple[str, int], ast.FunctionDecl]:
    functions: Dict[Tuple[str, int], ast.FunctionDecl] = {}
    for declaration in module.functions:
        name = declaration.name
        if name.startswith("local:"):
            name = name[len("local:"):]
        functions[(name, declaration.arity)] = declaration
    return functions


def check_module(module: ast.Module) -> List[StaticIssue]:
    """Check name resolution and arities across the whole module.

    Drop-in replacement for the old ``statictype.check_module``; the
    scope walk now rides the typed pass instead of duplicating it.
    """
    return list(ModuleTypeAnalysis(module).issues)


def infer_body_type(
    module: ast.Module, schema: Optional[DocumentSchema] = None
) -> Optional[Inferred]:
    """The inferred static type of the module body (None if no body)."""
    if module.body is None:
        return None
    analyzer = TypeAnalyzer(module, schema=schema)
    body_env, _ = module_environments(module, analyzer)
    return analyzer.infer(module.body, body_env)


# -- call graphs and annotation pressure (moved from statictype) --------------


def call_graph(module: ast.Module) -> Dict[str, Set[str]]:
    """User-function call graph: declared name → called user-function names."""
    declared = {f.name.split(":")[-1] for f in module.functions}
    graph: Dict[str, Set[str]] = {name: set() for name in declared}
    for function in module.functions:
        callee_names: Set[str] = set()

        def visit(node) -> None:
            if isinstance(node, ast.FunctionCall):
                local = node.name.split(":")[-1]
                if local in declared:
                    callee_names.add(local)

        ast.walk(function.body, visit)
        graph[function.name.split(":")[-1]] = callee_names
    return graph


def annotation_pressure(module: ast.Module) -> Dict[str, object]:
    """Measure the paper's type "metastasis".

    Given which functions already carry type annotations, compute the set
    of functions transitively connected to them in the call graph — the
    functions the project "had to spend a couple of days" annotating.
    Returns counts and the ratio of dragged-in functions to annotated ones.
    """
    annotated = {
        f.name.split(":")[-1]
        for f in module.functions
        if f.return_type is not None or any(p.declared_type for p in f.params)
    }
    graph = call_graph(module)
    undirected: Dict[str, Set[str]] = {name: set() for name in graph}
    for caller, callees in graph.items():
        for callee in callees:
            undirected[caller].add(callee)
            undirected.setdefault(callee, set()).add(caller)
    reached: Set[str] = set()
    frontier = list(annotated)
    while frontier:
        name = frontier.pop()
        if name in reached:
            continue
        reached.add(name)
        frontier.extend(undirected.get(name, ()))
    dragged_in = reached - annotated
    return {
        "functions": len(graph),
        "annotated": len(annotated),
        "dragged_in": len(dragged_in),
        "touched": len(reached),
        "pressure": (len(reached) / len(annotated)) if annotated else 0.0,
    }


# referenced for re-export stability; silences linters on unused imports
_ = (UntypedAtomic, EMPTY, card_join, from_sequence_type)
