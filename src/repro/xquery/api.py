"""Public engine facade: compile and run XQuery programs.

Typical use::

    from repro.xquery import XQueryEngine

    engine = XQueryEngine()
    result = engine.evaluate("for $i in 1 to 3 return $i * $i")
    # result == [1, 4, 9]

    query = engine.compile(source)           # parse + optimize once
    value = query.run(context_item=doc, variables={"mode": ["draft"]})

The engine's :class:`EngineConfig` flags select between spec behaviour and
the 2004 Galax behaviours the paper describes (see
:mod:`repro.xquery.context`).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import fields
from typing import Dict, List, Optional, Tuple

from ..xdm import DocumentNode, Node, Sequence, is_node, sequence
from ..xmlio import serialize
from .ast import FunctionDecl, Module
from .compiler import CompiledProgram
from .context import DynamicContext, EngineConfig, TraceLog
from .errors import XQueryStaticError, extended_stack
from .evaluator import evaluate
from .optimizer import OptimizerStats, optimize_module
from .parser import parse_query

#: Names accepted by ``EngineConfig.backend`` / ``CompiledQuery.run``.
BACKENDS = ("treewalk", "closures", "algebra")


class CompiledQuery:
    """A parsed (and optionally optimized) query, ready to run."""

    def __init__(self, module: Module, config: EngineConfig):
        self.module = module
        self.config = config
        self.functions: Dict[Tuple[str, int], FunctionDecl] = {}
        for declaration in module.functions:
            name = declaration.name
            if name.startswith("local:"):
                name = name[len("local:") :]
            key = (name, declaration.arity)
            if key in self.functions:
                raise XQueryStaticError(
                    f"duplicate declaration of function {declaration.name}()"
                    f" with arity {declaration.arity}",
                    code="XQST0034",
                    line=declaration.line,
                    column=declaration.column,
                )
            self.functions[key] = declaration
        seen_variables = set()
        for variable in module.variables:
            if variable.name in seen_variables:
                raise XQueryStaticError(
                    f"duplicate declaration of variable ${variable.name}",
                    code="XQST0049",
                    line=variable.line,
                    column=variable.column,
                )
            seen_variables.add(variable.name)
        #: lint findings, populated when ``config.lint`` is not "off".
        self.diagnostics: List["Diagnostic"] = []
        if config.lint != "off":
            # lint BEFORE optimization: XQL001's whole point is to see the
            # trace binding the dead-code pass is about to delete.
            self._run_lint()
        self.optimizer_stats: Optional[OptimizerStats] = None
        if config.optimize:
            self.optimizer_stats = optimize_module(
                module, trace_is_dead_code=config.trace_is_dead_code
            )
        self._closures: Optional[CompiledProgram] = None
        self._closures_lock = threading.Lock()
        self._algebra: Optional["AlgebraProgram"] = None
        self._algebra_lock = threading.Lock()
        self._plan_signature: Optional[str] = None

    def _run_lint(self) -> None:
        import warnings

        from .analysis import LintWarning, analyze_module, severity_at_least

        self.diagnostics = analyze_module(self.module, config=self.config)
        for diagnostic in self.diagnostics:
            if not severity_at_least(diagnostic, "warning"):
                continue
            if self.config.lint == "error":
                raise XQueryStaticError(
                    f"lint: {diagnostic.code} {diagnostic.message}",
                    code=diagnostic.spec_code or diagnostic.code,
                    line=diagnostic.line or None,
                    column=diagnostic.column or None,
                )
            warnings.warn(diagnostic.render(), LintWarning, stacklevel=4)

    @property
    def closures(self) -> CompiledProgram:
        """The closure-compiled form of this query, built on first use.

        The treewalk backend needs nothing beyond the AST, so queries that
        never run under ``backend="closures"`` never pay for compilation.
        Built under a lock so concurrent first runs (the query service's
        thread pool) share one program instead of racing to build two.
        """
        if self._closures is None:
            with self._closures_lock:
                if self._closures is None:
                    with extended_stack():
                        self._closures = CompiledProgram(
                            self.module, self.functions, self.config
                        )
        return self._closures

    @property
    def algebra(self) -> "AlgebraProgram":
        """The algebraic plan for this query, built on first use.

        Like :attr:`closures`, lowering is deferred until the query first
        runs under ``backend="algebra"`` and the result is shared across
        threads (one plan, one lock).
        """
        if self._algebra is None:
            with self._algebra_lock:
                if self._algebra is None:
                    from .algebra import AlgebraProgram

                    with extended_stack():
                        self._algebra = AlgebraProgram(
                            self.module, self.functions, self.config
                        )
        return self._algebra

    @property
    def plan_signature(self) -> str:
        """A structural key for this query's module, stable across reparses.

        Position information (line/column) is excluded, so two textually
        different sources with identical structure share a signature; the
        query service keys its plan/result caches on this.

        Computed once per query; the module is immutable after parse, so
        the signature never changes. (A racing second computation yields
        the same string, so no lock is needed.)
        """
        signature = self._plan_signature
        if signature is None:
            from .algebra import module_signature

            signature = module_signature(self.module)
            self._plan_signature = signature
        return signature

    def explain(self, statistics=None) -> dict:
        """The optimized algebraic plan as a dict (text + JSON-ready tree).

        Includes ``static_type``: the whole query's inferred item type and
        occurrence from the static-type pass (``None`` for a body-less
        library module).
        """
        explanation = self.algebra.explain(statistics)
        # deferred: the analysis package's import chain reaches back here.
        from .analysis.types import infer_body_type

        inferred = infer_body_type(self.module)
        explanation["static_type"] = (
            inferred.describe() if inferred is not None else None
        )
        return explanation

    @property
    def external_variable_names(self) -> List[str]:
        return [v.name for v in self.module.variables if v.value is None]

    def run(
        self,
        context_item: Optional[Node] = None,
        variables: Optional[Dict[str, object]] = None,
        documents: Optional[Dict[str, DocumentNode]] = None,
        trace: Optional[TraceLog] = None,
        backend: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        statistics=None,
        algebra_cache=None,
        collections=None,
    ) -> Sequence:
        """Evaluate the query body; returns a flat sequence of items.

        ``variables`` supplies external variables; plain Python values are
        coerced into sequences (a list is a sequence, a scalar a singleton).
        ``backend`` overrides the config's backend for this run only.
        ``timeout`` is a wall-clock budget in seconds (``deadline`` the
        equivalent absolute ``time.monotonic()`` instant); a run that
        exceeds it raises :class:`~repro.xquery.errors.XQueryTimeoutError`
        (``XQDY_TIMEOUT``) at the next stage boundary instead of hanging
        the calling thread.

        ``collections`` supplies a :class:`repro.collections.DocumentStore`
        backing ``fn:doc``/``fn:collection`` and the ``ft:*`` full-text
        builtins, in every backend.

        ``statistics`` and ``algebra_cache`` only affect
        ``backend="algebra"``: the former is a
        :class:`~repro.xquery.algebra.StatisticsCatalog` steering the cost
        pass, the latter a :class:`~repro.xquery.algebra.SharedEvalCache`
        sharing scan/join work across queries over the same document.
        """
        backend = backend if backend is not None else self.config.backend
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if timeout is not None:
            budget = time.monotonic() + timeout
            deadline = budget if deadline is None else min(deadline, budget)
        ctx = DynamicContext(
            functions=self.functions,
            documents=documents or {},
            config=self.config,
            trace=trace,
            deadline=deadline,
            collections=collections,
        )
        provided = {
            name: _coerce_sequence(value) for name, value in (variables or {}).items()
        }
        program = self.closures if backend == "closures" else None
        with extended_stack():
            self._bind_globals(ctx, provided, program)
            if context_item is not None:
                ctx = ctx.with_focus(context_item, 1, 1)
            if program is not None:
                return program.body(ctx)
            if backend == "algebra":
                return self.algebra.run(
                    ctx, statistics=statistics, shared_cache=algebra_cache
                )
            return evaluate(self.module.body, ctx)

    def _bind_globals(
        self,
        ctx: DynamicContext,
        provided: Dict[str, Sequence],
        program: Optional[CompiledProgram] = None,
    ) -> None:
        for declaration in self.module.variables:
            if declaration.value is None:
                if declaration.name not in provided:
                    raise XQueryStaticError(
                        f"external variable ${declaration.name} was not provided",
                        code="XPDY0002",
                        line=declaration.line,
                        column=declaration.column,
                    )
                value = provided[declaration.name]
            elif program is not None:
                value = program.variable_values[declaration.name](ctx)
            else:
                value = evaluate(declaration.value, ctx)
            if (
                declaration.declared_type is not None
                and not declaration.declared_type.matches(value)
            ):
                raise XQueryStaticError(
                    f"variable ${declaration.name} does not match its declared "
                    f"type {declaration.declared_type!r}",
                    code="XPTY0004",
                    line=declaration.line,
                    column=declaration.column,
                )
            ctx.globals[declaration.name] = value
            ctx.variables[declaration.name] = value
        # extra provided variables become implicit externals, a convenience
        # the Python host uses heavily.
        for name, value in provided.items():
            if name not in ctx.globals:
                ctx.globals[name] = value
                ctx.variables[name] = value


def _coerce_sequence(value: object) -> Sequence:
    # lists and tuples are both "a sequence of items" to the host API;
    # sequence() flattens either kind of nesting, and wraps a scalar.
    return sequence(value)


class XQueryEngine:
    """Compiles and evaluates XQuery programs under one configuration.

    Repeated compilations of identical source are served from a bounded
    LRU cache (size ``config.compile_cache_size``; ``0`` disables it).
    The cache key includes every config field, so an engine whose config
    is mutated between calls never serves a stale compilation.  The cache
    (lookup, insert, eviction, counters) is guarded by a lock, so one
    engine can be shared by the query service's worker threads.
    """

    def __init__(self, config: Optional[EngineConfig] = None, **flags):
        if config is None:
            config = EngineConfig(**flags)
        elif flags:
            raise TypeError("pass either a config object or keyword flags, not both")
        self.config = config
        self._cache: "OrderedDict[tuple, CompiledQuery]" = OrderedDict()
        self._cache_lock = threading.RLock()
        self.cache_hits = 0
        self.cache_misses = 0
        #: threads that compiled but lost the insert race: counted as
        #: misses (the compile work really happened) and tallied here.
        self.cache_races = 0

    def _cache_key(self, source: str) -> tuple:
        return (source,) + tuple(
            (f.name, getattr(self.config, f.name)) for f in fields(self.config)
        )

    def compile(self, source: str, use_cache: bool = True) -> CompiledQuery:
        """Parse, validate, and (per config) optimize a query."""
        if not use_cache or self.config.compile_cache_size <= 0:
            return CompiledQuery(parse_query(source), self.config)
        key = self._cache_key(source)
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._cache.move_to_end(key)
                return cached
        # parse/compile outside the lock: compilation is pure, and a rare
        # duplicate compile beats serializing every miss behind one lock.
        query = CompiledQuery(parse_query(source), self.config)
        with self._cache_lock:
            existing = self._cache.get(key)
            if existing is not None:
                # we lost the insert race after doing a full compile: that
                # is real compile work, so it counts as a miss, not a hit.
                self.cache_misses += 1
                self.cache_races += 1
                self._cache.move_to_end(key)
                return existing
            self.cache_misses += 1
            self._cache[key] = query
            while len(self._cache) > self.config.compile_cache_size:
                self._cache.popitem(last=False)
        return query

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters, in the shape ``functools.lru_cache`` uses."""
        with self._cache_lock:
            return {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "races": self.cache_races,
                "currsize": len(self._cache),
                "maxsize": self.config.compile_cache_size,
            }

    def cache_clear(self) -> None:
        with self._cache_lock:
            self._cache.clear()
            self.cache_hits = 0
            self.cache_misses = 0
            self.cache_races = 0

    def evaluate(
        self,
        source: str,
        context_item: Optional[Node] = None,
        variables: Optional[Dict[str, object]] = None,
        documents: Optional[Dict[str, DocumentNode]] = None,
        trace: Optional[TraceLog] = None,
        timeout: Optional[float] = None,
        collections=None,
    ) -> Sequence:
        """One-shot compile-and-run."""
        return self.compile(source).run(
            context_item=context_item,
            variables=variables,
            documents=documents,
            trace=trace,
            timeout=timeout,
            collections=collections,
        )

    def evaluate_to_string(self, source: str, **kwargs) -> str:
        """Evaluate and serialize the result the way a CLI would print it."""
        return serialize_result(self.evaluate(source, **kwargs))


def serialize_result(result: Sequence) -> str:
    """Serialize a result sequence: nodes as XML, atomics space separated."""
    parts: List[str] = []
    previous_was_atomic = False
    for item in result:
        if is_node(item):
            parts.append(serialize(item))
            previous_was_atomic = False
        else:
            from ..xdm import string_value_of_atomic

            text = string_value_of_atomic(item)
            if previous_was_atomic:
                parts.append(" " + text)
            else:
                parts.append(text)
            previous_was_atomic = True
    return "".join(parts)
