"""Abstract syntax tree for the XQuery subset.

Plain dataclasses; the evaluator pattern-matches on class.  Every node
carries a source position for error messages — the paper complains at
length that Galax reported "Index out of bounds" with no location, so this
engine threads locations everywhere (and can optionally suppress them to
reproduce the 2004 debugging experience).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..xdm import SequenceType


@dataclass
class Expr:
    """Base class for expressions."""

    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


def at(expr: Expr, token) -> Expr:
    """Stamp *expr* with the position of *token* and return it."""
    expr.line = token.line
    expr.column = token.column
    return expr


# -- literals and simple primaries ------------------------------------------


@dataclass
class Literal(Expr):
    """A string/number/boolean literal."""

    value: object = None


@dataclass
class EmptySequence(Expr):
    """The literal ``()``."""


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ContextItem(Expr):
    """The expression ``.``."""


@dataclass
class SequenceExpr(Expr):
    """Comma operator: concatenation with flattening."""

    items: List[Expr] = field(default_factory=list)


@dataclass
class RangeExpr(Expr):
    """``$a to $b``."""

    start: Expr = None
    end: Expr = None


@dataclass
class Arithmetic(Expr):
    op: str = ""  # + - * div idiv mod
    left: Expr = None
    right: Expr = None


@dataclass
class Unary(Expr):
    op: str = "-"
    operand: Expr = None


@dataclass
class Comparison(Expr):
    """General (= != < ...), value (eq ne ...), or node (is << >>)."""

    op: str = ""
    style: str = "general"  # general | value | node
    left: Expr = None
    right: Expr = None


@dataclass
class BooleanOp(Expr):
    op: str = "and"
    left: Expr = None
    right: Expr = None


@dataclass
class SetOp(Expr):
    """union | intersect | except, over node sequences."""

    op: str = "union"
    left: Expr = None
    right: Expr = None


# -- paths -------------------------------------------------------------------


@dataclass
class NodeTest:
    """A node test: name test (possibly wildcard) or kind test."""

    kind: str = "name"  # name | wildcard | node | text | element | attribute
    #                     | comment | processing-instruction | document-node
    name: Optional[str] = None


@dataclass
class AxisStep(Expr):
    axis: str = "child"
    test: NodeTest = field(default_factory=NodeTest)
    predicates: List[Expr] = field(default_factory=list)


@dataclass
class FilterExpr(Expr):
    """A primary expression with predicates: ``$x[2]``, ``(1,2,3)[. gt 1]``."""

    base: Expr = None
    predicates: List[Expr] = field(default_factory=list)


@dataclass
class PathExpr(Expr):
    """A path: optional root anchor, then steps.

    ``anchor`` is ``None`` (relative), ``"/"`` (from root), or ``"//"``
    (from root, descendant-or-self).  Each step pairs a separator (``"/"``
    or ``"//"``) with an expression (axis step or filter expr).
    """

    anchor: Optional[str] = None
    first: Optional[Expr] = None
    steps: List[Tuple[str, Expr]] = field(default_factory=list)


# -- FLWOR, conditionals, quantifiers ----------------------------------------


@dataclass
class ForClause:
    var: str = ""
    position_var: Optional[str] = None
    source: Expr = None
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass
class LetClause:
    var: str = ""
    value: Expr = None
    declared_type: Optional[SequenceType] = None
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass
class WhereClause:
    condition: Expr = None
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass
class OrderSpec:
    key: Expr = None
    descending: bool = False
    empty_least: bool = True


@dataclass
class OrderByClause:
    specs: List[OrderSpec] = field(default_factory=list)
    stable: bool = False


@dataclass
class FLWOR(Expr):
    clauses: List[object] = field(default_factory=list)
    result: Expr = None


@dataclass
class Quantified(Expr):
    quantifier: str = "some"  # some | every
    bindings: List[Tuple[str, Expr]] = field(default_factory=list)
    satisfies: Expr = None


@dataclass
class IfExpr(Expr):
    condition: Expr = None
    then_branch: Expr = None
    else_branch: Expr = None


@dataclass
class CaseClause:
    """One ``case [$var as] SequenceType return expr`` arm."""

    sequence_type: SequenceType = None
    var: Optional[str] = None
    result: Expr = None


@dataclass
class Typeswitch(Expr):
    """``typeswitch (expr) case ... default [$var] return expr``."""

    operand: Expr = None
    cases: List[CaseClause] = field(default_factory=list)
    default_var: Optional[str] = None
    default: Expr = None


@dataclass
class TryCatch(Expr):
    """``try { expr } catch [$var] { expr }`` — the XQuery 3.0 feature
    that answers the paper's lesson 4, implemented as an extension.

    The catch variable, if present, is bound to an
    ``<error code="..."><message>...</message></error>`` element.
    """

    body: Expr = None
    catch_var: Optional[str] = None
    handler: Expr = None


# -- functions ----------------------------------------------------------------


@dataclass
class FunctionCall(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Param:
    name: str = ""
    declared_type: Optional[SequenceType] = None
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass
class FunctionDecl:
    name: str = ""
    params: List[Param] = field(default_factory=list)
    return_type: Optional[SequenceType] = None
    body: Expr = None
    line: int = 0
    column: int = 0

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass
class VariableDecl:
    name: str = ""
    declared_type: Optional[SequenceType] = None
    value: Optional[Expr] = None  # None means "external"
    line: int = 0
    column: int = 0


# -- constructors ---------------------------------------------------------------


@dataclass
class DirectElement(Expr):
    """``<name attr="...">content</name>``.

    Attribute values and content are lists mixing literal strings and
    enclosed expressions.
    """

    name: str = ""
    attributes: List[Tuple[str, List[object]]] = field(default_factory=list)
    content: List[object] = field(default_factory=list)


@dataclass
class DirectText:
    """Literal character data inside a direct constructor."""

    text: str = ""


@dataclass
class DirectComment(Expr):
    text: str = ""


@dataclass
class DirectPI(Expr):
    """A processing instruction inside a direct constructor."""

    target: str = ""
    text: str = ""


@dataclass
class ComputedElement(Expr):
    name_expr: Expr = None  # or None with static name
    name: Optional[str] = None
    content: Optional[Expr] = None


@dataclass
class ComputedAttribute(Expr):
    name_expr: Expr = None
    name: Optional[str] = None
    content: Optional[Expr] = None


@dataclass
class ComputedText(Expr):
    content: Optional[Expr] = None


@dataclass
class ComputedComment(Expr):
    content: Optional[Expr] = None


@dataclass
class ComputedDocument(Expr):
    content: Optional[Expr] = None


# -- types ---------------------------------------------------------------------


@dataclass
class InstanceOf(Expr):
    operand: Expr = None
    sequence_type: SequenceType = None


@dataclass
class CastAs(Expr):
    operand: Expr = None
    type_name: str = ""
    allow_empty: bool = False


@dataclass
class CastableAs(Expr):
    operand: Expr = None
    type_name: str = ""
    allow_empty: bool = False


@dataclass
class TreatAs(Expr):
    operand: Expr = None
    sequence_type: SequenceType = None


# -- module ----------------------------------------------------------------------


@dataclass
class Module:
    """A parsed query: prolog declarations plus the body expression."""

    functions: List[FunctionDecl] = field(default_factory=list)
    variables: List[VariableDecl] = field(default_factory=list)
    namespaces: List[Tuple[str, str]] = field(default_factory=list)
    body: Optional[Expr] = None
    source: str = ""


def walk(expr, visit) -> None:
    """Depth-first walk calling ``visit`` on every Expr node."""
    if expr is None:
        return
    if isinstance(expr, Expr):
        visit(expr)
    for child in children_of(expr):
        walk(child, visit)


def children_of(expr) -> List[object]:
    """Child expressions of an AST node, in evaluation order."""
    if isinstance(expr, SequenceExpr):
        return list(expr.items)
    if isinstance(expr, RangeExpr):
        return [expr.start, expr.end]
    if isinstance(expr, (Arithmetic, Comparison, BooleanOp, SetOp)):
        return [expr.left, expr.right]
    if isinstance(expr, Unary):
        return [expr.operand]
    if isinstance(expr, AxisStep):
        return list(expr.predicates)
    if isinstance(expr, FilterExpr):
        return [expr.base] + list(expr.predicates)
    if isinstance(expr, PathExpr):
        children = []
        if expr.first is not None:
            children.append(expr.first)
        children.extend(step for _, step in expr.steps)
        return children
    if isinstance(expr, FLWOR):
        children = []
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                children.append(clause.source)
            elif isinstance(clause, LetClause):
                children.append(clause.value)
            elif isinstance(clause, WhereClause):
                children.append(clause.condition)
            elif isinstance(clause, OrderByClause):
                children.extend(spec.key for spec in clause.specs)
        children.append(expr.result)
        return children
    if isinstance(expr, Quantified):
        return [source for _, source in expr.bindings] + [expr.satisfies]
    if isinstance(expr, IfExpr):
        return [expr.condition, expr.then_branch, expr.else_branch]
    if isinstance(expr, Typeswitch):
        return (
            [expr.operand]
            + [case.result for case in expr.cases]
            + [expr.default]
        )
    if isinstance(expr, TryCatch):
        return [expr.body, expr.handler]
    if isinstance(expr, FunctionCall):
        return list(expr.args)
    if isinstance(expr, DirectElement):
        children = []
        for _, value_parts in expr.attributes:
            children.extend(p for p in value_parts if isinstance(p, Expr))
        children.extend(p for p in expr.content if isinstance(p, Expr))
        return children
    if isinstance(expr, (ComputedElement, ComputedAttribute)):
        children = []
        if expr.name_expr is not None:
            children.append(expr.name_expr)
        if expr.content is not None:
            children.append(expr.content)
        return children
    if isinstance(expr, (ComputedText, ComputedComment, ComputedDocument)):
        return [expr.content] if expr.content is not None else []
    if isinstance(expr, (InstanceOf, CastAs, CastableAs, TreatAs)):
        return [expr.operand]
    return []
