"""The closure-compiling XQuery backend.

The tree-walking evaluator pays a ``_DISPATCH`` dict lookup, attribute
re-resolution, and a chain of ``isinstance`` tests on *every* evaluation
step of every node — per row, per cell, per predicate.  This module walks
the (already optimized) AST **once** at compile time and emits nested
Python closures (``Callable[[DynamicContext], Sequence]``): all dispatch
decisions, node-test shapes, and function resolutions are taken while
compiling, so running a query is just calling plain closures.

Semantics are *bit-for-bit* the treewalk's — same quirks, same error codes,
same evaluation order — which is asserted by ``tests/test_backend_parity.py``
rather than by sharing the interpreter loop.  To keep drift impossible the
compiler reuses every evaluator helper that does not itself recurse through
``evaluate`` (``construct_element``, ``_test_matches``, ``_OrderKey``, …);
only the recursion itself is replaced by closures.

Child and attribute axis steps with a name test additionally use the lazy
name indexes on :class:`~repro.xdm.nodes.ElementNode`, turning the docgen
templates' hammered axes from O(children) scans into dict hits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..xdm import (
    AttributeNode,
    Node,
    CastError,
    CommentNode,
    DocumentNode,
    ElementNode,
    ComparisonTypeError,
    ProcessingInstructionNode,
    Sequence,
    TextNode,
    UntypedAtomic,
    atomize,
    cast_atomic,
    general_compare,
    sort_document_order,
    string_value_of_atomic,
    value_compare,
)
from . import ast
from .context import DynamicContext, EngineConfig
from .errors import XQueryDynamicError, XQueryTypeError
from .evaluator import (
    _OrderKey,
    _axis_candidates,
    _descendant_or_self_nodes,
    _error,
    _is_numeric_predicate,
    _node_comparison,
    _singleton_integer,
    _test_matches,
    _enclosed_items,
    construct_element,
    ebv,
)
from .functions import lookup_builtin
from .operators import arithmetic, negate, set_operation

#: A compiled expression: call it with a dynamic context, get a sequence.
Thunk = Callable[[DynamicContext], Sequence]


class CompiledProgram:
    """A whole module compiled to closures: body, globals, and functions."""

    def __init__(
        self,
        module: ast.Module,
        functions: Dict[Tuple[str, int], ast.FunctionDecl],
        config: EngineConfig,
    ):
        compiler = _Compiler(functions, config)
        for key, declaration in functions.items():
            compiler.add_function(key, declaration)
        #: closures for the prolog's *declared* (non-external) variables.
        self.variable_values: Dict[str, Thunk] = {
            declaration.name: compiler.compile(declaration.value)
            for declaration in module.variables
            if declaration.value is not None
        }
        self.body: Thunk = compiler.compile(module.body)


#: A compiled predicate: filters a candidate sequence under a context.
_Applier = Callable[[Sequence, DynamicContext], Sequence]

#: builtins that always return a singleton boolean (or raise), so their
#: effective boolean value is just the returned item.  Kept deliberately
#: small and certain; see the matching functions in ``functions.py``.
_BOOLEAN_BUILTINS = frozenset(
    ("empty", "exists", "not", "boolean", "true", "false", "contains", "starts-with")
)


def _select_position(items: Sequence, position: float) -> Sequence:
    """Fast path for a constant numeric predicate like ``[2]``."""
    index = int(position)
    if float(index) == position and 1 <= index <= len(items):
        return [items[index - 1]]
    return []


def _hoistable(expr: ast.Expr) -> bool:
    """Can *expr* be evaluated once per predicate application?

    True only for pure, focus-independent expressions that neither
    construct nodes nor have side effects, so evaluating them once instead
    of once per candidate is unobservable: literals, variable references,
    ``fn:string`` of such, and short variable-rooted paths of
    predicate-free child/attribute steps (which return *existing* nodes).
    """
    if isinstance(expr, (ast.Literal, ast.VarRef)):
        return True
    if isinstance(expr, ast.FunctionCall):
        return expr.name in ("string", "fn:string") and len(expr.args) == 1 and (
            _hoistable(expr.args[0])
        )
    if isinstance(expr, ast.PathExpr):
        return (
            expr.anchor is None
            and isinstance(expr.first, ast.VarRef)
            and all(
                isinstance(step, ast.AxisStep)
                and step.axis in ("child", "attribute")
                and step.test.kind in ("name", "wildcard")
                and not step.predicates
                for _, step in expr.steps
            )
        )
    return False


#: Axes whose scan of ONE context node is already duplicate-free and in
#: document order, so the normalizing sort is the identity and is skipped.
#: (``parent`` qualifies because it yields at most one node; the remaining
#: reverse axes yield reverse document order and must still be sorted.)
_ORDERED_AXES = frozenset(
    (
        "child",
        "attribute",
        "self",
        "descendant",
        "descendant-or-self",
        "following-sibling",
        "parent",
    )
)


def _raise_non_node_step(expr: ast.Expr, ctx: DynamicContext, item: object):
    if item is None:
        raise _error(expr, ctx, "context item is absent in a path step", "XPDY0002")
    raise _error(expr, ctx, "a path step was applied to an atomic value", "XPTY0019")


def _apply_step(thunk: Thunk, context_items: Sequence, ctx: DynamicContext) -> Sequence:
    """Compiled twin of the evaluator's ``_apply_step`` (non-initial case)."""
    # predicate-free axis steps expose their candidate scan directly: no
    # focus contexts are needed, and axis scans only ever produce nodes so
    # the node/atomic mixing check cannot fire.
    candidates = getattr(thunk, "candidates", None)
    if candidates is not None:
        if len(context_items) == 1:
            item = context_items[0]
            if not isinstance(item, Node):
                _raise_non_node_step(thunk.step_expr, ctx, item)
            found = candidates(item)
            return found if thunk.ordered else sort_document_order(found)
        results = []
        for item in context_items:
            if not isinstance(item, Node):
                _raise_non_node_step(thunk.step_expr, ctx, item)
            results.extend(candidates(item))
        return sort_document_order(results)
    size = len(context_items)
    results: Sequence = []
    saw_node = False
    saw_atomic = False
    if size:
        # one mutable focus for the whole scan; see _compile_predicate.
        focus = ctx._clone()
        focus.size = size
        for position, item in enumerate(context_items, start=1):
            focus.item = item
            focus.position = position
            for result_item in thunk(focus):
                if isinstance(result_item, Node):
                    saw_node = True
                else:
                    saw_atomic = True
                results.append(result_item)
    if saw_node and saw_atomic:
        raise XQueryTypeError(
            "a path step produced both nodes and atomic values", code="XPTY0018"
        )
    if saw_node:
        if size == 1 and getattr(thunk, "ordered", False):
            return results
        return sort_document_order(results)
    return results


class _Compiler:
    """Compiles AST nodes to thunks; one instance per program."""

    def __init__(
        self,
        functions: Dict[Tuple[str, int], ast.FunctionDecl],
        config: EngineConfig,
    ):
        self.functions = functions
        self.config = config
        #: compiled user-function bodies, looked up at call time so
        #: (mutually) recursive declarations compile in any order.
        self.function_bodies: Dict[Tuple[str, int], Thunk] = {}

    def add_function(self, key: Tuple[str, int], declaration: ast.FunctionDecl) -> None:
        self.function_bodies[key] = self.compile(declaration.body)

    def compile(self, expr: ast.Expr) -> Thunk:
        method = _COMPILE.get(type(expr))
        if method is None:
            # Parity: the treewalk only errors when such a node is evaluated.
            message = f"cannot evaluate {type(expr).__name__}"

            def run(ctx: DynamicContext) -> Sequence:
                raise XQueryDynamicError(message)

            return run
        return method(self, expr)

    def _compile_predicates(self, predicates: List[ast.Expr]) -> List[_Applier]:
        return [self._compile_predicate(p) for p in predicates]

    def _compile_predicate(self, predicate: ast.Expr) -> _Applier:
        """Compile one predicate to an applier ``(items, ctx) -> items``.

        Three shapes, chosen at compile time: a constant numeric predicate
        like ``[2]`` selects positionally; the docgen-hot shape
        ``[@name eq <pure expr>]`` compares attribute values without building
        a focus context per candidate; everything else runs the generic
        focus-per-item loop the treewalk uses.
        """
        if (
            isinstance(predicate, ast.Literal)
            and not isinstance(predicate.value, bool)
            and isinstance(predicate.value, (int, float))
        ):
            position = float(predicate.value)
            return lambda items, ctx: _select_position(items, position)
        fast = self._attribute_comparison_applier(predicate)
        if fast is None:
            fast = self._name_comparison_applier(predicate)
        if fast is not None:
            return fast
        if self._statically_boolean(predicate) or isinstance(
            predicate, (ast.BooleanOp, ast.Comparison)
        ):
            # always [], [True] or [False]: never a numeric predicate, and
            # its EBV is the item itself.  (A node-style comparison also
            # yields only booleans/empties, so it is included.)
            test = self._compile_ebv(predicate)

            def applier(items: Sequence, ctx: DynamicContext) -> Sequence:
                size = len(items)
                if not size:
                    return items
                focus = ctx._clone()
                focus.size = size
                kept = []
                for position, item in enumerate(items, start=1):
                    focus.item = item
                    focus.position = position
                    if test(focus):
                        kept.append(item)
                return kept

            return applier
        thunk = self.compile(predicate)

        def applier(items: Sequence, ctx: DynamicContext) -> Sequence:
            size = len(items)
            if not size:
                return items
            # One mutable focus serves every candidate: derived contexts
            # copy the focus fields at clone time, and evaluation is eager,
            # so nothing observes the focus after its item's thunk returns.
            focus = ctx._clone()
            focus.size = size
            kept = []
            for position, item in enumerate(items, start=1):
                focus.item = item
                focus.position = position
                result = thunk(focus)
                if _is_numeric_predicate(result):
                    if float(result[0]) == position:
                        kept.append(item)
                elif ebv(result, predicate, ctx):
                    kept.append(item)
            return kept

        return applier

    def _attribute_comparison_applier(self, predicate: ast.Expr) -> Optional[_Applier]:
        """The fast path for ``[@name eq <hoistable>]`` value comparisons.

        This is the shape the docgen/querycalc sources hammer
        (``node[@id eq string($id)]``, ``edge[@source eq $n/@id]``): the
        attribute lookup uses the element's name index, and the pure right
        side is evaluated once per application instead of once per
        candidate.  Error behaviour is order-preserving with the treewalk:
        an atomic candidate raises XPTY0019 before the right side is
        looked at, the right side is first evaluated when the first
        candidate is inspected, empty sides skip before the singleton
        check, and singleton/comparability violations carry the same
        XPTY0004 messages.
        """
        if not (
            isinstance(predicate, ast.Comparison)
            and predicate.style == "value"
            and _hoistable(predicate.right)
        ):
            return None
        left_expr = predicate.left
        # ``@name`` appears both as a bare step and as a one-step relative
        # path, depending on the production that parsed it.
        if (
            isinstance(left_expr, ast.PathExpr)
            and left_expr.anchor is None
            and not left_expr.steps
            and isinstance(left_expr.first, ast.AxisStep)
        ):
            left_expr = left_expr.first
        if not (
            isinstance(left_expr, ast.AxisStep)
            and left_expr.axis == "attribute"
            and left_expr.test.kind == "name"
            and not left_expr.predicates
        ):
            return None
        attr_name = left_expr.test.name
        op = predicate.op
        keep_equal = op == "eq"
        right_thunk = self.compile(predicate.right)

        def applier(items: Sequence, ctx: DynamicContext) -> Sequence:
            kept = []
            right_atoms: Optional[Sequence] = None
            # When the right side is a singleton string(-ish) atom and the
            # operator is eq/ne, the untyped attribute value compares as a
            # plain string: skip value_compare (and its promotion ladder)
            # per candidate entirely.
            target: Optional[str] = None
            for item in items:
                if not isinstance(item, Node):
                    _raise_non_node_step(left_expr, ctx, item)
                if isinstance(item, ElementNode):
                    matches = item.attributes_by_name(attr_name)
                else:
                    matches = [a for a in item.attributes if a.name == attr_name]
                if right_atoms is None:
                    right_atoms = atomize(right_thunk(ctx))
                    if len(right_atoms) == 1 and op in ("eq", "ne"):
                        atom = right_atoms[0]
                        if isinstance(atom, UntypedAtomic):
                            target = atom.value
                        elif isinstance(atom, str):
                            target = atom
                if not matches or not right_atoms:
                    continue
                if target is not None and len(matches) == 1:
                    if (matches[0].value == target) == keep_equal:
                        kept.append(item)
                    continue
                left_atoms = atomize(matches)
                if len(left_atoms) > 1 or len(right_atoms) > 1:
                    raise _error(
                        predicate,
                        ctx,
                        f"value comparison '{op}' requires singleton operands",
                        "XPTY0004",
                    )
                try:
                    if value_compare(op, left_atoms[0], right_atoms[0]):
                        kept.append(item)
                except ComparisonTypeError as exc:
                    raise _error(predicate, ctx, str(exc), "XPTY0004") from exc
            return kept

        return applier

    def _is_builtin_name_call(self, expr: ast.Expr) -> bool:
        """``name()`` or ``name(.)``, resolving to the builtin (unshadowed)."""
        if not isinstance(expr, ast.FunctionCall):
            return False
        fname = expr.name
        if fname.startswith("fn:"):
            fname = fname[3:]
        if fname != "name":
            return False
        if expr.args and not (
            len(expr.args) == 1 and isinstance(expr.args[0], ast.ContextItem)
        ):
            return False
        return (fname, len(expr.args)) not in self.functions and (
            lookup_builtin(fname, len(expr.args)) is not None
        )

    def _name_comparison_applier(self, predicate: ast.Expr) -> Optional[_Applier]:
        """The fast path for ``[name(.) eq <hoistable>]`` predicates.

        ``local:child-element-named`` and ``local:required-attr`` in the
        docgen sources select by node name this way for every directive.
        ``fn:name`` of a node is its name string (or ``""``), so the whole
        test collapses to a string comparison per candidate; errors keep
        the treewalk's order (a non-node candidate raises the builtin's
        type error before the right side is looked at).
        """
        if not (
            isinstance(predicate, ast.Comparison)
            and predicate.style == "value"
            and self._is_builtin_name_call(predicate.left)
            and _hoistable(predicate.right)
        ):
            return None
        op = predicate.op
        fast_eq = op in ("eq", "ne")
        keep_equal = op == "eq"
        right_thunk = self.compile(predicate.right)

        def applier(items: Sequence, ctx: DynamicContext) -> Sequence:
            kept = []
            right_atoms: Optional[Sequence] = None
            target: Optional[str] = None
            for item in items:
                if not isinstance(item, Node):
                    raise XQueryTypeError("name requires a node argument")
                if right_atoms is None:
                    right_atoms = atomize(right_thunk(ctx))
                    if fast_eq and len(right_atoms) == 1:
                        atom = right_atoms[0]
                        if isinstance(atom, UntypedAtomic):
                            target = atom.value
                        elif isinstance(atom, str):
                            target = atom
                if not right_atoms:
                    continue
                if target is not None:
                    if ((item.name or "") == target) == keep_equal:
                        kept.append(item)
                    continue
                if len(right_atoms) > 1:
                    raise _error(
                        predicate,
                        ctx,
                        f"value comparison '{op}' requires singleton operands",
                        "XPTY0004",
                    )
                try:
                    if value_compare(op, item.name or "", right_atoms[0]):
                        kept.append(item)
                except ComparisonTypeError as exc:
                    raise _error(predicate, ctx, str(exc), "XPTY0004") from exc
            return kept

        return applier

    # -- simple expressions ------------------------------------------------

    def _literal(self, expr: ast.Literal) -> Thunk:
        value = expr.value
        return lambda ctx: [value]

    def _empty(self, expr: ast.EmptySequence) -> Thunk:
        return lambda ctx: []

    def _var(self, expr: ast.VarRef) -> Thunk:
        name = expr.name

        def run(ctx: DynamicContext) -> Sequence:
            try:
                return ctx.variables[name]
            except KeyError:
                if ctx.config.galax_diagnostics:
                    raise XQueryDynamicError(
                        "Internal_Error: Variable '$glx:dot' not found.",
                        code="XPDY0002",
                    ) from None
                raise _error(
                    expr, ctx, f"undefined variable ${name}", "XPST0008"
                ) from None

        return run

    def _context_item(self, expr: ast.ContextItem) -> Thunk:
        def run(ctx: DynamicContext) -> Sequence:
            if ctx.item is None:
                raise _error(expr, ctx, "context item is absent", "XPDY0002")
            return [ctx.item]

        return run

    def _sequence(self, expr: ast.SequenceExpr) -> Thunk:
        parts = tuple(self.compile(item) for item in expr.items)

        def run(ctx: DynamicContext) -> Sequence:
            result: Sequence = []
            for part in parts:
                result.extend(part(ctx))
            return result

        return run

    def _range(self, expr: ast.RangeExpr) -> Thunk:
        start_thunk = self.compile(expr.start)
        end_thunk = self.compile(expr.end)

        def run(ctx: DynamicContext) -> Sequence:
            start = _singleton_integer(start_thunk(ctx), expr, ctx)
            end = _singleton_integer(end_thunk(ctx), expr, ctx)
            if start is None or end is None or start > end:
                return []
            return list(range(start, end + 1))

        return run

    def _arithmetic(self, expr: ast.Arithmetic) -> Thunk:
        left_thunk = self.compile(expr.left)
        right_thunk = self.compile(expr.right)
        op = expr.op

        def run(ctx: DynamicContext) -> Sequence:
            left = left_thunk(ctx)
            right = right_thunk(ctx)
            try:
                return arithmetic(op, left, right)
            except XQueryTypeError as exc:
                raise _error(expr, ctx, exc.bare_message, exc.code) from exc

        return run

    def _unary(self, expr: ast.Unary) -> Thunk:
        operand_thunk = self.compile(expr.operand)

        def run(ctx: DynamicContext) -> Sequence:
            try:
                return negate(operand_thunk(ctx))
            except XQueryTypeError as exc:
                raise _error(expr, ctx, exc.bare_message, exc.code) from exc

        return run

    def _comparison(self, expr: ast.Comparison) -> Thunk:
        left_thunk = self.compile(expr.left)
        right_thunk = self.compile(expr.right)
        op = expr.op
        if expr.style == "general":

            def run(ctx: DynamicContext) -> Sequence:
                left = left_thunk(ctx)
                right = right_thunk(ctx)
                try:
                    return [general_compare(op, left, right)]
                except ComparisonTypeError as exc:
                    raise _error(expr, ctx, str(exc), "XPTY0004") from exc

            return run
        if expr.style == "value":

            def run(ctx: DynamicContext) -> Sequence:
                left_atoms = atomize(left_thunk(ctx))
                right_atoms = atomize(right_thunk(ctx))
                if not left_atoms or not right_atoms:
                    return []
                if len(left_atoms) > 1 or len(right_atoms) > 1:
                    raise _error(
                        expr,
                        ctx,
                        f"value comparison '{op}' requires singleton operands",
                        "XPTY0004",
                    )
                try:
                    return [value_compare(op, left_atoms[0], right_atoms[0])]
                except ComparisonTypeError as exc:
                    raise _error(expr, ctx, str(exc), "XPTY0004") from exc

            return run

        def run(ctx: DynamicContext) -> Sequence:
            left = left_thunk(ctx)
            right = right_thunk(ctx)
            return _node_comparison(expr, left, right, ctx)

        return run

    def _statically_boolean(self, expr: ast.Expr) -> bool:
        """Does *expr* always produce ``[]``, ``[True]`` or ``[False]``?

        For such shapes the effective boolean value is just the item (or
        False when empty), so EBV consumers skip the generic ``ebv`` path.
        """
        if isinstance(
            expr, (ast.BooleanOp, ast.Quantified, ast.InstanceOf, ast.CastableAs)
        ):
            return True
        if isinstance(expr, ast.Comparison):
            return expr.style in ("general", "value")
        if isinstance(expr, ast.FunctionCall):
            name = expr.name
            if name.startswith("fn:"):
                name = name[3:]
            return (
                name in _BOOLEAN_BUILTINS
                and (name, len(expr.args)) not in self.functions
                and lookup_builtin(name, len(expr.args)) is not None
            )
        return False

    def _compile_ebv(
        self, expr: ast.Expr, error_expr: Optional[ast.Expr] = None
    ) -> Callable[[DynamicContext], bool]:
        """Compile *expr* straight to its effective boolean value.

        Boolean operators, comparisons, and quantifiers in boolean
        positions (conditions, where clauses, predicates) skip building a
        singleton list only to take its EBV again.  Order of evaluation
        and every error are exactly the generic path's; ``error_expr`` is
        what a failing EBV blames, which the treewalk varies by call site
        (a boolean operator blames itself, not its operand).
        """
        if error_expr is None:
            error_expr = expr
        if isinstance(expr, ast.BooleanOp):
            left_test = self._compile_ebv(expr.left, expr)
            right_test = self._compile_ebv(expr.right, expr)
            if expr.op == "and":
                return lambda ctx: left_test(ctx) and right_test(ctx)
            return lambda ctx: left_test(ctx) or right_test(ctx)
        if isinstance(expr, ast.Comparison) and expr.style == "general":
            left_thunk = self.compile(expr.left)
            right_thunk = self.compile(expr.right)
            op = expr.op

            def test(ctx: DynamicContext) -> bool:
                try:
                    return general_compare(op, left_thunk(ctx), right_thunk(ctx))
                except ComparisonTypeError as exc:
                    raise _error(expr, ctx, str(exc), "XPTY0004") from exc

            return test
        if isinstance(expr, ast.Comparison) and expr.style == "value":
            left_thunk = self.compile(expr.left)
            right_thunk = self.compile(expr.right)
            op = expr.op
            fast_eq = op in ("eq", "ne")
            keep_equal = op == "eq"

            def test(ctx: DynamicContext) -> bool:
                left_atoms = atomize(left_thunk(ctx))
                right_atoms = atomize(right_thunk(ctx))
                if not left_atoms or not right_atoms:
                    return False  # the comparison's [] has EBV false
                if len(left_atoms) > 1 or len(right_atoms) > 1:
                    raise _error(
                        expr,
                        ctx,
                        f"value comparison '{op}' requires singleton operands",
                        "XPTY0004",
                    )
                left = left_atoms[0]
                right = right_atoms[0]
                if fast_eq:
                    # Untyped-vs-untyped and untyped-vs-string eq/ne reduce
                    # to plain string equality under the promotion rules.
                    lv = left.value if type(left) is UntypedAtomic else left
                    rv = right.value if type(right) is UntypedAtomic else right
                    if type(lv) is str and type(rv) is str:
                        return (lv == rv) == keep_equal
                try:
                    return value_compare(op, left, right)
                except ComparisonTypeError as exc:
                    raise _error(expr, ctx, str(exc), "XPTY0004") from exc

            return test
        thunk = self.compile(expr)
        fast = getattr(thunk, "ebv", None)
        if fast is not None:
            return fast
        if self._statically_boolean(expr):
            def test(ctx: DynamicContext) -> bool:
                result = thunk(ctx)
                return result[0] if result else False

            return test

        def test(ctx: DynamicContext) -> bool:
            return ebv(thunk(ctx), error_expr, ctx)

        return test

    def _boolean_op(self, expr: ast.BooleanOp) -> Thunk:
        test = self._compile_ebv(expr)

        def run(ctx: DynamicContext) -> Sequence:
            return [test(ctx)]

        run.ebv = test
        return run

    def _set_op(self, expr: ast.SetOp) -> Thunk:
        left_thunk = self.compile(expr.left)
        right_thunk = self.compile(expr.right)
        op = expr.op

        def run(ctx: DynamicContext) -> Sequence:
            left = left_thunk(ctx)
            right = right_thunk(ctx)
            try:
                return set_operation(op, left, right)
            except XQueryTypeError as exc:
                raise _error(expr, ctx, exc.bare_message, exc.code) from exc

        return run

    # -- paths --------------------------------------------------------------

    def _candidate_selector(self, expr: ast.AxisStep) -> Callable:
        """Choose the candidate scan once, at compile time.

        The hot shapes — ``child::name`` and ``attribute::name`` — read the
        element's lazy name indexes (copied so the internal lists never
        leak); everything else falls back to the generic axis walk the
        treewalk uses.
        """
        axis = expr.axis
        test = expr.test
        if axis == "child" and test.kind == "name":
            name = test.name

            def candidates(node):
                if isinstance(node, ElementNode):
                    return list(node.children_by_name(name))
                return [
                    child
                    for child in node.children
                    if isinstance(child, ElementNode) and child.name == name
                ]

            return candidates
        if axis == "attribute" and test.kind == "name":
            name = test.name

            def candidates(node):
                if isinstance(node, ElementNode):
                    return list(node.attributes_by_name(name))
                return [a for a in node.attributes if a.name == name]

            return candidates

        def candidates(node):
            return [
                n for n in _axis_candidates(node, axis) if _test_matches(test, n, axis)
            ]

        return candidates

    def _axis_step(self, expr: ast.AxisStep) -> Thunk:
        candidates = self._candidate_selector(expr)
        appliers = self._compile_predicates(expr.predicates)

        def run(ctx: DynamicContext) -> Sequence:
            item = ctx.item
            if not isinstance(item, Node):
                _raise_non_node_step(expr, ctx, item)
            items = candidates(item)
            for applier in appliers:
                items = applier(items, ctx)
            return items

        # metadata _apply_step uses for its fast paths
        run.step_expr = expr
        run.ordered = expr.axis in _ORDERED_AXES
        if not appliers:
            run.candidates = candidates
        return run

    def _filter(self, expr: ast.FilterExpr) -> Thunk:
        base_thunk = self.compile(expr.base)
        appliers = self._compile_predicates(expr.predicates)

        def run(ctx: DynamicContext) -> Sequence:
            items = base_thunk(ctx)
            for applier in appliers:
                items = applier(items, ctx)
            return items

        return run

    def _path(self, expr: ast.PathExpr) -> Thunk:
        anchor = expr.anchor
        first_thunk = self.compile(expr.first) if expr.first is not None else None
        first_is_axis = isinstance(expr.first, ast.AxisStep)
        # per step, the _apply_step metadata is looked up once at compile
        # time so the hot loop below branches straight to the fast path.
        steps = tuple(
            (
                separator == "//",
                thunk,
                getattr(thunk, "candidates", None),
                getattr(thunk, "ordered", False),
                step,
            )
            for separator, step, thunk in (
                (separator, step, self.compile(step))
                for separator, step in expr.steps
            )
        )

        def run(ctx: DynamicContext) -> Sequence:
            if anchor in ("/", "//"):
                if not isinstance(ctx.item, Node):
                    raise _error(
                        expr, ctx, "'/' requires a node as the context item", "XPDY0002"
                    )
                current: Sequence = [ctx.item.root()]
                if anchor == "//":
                    current = _descendant_or_self_nodes(current)
                if first_thunk is not None:
                    current = _apply_step(first_thunk, current, ctx)
            elif first_is_axis:
                current = _apply_step(
                    first_thunk, [ctx.item] if ctx.item is not None else [None], ctx
                )
            else:
                # The leading expression of a relative path is evaluated once
                # in the outer focus, exactly as the treewalk does.
                current = first_thunk(ctx)
            for expand, step_thunk, candidates, ordered, step_expr in steps:
                if ctx.deadline is not None:
                    ctx.check_deadline()
                if expand:
                    current = _descendant_or_self_nodes(current)
                if candidates is None:
                    current = _apply_step(step_thunk, current, ctx)
                elif len(current) == 1:
                    item = current[0]
                    if not isinstance(item, Node):
                        _raise_non_node_step(step_expr, ctx, item)
                    found = candidates(item)
                    current = found if ordered else sort_document_order(found)
                else:
                    results: Sequence = []
                    for item in current:
                        if not isinstance(item, Node):
                            _raise_non_node_step(step_expr, ctx, item)
                        results.extend(candidates(item))
                    current = sort_document_order(results)
            return current

        return run

    # -- FLWOR, quantifiers, conditionals -----------------------------------

    def _flwor(self, expr: ast.FLWOR) -> Thunk:
        compiled_clauses: List[tuple] = []
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                compiled_clauses.append(
                    ("for", clause.var, clause.position_var, self.compile(clause.source))
                )
            elif isinstance(clause, ast.LetClause):
                compiled_clauses.append(
                    ("let", clause.var, clause.declared_type, self.compile(clause.value))
                )
            elif isinstance(clause, ast.WhereClause):
                compiled_clauses.append(
                    ("where", self._compile_ebv(clause.condition))
                )
            elif isinstance(clause, ast.OrderByClause):
                specs = tuple(
                    (self.compile(spec.key), spec.descending, spec.empty_least)
                    for spec in clause.specs
                )
                compiled_clauses.append(("order", specs))
        result_thunk = self.compile(expr.result)

        def run(ctx: DynamicContext) -> Sequence:
            check_deadline = ctx.deadline is not None
            tuples: List[Dict[str, Sequence]] = [dict()]
            for compiled in compiled_clauses:
                if check_deadline:
                    ctx.check_deadline()
                kind = compiled[0]
                if kind == "for":
                    _, var, position_var, source_thunk = compiled
                    expanded = []
                    for bindings in tuples:
                        if check_deadline:
                            ctx.check_deadline()
                        scope = ctx.with_variables(bindings)
                        source = source_thunk(scope)
                        for position, item in enumerate(source, start=1):
                            new_bindings = dict(bindings)
                            new_bindings[var] = [item]
                            if position_var is not None:
                                new_bindings[position_var] = [position]
                            expanded.append(new_bindings)
                    tuples = expanded
                elif kind == "let":
                    _, var, declared_type, value_thunk = compiled
                    for bindings in tuples:
                        if check_deadline:
                            ctx.check_deadline()
                        scope = ctx.with_variables(bindings)
                        value = value_thunk(scope)
                        if declared_type is not None and not declared_type.matches(value):
                            raise _error(
                                expr,
                                ctx,
                                f"let ${var} value does not match "
                                f"declared type {declared_type!r}",
                                "XPTY0004",
                            )
                        bindings[var] = value
                elif kind == "where":
                    _, condition_test = compiled
                    if check_deadline:
                        kept = []
                        for bindings in tuples:
                            ctx.check_deadline()
                            if condition_test(ctx.with_variables(bindings)):
                                kept.append(bindings)
                        tuples = kept
                    else:
                        tuples = [
                            bindings
                            for bindings in tuples
                            if condition_test(ctx.with_variables(bindings))
                        ]
                else:  # order
                    _, specs = compiled
                    decorated = []
                    for index, bindings in enumerate(tuples):
                        if check_deadline:
                            ctx.check_deadline()
                        scope = ctx.with_variables(bindings)
                        keys = tuple(
                            _OrderKey(key_thunk(scope), descending, empty_least)
                            for key_thunk, descending, empty_least in specs
                        )
                        decorated.append((keys, index, bindings))
                    decorated.sort(key=lambda entry: (entry[0], entry[1]))
                    tuples = [bindings for _, _, bindings in decorated]
            result: Sequence = []
            for bindings in tuples:
                if check_deadline:
                    ctx.check_deadline()
                scope = ctx.with_variables(bindings)
                result.extend(result_thunk(scope))
            return result

        return run

    def _quantified(self, expr: ast.Quantified) -> Thunk:
        bindings = tuple((var, self.compile(source)) for var, source in expr.bindings)
        satisfies_test = self._compile_ebv(expr.satisfies)
        some = expr.quantifier == "some"
        count = len(bindings)

        def loop(index: int, ctx: DynamicContext) -> bool:
            if index == count:
                return satisfies_test(ctx)
            var, source_thunk = bindings[index]
            for item in source_thunk(ctx):
                scope = ctx.with_variables({var: [item]})
                if loop(index + 1, scope) == some:
                    return some
            return not some

        def run(ctx: DynamicContext) -> Sequence:
            return [loop(0, ctx)]

        run.ebv = lambda ctx: loop(0, ctx)
        return run

    def _try_catch(self, expr: ast.TryCatch) -> Thunk:
        body_thunk = self.compile(expr.body)
        handler_thunk = self.compile(expr.handler)
        catch_var = expr.catch_var

        def run(ctx: DynamicContext) -> Sequence:
            try:
                return body_thunk(ctx)
            except XQueryDynamicError as error:
                if catch_var is None:
                    return handler_thunk(ctx)
                message = ElementNode("message")
                message.append(TextNode(getattr(error, "bare_message", str(error))))
                error_element = ElementNode("error")
                error_element.set_attribute("code", error.code)
                error_element.append(message)
                scope = ctx.with_variables({catch_var: [error_element]})
                return handler_thunk(scope)

        return run

    def _typeswitch(self, expr: ast.Typeswitch) -> Thunk:
        operand_thunk = self.compile(expr.operand)
        cases = tuple(
            (case.sequence_type, case.var, self.compile(case.result))
            for case in expr.cases
        )
        default_var = expr.default_var
        default_thunk = self.compile(expr.default)

        def run(ctx: DynamicContext) -> Sequence:
            value = operand_thunk(ctx)
            for sequence_type, var, result_thunk in cases:
                if sequence_type.matches(value):
                    scope = ctx.with_variables({var: value}) if var else ctx
                    return result_thunk(scope)
            scope = ctx.with_variables({default_var: value}) if default_var else ctx
            return default_thunk(scope)

        return run

    def _if(self, expr: ast.IfExpr) -> Thunk:
        condition_test = self._compile_ebv(expr.condition)
        then_thunk = self.compile(expr.then_branch)
        else_thunk = self.compile(expr.else_branch)

        def run(ctx: DynamicContext) -> Sequence:
            if condition_test(ctx):
                return then_thunk(ctx)
            return else_thunk(ctx)

        return run

    # -- functions -----------------------------------------------------------

    def _function_call(self, expr: ast.FunctionCall) -> Thunk:
        name = expr.name
        if name.startswith("fn:"):
            name = name[3:]
        if name.startswith("xs:"):
            return self._constructor_function(expr, name)

        local_name = name.split(":", 1)[1] if name.startswith("local:") else name
        key = (local_name, len(expr.args))
        declaration = self.functions.get(key)
        if declaration is not None:
            return self._user_function_call(expr, key, declaration)

        builtin = lookup_builtin(name, len(expr.args))
        if builtin is None:
            message = (
                f"unknown function {expr.name}() with {len(expr.args)} argument(s)"
            )

            def run(ctx: DynamicContext) -> Sequence:
                raise _error(expr, ctx, message, "XPST0017")

            return run
        arg_thunks = tuple(self.compile(arg) for arg in expr.args)

        def run(ctx: DynamicContext) -> Sequence:
            args = [thunk(ctx) for thunk in arg_thunks]
            return builtin(ctx, args, expr)

        if name in _BOOLEAN_BUILTINS:
            run.ebv = lambda ctx: builtin(
                ctx, [thunk(ctx) for thunk in arg_thunks], expr
            )[0]
        return run

    def _constructor_function(self, expr: ast.FunctionCall, name: str) -> Thunk:
        if len(expr.args) != 1:

            def run(ctx: DynamicContext) -> Sequence:
                raise _error(expr, ctx, f"{name} expects one argument", "XPST0017")

            return run
        arg_thunk = self.compile(expr.args[0])

        def run(ctx: DynamicContext) -> Sequence:
            value = atomize(arg_thunk(ctx))
            if not value:
                return []
            if len(value) > 1:
                raise _error(expr, ctx, f"{name} requires a singleton", "XPTY0004")
            try:
                return [cast_atomic(value[0], name)]
            except CastError as exc:
                raise _error(expr, ctx, str(exc), "FORG0001") from exc

        return run

    def _user_function_call(
        self,
        expr: ast.FunctionCall,
        key: Tuple[str, int],
        declaration: ast.FunctionDecl,
    ) -> Thunk:
        function_name = declaration.name
        bodies = self.function_bodies  # resolved at call time: recursion-safe
        max_depth = self.config.max_recursion_depth
        # The program is compiled against one config (the compile cache is
        # keyed on it), so the type-checking decision and the per-parameter
        # checks are taken here, not per call.
        check_types = self.config.type_check_calls
        param_specs = tuple(
            (
                param.name,
                arg_thunk,
                param.declared_type if check_types else None,
                f"argument ${param.name} of {function_name}() does not match "
                f"declared type {param.declared_type!r}",
            )
            for param, arg_thunk in zip(
                declaration.params, (self.compile(arg) for arg in expr.args)
            )
        )
        return_type = declaration.return_type if check_types else None

        def run(ctx: DynamicContext) -> Sequence:
            if ctx.depth >= max_depth:
                raise _error(
                    expr,
                    ctx,
                    f"recursion depth limit exceeded calling {function_name}()",
                    "FOER0000",
                )
            ctx.check_deadline()
            bindings: Dict[str, Sequence] = {}
            for param_name, arg_thunk, declared_type, type_message in param_specs:
                value = arg_thunk(ctx)
                if declared_type is not None and not declared_type.matches(value):
                    raise _error(expr, ctx, type_message, "XPTY0004")
                bindings[param_name] = value
            scope = ctx.function_scope(bindings)
            result = bodies[key](scope)
            if return_type is not None and not return_type.matches(result):
                raise _error(
                    expr,
                    ctx,
                    f"result of {function_name}() does not match declared type "
                    f"{return_type!r}",
                    "XPTY0004",
                )
            return result

        return run

    # -- type expressions ------------------------------------------------------

    def _instance_of(self, expr: ast.InstanceOf) -> Thunk:
        operand_thunk = self.compile(expr.operand)
        sequence_type = expr.sequence_type

        def run(ctx: DynamicContext) -> Sequence:
            return [sequence_type.matches(operand_thunk(ctx))]

        run.ebv = lambda ctx: sequence_type.matches(operand_thunk(ctx))
        return run

    def _cast(self, expr: ast.CastAs) -> Thunk:
        operand_thunk = self.compile(expr.operand)
        type_name = expr.type_name
        allow_empty = expr.allow_empty

        def run(ctx: DynamicContext) -> Sequence:
            value = atomize(operand_thunk(ctx))
            if not value:
                if allow_empty:
                    return []
                raise _error(expr, ctx, "cast of an empty sequence", "XPTY0004")
            if len(value) > 1:
                raise _error(expr, ctx, "cast requires a singleton", "XPTY0004")
            try:
                return [cast_atomic(value[0], type_name)]
            except CastError as exc:
                raise _error(expr, ctx, str(exc), "FORG0001") from exc

        return run

    def _castable(self, expr: ast.CastableAs) -> Thunk:
        operand_thunk = self.compile(expr.operand)
        type_name = expr.type_name
        allow_empty = expr.allow_empty

        def run(ctx: DynamicContext) -> Sequence:
            value = atomize(operand_thunk(ctx))
            if not value:
                return [allow_empty]
            if len(value) > 1:
                return [False]
            try:
                cast_atomic(value[0], type_name)
                return [True]
            except CastError:
                return [False]

        return run

    def _treat(self, expr: ast.TreatAs) -> Thunk:
        operand_thunk = self.compile(expr.operand)
        sequence_type = expr.sequence_type

        def run(ctx: DynamicContext) -> Sequence:
            value = operand_thunk(ctx)
            if not sequence_type.matches(value):
                raise _error(
                    expr,
                    ctx,
                    f"treat as: value does not match {sequence_type!r}",
                    "XPDY0050",
                )
            return value

        return run

    # -- constructors -----------------------------------------------------------

    def _direct_element(self, expr: ast.DirectElement) -> Thunk:
        compiled_attributes = tuple(
            (
                attr_name,
                tuple(
                    part if isinstance(part, str) else self.compile(part)
                    for part in parts
                ),
            )
            for attr_name, parts in expr.attributes
        )
        has_duplicate_names = len({name for name, _ in expr.attributes}) != len(
            expr.attributes
        )
        part_thunks: List[Thunk] = []
        for part in expr.content:
            if isinstance(part, ast.DirectText):
                text = part.text
                part_thunks.append(lambda ctx, text=text: [TextNode(text)])
            elif isinstance(part, ast.DirectComment):
                text = part.text
                part_thunks.append(lambda ctx, text=text: [CommentNode(text)])
            elif isinstance(part, ast.DirectPI):
                target, text = part.target, part.text
                part_thunks.append(
                    lambda ctx, target=target, text=text: [
                        ProcessingInstructionNode(target, text)
                    ]
                )
            elif isinstance(part, ast.DirectElement):
                part_thunks.append(self._direct_element(part))
            else:
                # space-joining of adjacent atomics applies *within* one
                # enclosed expression; across enclosures text just abuts.
                enclosed_thunk = self.compile(part)
                part_thunks.append(
                    lambda ctx, thunk=enclosed_thunk: _enclosed_items(thunk(ctx))
                )
        name = expr.name
        parts_tuple = tuple(part_thunks)

        def run(ctx: DynamicContext) -> Sequence:
            literal_attributes = [
                AttributeNode(attr_name, _attribute_value_text(parts, ctx))
                for attr_name, parts in compiled_attributes
            ]
            if has_duplicate_names:
                raise _error(
                    expr, ctx, "duplicate attribute in direct constructor", "XQST0040"
                )
            content_items: Sequence = []
            for thunk in parts_tuple:
                content_items.extend(thunk(ctx))
            return [
                construct_element(
                    name, content_items, ctx, expr, literal_attributes=literal_attributes
                )
            ]

        return run

    def _direct_comment(self, expr: ast.DirectComment) -> Thunk:
        text = expr.text
        return lambda ctx: [CommentNode(text)]

    def _name_thunk(self, expr) -> Callable[[DynamicContext], str]:
        if expr.name is not None:
            name = expr.name
            return lambda ctx: name
        name_thunk = self.compile(expr.name_expr)

        def run(ctx: DynamicContext) -> str:
            value = atomize(name_thunk(ctx))
            if len(value) != 1:
                raise _error(
                    expr, ctx, "computed constructor name must be a singleton", "XPTY0004"
                )
            return string_value_of_atomic(value[0])

        return run

    def _computed_element(self, expr: ast.ComputedElement) -> Thunk:
        name_thunk = self._name_thunk(expr)
        content_thunk = self.compile(expr.content) if expr.content is not None else None

        def run(ctx: DynamicContext) -> Sequence:
            name = name_thunk(ctx)
            content = content_thunk(ctx) if content_thunk is not None else []
            return [construct_element(name, content, ctx, expr)]

        return run

    def _computed_attribute(self, expr: ast.ComputedAttribute) -> Thunk:
        name_thunk = self._name_thunk(expr)
        content_thunk = self.compile(expr.content) if expr.content is not None else None

        def run(ctx: DynamicContext) -> Sequence:
            name = name_thunk(ctx)
            content = atomize(content_thunk(ctx)) if content_thunk is not None else []
            text = " ".join(string_value_of_atomic(item) for item in content)
            return [AttributeNode(name, text)]

        return run

    def _computed_text(self, expr: ast.ComputedText) -> Thunk:
        content_thunk = self.compile(expr.content) if expr.content is not None else None

        def run(ctx: DynamicContext) -> Sequence:
            content = atomize(content_thunk(ctx)) if content_thunk is not None else []
            if not content:
                return []
            return [TextNode(" ".join(string_value_of_atomic(item) for item in content))]

        return run

    def _computed_comment(self, expr: ast.ComputedComment) -> Thunk:
        content_thunk = self.compile(expr.content) if expr.content is not None else None

        def run(ctx: DynamicContext) -> Sequence:
            content = atomize(content_thunk(ctx)) if content_thunk is not None else []
            return [CommentNode(" ".join(string_value_of_atomic(item) for item in content))]

        return run

    def _computed_document(self, expr: ast.ComputedDocument) -> Thunk:
        content_thunk = self.compile(expr.content) if expr.content is not None else None

        def run(ctx: DynamicContext) -> Sequence:
            content = content_thunk(ctx) if content_thunk is not None else []
            document = DocumentNode()
            for item in content:
                if isinstance(item, AttributeNode):
                    raise _error(
                        expr,
                        ctx,
                        "a document node cannot contain attribute nodes",
                        "XPTY0004",
                    )
                if isinstance(item, Node):
                    document.append(item.copy())
                else:
                    document.append(TextNode(string_value_of_atomic(item)))
            return [document]

        return run


def _attribute_value_text(parts: tuple, ctx: DynamicContext) -> str:
    pieces: List[str] = []
    for part in parts:
        if isinstance(part, str):
            pieces.append(part)
        else:
            value = part(ctx)
            pieces.append(
                " ".join(
                    item.string_value() if isinstance(item, Node) else string_value_of_atomic(item)
                    for item in value
                )
            )
    return "".join(pieces)


_COMPILE = {
    ast.Literal: _Compiler._literal,
    ast.EmptySequence: _Compiler._empty,
    ast.VarRef: _Compiler._var,
    ast.ContextItem: _Compiler._context_item,
    ast.SequenceExpr: _Compiler._sequence,
    ast.RangeExpr: _Compiler._range,
    ast.Arithmetic: _Compiler._arithmetic,
    ast.Unary: _Compiler._unary,
    ast.Comparison: _Compiler._comparison,
    ast.BooleanOp: _Compiler._boolean_op,
    ast.SetOp: _Compiler._set_op,
    ast.AxisStep: _Compiler._axis_step,
    ast.FilterExpr: _Compiler._filter,
    ast.PathExpr: _Compiler._path,
    ast.FLWOR: _Compiler._flwor,
    ast.Quantified: _Compiler._quantified,
    ast.IfExpr: _Compiler._if,
    ast.Typeswitch: _Compiler._typeswitch,
    ast.TryCatch: _Compiler._try_catch,
    ast.FunctionCall: _Compiler._function_call,
    ast.InstanceOf: _Compiler._instance_of,
    ast.CastAs: _Compiler._cast,
    ast.CastableAs: _Compiler._castable,
    ast.TreatAs: _Compiler._treat,
    ast.DirectElement: _Compiler._direct_element,
    ast.DirectComment: _Compiler._direct_comment,
    ast.ComputedElement: _Compiler._computed_element,
    ast.ComputedAttribute: _Compiler._computed_attribute,
    ast.ComputedText: _Compiler._computed_text,
    ast.ComputedComment: _Compiler._computed_comment,
    ast.ComputedDocument: _Compiler._computed_document,
}
