"""Static and dynamic evaluation contexts, and engine configuration."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..xdm import DocumentNode, Sequence
from .ast import FunctionDecl
from .errors import XQueryTimeoutError


@dataclass
class EngineConfig:
    """Tunable behaviours, several of which reproduce 2004-era Galax.

    ``duplicate_attribute_mode``
        What a constructor does when two attribute nodes share a name:
        ``"last"`` or ``"first"`` keep one (the two legal outcomes the paper
        shows), ``"keep"`` keeps both (the Galax bug the paper observed),
        ``"error"`` raises XQDY0025 (the eventual standard).
    ``galax_diagnostics``
        When True, dynamic errors lose their location information and a
        missing variable is reported as the infamous
        ``Internal_Error: Variable '$glx:dot' not found.`` — the message the
        paper quotes.  Used by the debugging experiments.
    ``optimize`` / ``trace_is_dead_code``
        Run the optimizer; and, if so, whether its dead-code pass considers
        ``fn:trace`` removable (the transient Galax optimizer bug that made
        the paper's tracing vanish).
    ``max_recursion_depth``
        Guard for runaway recursive user functions.
    ``backend``
        Which execution backend ``CompiledQuery.run`` uses by default:
        ``"treewalk"`` (the period-accurate reference interpreter),
        ``"closures"`` (the closure-compiling backend, same semantics,
        several times faster), or ``"algebra"`` (the set-at-a-time plan
        executor with index scans and hash joins; see
        :mod:`repro.xquery.algebra`).  Parity across all three is asserted
        by ``tests/test_backend_parity.py`` and the differential fuzzer.
    ``compile_cache_size``
        Maximum number of compiled queries the engine's LRU compile cache
        retains; ``0`` disables caching entirely.
    ``lint``
        Run the static analyzer (:mod:`repro.xquery.analysis`) at compile
        time, *before* the optimizer runs: ``"off"`` (default), ``"warn"``
        (emit a :class:`~repro.xquery.analysis.LintWarning` per finding of
        warning severity or worse), or ``"error"`` (raise
        :class:`~repro.xquery.errors.XQueryStaticError` on the first such
        finding).  Linting pre-optimization is what lets XQL001 warn about
        the trace the dead-code pass is about to delete.
    ``lint_schema``
        Which document schema the lint pass evaluates paths and
        predicates against: ``"awb"`` (default — the AWB export schema,
        enabling the typed rules XQL010–XQL012) or ``"off"`` (schema-free
        linting, XQL001–XQL009 only).  With ``lint="error"`` and the
        default schema, compilation rejects statically dead paths and
        ill-typed operators outright — the typed mode the paper skipped.
    """

    duplicate_attribute_mode: str = "last"
    galax_diagnostics: bool = False
    optimize: bool = True
    trace_is_dead_code: bool = False
    max_recursion_depth: int = 2000
    type_check_calls: bool = True
    backend: str = "treewalk"
    compile_cache_size: int = 128
    lint: str = "off"
    lint_schema: str = "awb"

    def __post_init__(self) -> None:
        if self.lint not in ("off", "warn", "error"):
            raise ValueError(
                f"lint must be 'off', 'warn', or 'error', not {self.lint!r}"
            )
        if self.lint_schema not in ("awb", "off"):
            raise ValueError(
                f"lint_schema must be 'awb' or 'off', not {self.lint_schema!r}"
            )


class TraceLog:
    """Collects ``fn:trace`` output; optionally tees to a print function."""

    def __init__(self, echo: Optional[Callable[[str], None]] = None):
        self.messages: List[str] = []
        self._echo = echo

    def emit(self, message: str) -> None:
        self.messages.append(message)
        if self._echo is not None:
            self._echo(message)

    def clear(self) -> None:
        self.messages.clear()


@dataclass
class StaticContext:
    """Compile-time knowledge: declared functions and global variables."""

    functions: Dict[Tuple[str, int], FunctionDecl] = field(default_factory=dict)
    variable_names: List[str] = field(default_factory=list)
    namespaces: Dict[str, str] = field(default_factory=dict)


class DynamicContext:
    """The dynamic context: focus, variable bindings, documents, config.

    Variable scopes are handled by *copying* the bindings dict on scope
    entry — bindings are small in practice and copying keeps semantics
    obviously correct (no accidental capture, which matters for a purely
    functional language's evaluator).
    """

    __slots__ = (
        "variables",
        "globals",
        "item",
        "position",
        "size",
        "functions",
        "documents",
        "collections",
        "config",
        "trace",
        "depth",
        "deadline",
    )

    def __init__(
        self,
        variables: Optional[Dict[str, Sequence]] = None,
        functions: Optional[Dict[Tuple[str, int], FunctionDecl]] = None,
        documents: Optional[Dict[str, DocumentNode]] = None,
        config: Optional[EngineConfig] = None,
        trace: Optional[TraceLog] = None,
        deadline: Optional[float] = None,
        collections=None,
    ):
        self.variables: Dict[str, Sequence] = variables if variables is not None else {}
        #: module-level (prolog-declared and external) variables; visible in
        #: every scope including user-function bodies.
        self.globals: Dict[str, Sequence] = {}
        self.item = None  # context item, or None if absent
        self.position = 0
        self.size = 0
        self.functions = functions if functions is not None else {}
        self.documents = documents if documents is not None else {}
        #: a :class:`repro.collections.DocumentStore` (or None): the
        #: uri-addressed multi-document store behind ``fn:doc``,
        #: ``fn:collection``, and the ``ft:*`` builtins.
        self.collections = collections
        self.config = config if config is not None else EngineConfig()
        self.trace = trace if trace is not None else TraceLog()
        self.depth = 0
        #: absolute ``time.monotonic()`` instant after which evaluation must
        #: stop, or None for no budget.  Checked between pipeline stages,
        #: FLWOR tuples, and user-function calls in both backends.
        self.deadline = deadline

    def check_deadline(self) -> None:
        """Raise ``XQDY_TIMEOUT`` if the wall-clock budget has been spent."""
        deadline = self.deadline
        if deadline is not None and time.monotonic() > deadline:
            raise XQueryTimeoutError("query exceeded its wall-clock deadline")

    def with_variables(self, new_bindings: Dict[str, Sequence]) -> "DynamicContext":
        """A child context with additional variable bindings."""
        child = self._clone()
        child.variables = dict(self.variables)
        child.variables.update(new_bindings)
        return child

    def with_focus(self, item, position: int, size: int) -> "DynamicContext":
        """A child context with a new focus (context item / position / size)."""
        child = self._clone()
        child.item = item
        child.position = position
        child.size = size
        return child

    def function_scope(self, bindings: Dict[str, Sequence]) -> "DynamicContext":
        """A context for a user-function body: parameters + globals only.

        XQuery functions do not close over the caller's local variables.
        """
        child = self._clone()
        child.variables = dict(self.globals)
        child.variables.update(bindings)
        child.item = None
        child.position = 0
        child.size = 0
        child.depth = self.depth + 1
        return child

    def _clone(self) -> "DynamicContext":
        child = DynamicContext.__new__(DynamicContext)
        child.variables = self.variables
        child.globals = self.globals
        child.item = self.item
        child.position = self.position
        child.size = self.size
        child.functions = self.functions
        child.documents = self.documents
        child.collections = self.collections
        child.config = self.config
        child.trace = self.trace
        child.depth = self.depth
        child.deadline = self.deadline
        return child
