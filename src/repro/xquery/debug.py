"""Debugging the way the paper had to: ``error()`` bisection and tracing.

"Quite often, XQuery would die with a message amounting to 'Index out of
bounds', without any information of where in the program that had
happened...  our best tool turned out to be the error($msg) function...
Strategically-placed error calls let us do a binary search to locate the
source of the program error."

:class:`ErrorBisector` mechanizes exactly that workflow so experiment E8
can count how many full program runs it costs, and compare it with the
(eventually available) ``trace``-based workflow — including the run where
the optimizer silently deletes the traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .api import XQueryEngine
from .context import TraceLog
from .errors import XQueryUserError


@dataclass
class BisectionResult:
    """Outcome of an error()-probe binary search."""

    failing_step: int
    runs: int
    probes_tried: List[int] = field(default_factory=list)


class ErrorBisector:
    """Locates the first failing step of an N-step program by bisection.

    The caller supplies ``run_with_probe(k)``, which inserts
    ``error("probe")`` *before* step ``k`` (1-based) and runs the program.
    It must return True if the probe fired (the program reached step ``k``
    alive) and False if the program crashed before the probe.

    This is the paper's workflow: each iteration is a full edit-and-rerun
    cycle, which is why debugging "was generally easier and faster to
    rewrite a function from scratch rather than try to debug it".
    """

    def __init__(self, total_steps: int, run_with_probe: Callable[[int], bool]):
        if total_steps < 1:
            raise ValueError("total_steps must be at least 1")
        self.total_steps = total_steps
        self.run_with_probe = run_with_probe

    def locate(self) -> BisectionResult:
        """Find the failing step.

        A probe placed *before* step ``k`` fires exactly when steps
        ``1..k-1`` all succeed, i.e. when ``k <= B`` for failing step
        ``B`` — so ``B`` is the largest ``k`` whose probe fires.
        """
        low, high = 1, self.total_steps  # invariant: B in [low, high]
        runs = 0
        probes: List[int] = []
        while low < high:
            middle = (low + high + 1) // 2
            runs += 1
            probes.append(middle)
            if self.run_with_probe(middle):
                low = middle
            else:
                high = middle - 1
        return BisectionResult(failing_step=low, runs=runs, probes_tried=probes)


def make_probe_runner(
    engine: XQueryEngine,
    source_for_probe: Callable[[int], str],
    **run_kwargs,
) -> Callable[[int], bool]:
    """Build a ``run_with_probe`` from a source-generating function.

    ``source_for_probe(k)`` returns the program text with an
    ``error("probe")`` call inserted before step ``k``.  The runner reports
    True when the *probe's* error surfaced (program reached the probe) and
    False when any other error got there first.
    """

    def run(step: int) -> bool:
        source = source_for_probe(step)
        try:
            engine.evaluate(source, **run_kwargs)
        except XQueryUserError as exc:
            return exc.bare_message == "probe"
        except Exception:
            return False
        # no error at all: the program survives past the probe point, which
        # in this workflow means the probe was optimized away or mis-placed.
        return True

    return run


def run_with_trace(
    engine: XQueryEngine, source: str, **run_kwargs
) -> "TraceRun":
    """Run a query collecting its ``fn:trace`` output."""
    trace = TraceLog()
    error: Optional[Exception] = None
    value = None
    try:
        value = engine.evaluate(source, trace=trace, **run_kwargs)
    except Exception as exc:  # the paper's point: you still want the traces
        error = exc
    return TraceRun(value=value, messages=list(trace.messages), error=error)


@dataclass
class TraceRun:
    """Result of a traced run: the value, the traces, and any error."""

    value: object
    messages: List[str]
    error: Optional[Exception]

    @property
    def trace_count(self) -> int:
        return len(self.messages)
