"""XQuery error conditions, with spec-style error codes.

The engine raises :class:`XQueryError` subclasses carrying the W3C error
code (``XPST0003`` and friends).  The famously unhelpful Galax message for a
missing ``$`` — ``Internal_Error: Variable '$glx:dot' not found.`` — is
reproduced *optionally* by the lexer/evaluator in "galax diagnostics" mode,
so the paper's debugging experience can be demonstrated and measured.
"""

from __future__ import annotations

import contextlib
import sys
from typing import List, Optional


class XQueryError(Exception):
    """Base class for all errors raised by the XQuery engine."""

    default_code = "FOER0000"

    def __init__(
        self,
        message: str,
        code: Optional[str] = None,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ):
        self.code = code or self.default_code
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(f"[{self.code}] {message}{location}")
        self.bare_message = message


class XQueryStaticError(XQueryError):
    """A static (parse/compile time) error.  XPST0003 is the syntax error."""

    default_code = "XPST0003"


class XQueryTypeError(XQueryError):
    """A type error (XPTY0004 and friends)."""

    default_code = "XPTY0004"


class XQueryDynamicError(XQueryError):
    """A dynamic (evaluation time) error."""

    default_code = "XPDY0002"


class XQueryTimeoutError(XQueryDynamicError):
    """The query ran past its wall-clock deadline.

    Raised cleanly from the evaluation loop (between pipeline stages, FLWOR
    tuples, and function calls) rather than by killing a worker thread, so a
    serving layer can cut off a runaway query and keep the worker.
    """

    default_code = "XQDY_TIMEOUT"

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message, code=code)


class XQueryUserError(XQueryDynamicError):
    """Raised by ``fn:error`` — the paper's only debugging tool at first.

    Carries the user's message/value so the "binary search by error()"
    workflow (experiment E8) can inspect what the probe reported.
    """

    default_code = "FOER0000"

    def __init__(self, message: str, value=None, code: Optional[str] = None):
        super().__init__(message, code=code)
        self.value = value if value is not None else []


#: Error codes used by the engine, for reference and for tests.
ERROR_CODES = {
    "XPST0003": "grammar: the query is not syntactically valid",
    "XPST0008": "undefined name (variable or type) at compile time",
    "XPST0017": "unknown function name/arity",
    "XPDY0002": "dynamic context component (e.g. context item) is absent",
    "XPTY0004": "value does not match a required type",
    "XPTY0019": "path step applied to a non-node",
    "XQTY0024": "attribute node follows non-attribute content in constructor",
    "XQDY0025": "duplicate attribute name in constructor",
    "XQST0034": "duplicate function declaration",
    "XQST0049": "duplicate variable declaration",
    "FORG0001": "invalid value for cast",
    "FORG0006": "invalid argument type (e.g. effective boolean value)",
    "FORG0005": "fn:exactly-one called on a non-singleton",
    "FOAR0001": "division by zero",
    "FOER0000": "error raised by fn:error",
    "FODC0002": "error retrieving resource (fn:doc)",
    "XQDY_TIMEOUT": "the query exceeded its wall-clock deadline",
}


class ErrorListForHumans:
    """Accumulates static errors so a whole module can be diagnosed at once."""

    def __init__(self) -> None:
        self.errors: List[XQueryError] = []

    def add(self, error: XQueryError) -> None:
        self.errors.append(error)

    def raise_if_any(self) -> None:
        if self.errors:
            raise self.errors[0]


@contextlib.contextmanager
def extended_stack(limit: int = 20000):
    """Temporarily raise Python's recursion limit.

    Deeply nested expressions cost a dozen Python frames per level in the
    recursive-descent parser and tree-walking evaluator; the default limit
    of 1000 would turn a legal 150-paren expression into a RecursionError.
    An explicit nesting guard in the parser bounds the real depth.
    """
    previous = sys.getrecursionlimit()
    if previous < limit:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)
