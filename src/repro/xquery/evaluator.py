"""The XQuery evaluator: a tree-walking interpreter over the AST.

Everything evaluates to a flat list of XDM items (see
:mod:`repro.xdm.sequence`).  The constructor semantics at the bottom of the
file implement the behaviours the paper analyses in detail: attribute-node
folding, the attribute-after-content error, adjacent-atomic space joining,
and content copying.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Dict, List, Optional, Tuple

from ..xdm import (
    AttributeNode,
    CastError,
    CommentNode,
    ComparisonTypeError,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    Sequence,
    TextNode,
    UntypedAtomic,
    atomize,
    cast_atomic,
    effective_boolean_value,
    general_compare,
    is_node,
    sort_document_order,
    string_value_of_atomic,
    value_compare,
)
from ..xdm.compare import nodes_before
from . import ast
from .context import DynamicContext
from .errors import (
    XQueryDynamicError,
    XQueryTypeError,
)
from .operators import arithmetic, negate, set_operation


def evaluate(expr: ast.Expr, ctx: DynamicContext) -> Sequence:
    """Evaluate *expr* in *ctx*, returning a flat sequence (Python list)."""
    method = _DISPATCH.get(type(expr))
    if method is None:
        raise XQueryDynamicError(f"cannot evaluate {type(expr).__name__}")
    return method(expr, ctx)


def _error(expr: ast.Expr, ctx: DynamicContext, message: str, code: str):
    """Build a dynamic error; galax_diagnostics mode strips the location."""
    error_class = XQueryTypeError if code.startswith("XPTY") else XQueryDynamicError
    if ctx.config.galax_diagnostics:
        return error_class(message, code=code)
    return error_class(message, code=code, line=expr.line, column=expr.column)


def ebv(value: Sequence, expr: ast.Expr, ctx: DynamicContext) -> bool:
    """Effective boolean value, with the engine's error code on failure."""
    try:
        return effective_boolean_value(value)
    except ValueError as exc:
        raise _error(expr, ctx, str(exc), "FORG0006") from exc


# -- simple expressions ------------------------------------------------------


def _eval_literal(expr: ast.Literal, ctx: DynamicContext) -> Sequence:
    return [expr.value]


def _eval_empty(expr: ast.EmptySequence, ctx: DynamicContext) -> Sequence:
    return []


def _eval_var(expr: ast.VarRef, ctx: DynamicContext) -> Sequence:
    try:
        return ctx.variables[expr.name]
    except KeyError:
        if ctx.config.galax_diagnostics:
            # The paper quotes this exact message (for *any* missing
            # variable, including the missing-$ mistake).
            raise XQueryDynamicError(
                "Internal_Error: Variable '$glx:dot' not found.", code="XPDY0002"
            ) from None
        raise _error(
            expr, ctx, f"undefined variable ${expr.name}", "XPST0008"
        ) from None


def _eval_context_item(expr: ast.ContextItem, ctx: DynamicContext) -> Sequence:
    if ctx.item is None:
        raise _error(expr, ctx, "context item is absent", "XPDY0002")
    return [ctx.item]


def _eval_sequence(expr: ast.SequenceExpr, ctx: DynamicContext) -> Sequence:
    result: Sequence = []
    for item_expr in expr.items:
        result.extend(evaluate(item_expr, ctx))
    return result


def _eval_range(expr: ast.RangeExpr, ctx: DynamicContext) -> Sequence:
    start = _singleton_integer(evaluate(expr.start, ctx), expr, ctx)
    end = _singleton_integer(evaluate(expr.end, ctx), expr, ctx)
    if start is None or end is None or start > end:
        return []
    return list(range(start, end + 1))


def _singleton_integer(
    value: Sequence, expr: ast.Expr, ctx: DynamicContext
) -> Optional[int]:
    atoms = atomize(value)
    if not atoms:
        return None
    if len(atoms) > 1:
        raise _error(expr, ctx, "'to' requires singleton integer operands", "XPTY0004")
    atom = atoms[0]
    if isinstance(atom, bool) or not isinstance(atom, (int, Decimal, float)):
        if isinstance(atom, UntypedAtomic):
            try:
                return int(float(atom.value))
            except ValueError:
                pass
        raise _error(expr, ctx, "'to' requires integer operands", "XPTY0004")
    return int(atom)


def _eval_arithmetic(expr: ast.Arithmetic, ctx: DynamicContext) -> Sequence:
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    try:
        return arithmetic(expr.op, left, right)
    except XQueryTypeError as exc:
        raise _error(expr, ctx, exc.bare_message, exc.code) from exc


def _eval_unary(expr: ast.Unary, ctx: DynamicContext) -> Sequence:
    try:
        return negate(evaluate(expr.operand, ctx))
    except XQueryTypeError as exc:
        raise _error(expr, ctx, exc.bare_message, exc.code) from exc


def _eval_comparison(expr: ast.Comparison, ctx: DynamicContext) -> Sequence:
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if expr.style == "general":
        try:
            return [general_compare(expr.op, left, right)]
        except ComparisonTypeError as exc:
            raise _error(expr, ctx, str(exc), "XPTY0004") from exc
    if expr.style == "value":
        left_atoms = atomize(left)
        right_atoms = atomize(right)
        if not left_atoms or not right_atoms:
            return []
        if len(left_atoms) > 1 or len(right_atoms) > 1:
            raise _error(
                expr,
                ctx,
                f"value comparison '{expr.op}' requires singleton operands",
                "XPTY0004",
            )
        try:
            return [value_compare(expr.op, left_atoms[0], right_atoms[0])]
        except ComparisonTypeError as exc:
            raise _error(expr, ctx, str(exc), "XPTY0004") from exc
    return _node_comparison(expr, left, right, ctx)


def _node_comparison(
    expr: ast.Comparison, left: Sequence, right: Sequence, ctx: DynamicContext
) -> Sequence:
    if not left or not right:
        return []
    if len(left) > 1 or len(right) > 1 or not is_node(left[0]) or not is_node(right[0]):
        raise _error(
            expr, ctx, f"'{expr.op}' requires singleton node operands", "XPTY0004"
        )
    left_node, right_node = left[0], right[0]
    if expr.op == "is":
        return [left_node is right_node]
    before = nodes_before(left_node, right_node)
    if before is None:
        return [False]
    return [before if expr.op == "<<" else not before]


def _eval_boolean_op(expr: ast.BooleanOp, ctx: DynamicContext) -> Sequence:
    left = ebv(evaluate(expr.left, ctx), expr, ctx)
    if expr.op == "and":
        if not left:
            return [False]
        return [ebv(evaluate(expr.right, ctx), expr, ctx)]
    if left:
        return [True]
    return [ebv(evaluate(expr.right, ctx), expr, ctx)]


def _eval_set_op(expr: ast.SetOp, ctx: DynamicContext) -> Sequence:
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    try:
        return set_operation(expr.op, left, right)
    except XQueryTypeError as exc:
        raise _error(expr, ctx, exc.bare_message, exc.code) from exc


# -- paths ---------------------------------------------------------------------


_AXIS_FORWARD = {
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "attribute",
    "following-sibling",
}


def _axis_candidates(node: Node, axis: str) -> List[Node]:
    if axis == "child":
        return list(node.children)
    if axis == "attribute":
        return list(node.attributes)
    if axis == "self":
        return [node]
    if axis == "descendant":
        return list(node.descendants())
    if axis == "descendant-or-self":
        return list(node.descendants_or_self())
    if axis == "parent":
        return [node.parent] if node.parent is not None else []
    if axis == "ancestor":
        return list(node.ancestors())
    if axis == "ancestor-or-self":
        return [node] + list(node.ancestors())
    if axis == "following-sibling":
        return list(node.following_siblings())
    if axis == "preceding-sibling":
        return list(node.preceding_siblings())
    raise XQueryDynamicError(f"unsupported axis {axis!r}")


def _test_matches(test: ast.NodeTest, node: Node, axis: str) -> bool:
    kind = test.kind
    if kind == "name":
        if axis == "attribute":
            return isinstance(node, AttributeNode) and node.name == test.name
        return isinstance(node, ElementNode) and node.name == test.name
    if kind == "wildcard":
        if axis == "attribute":
            return isinstance(node, AttributeNode)
        return isinstance(node, ElementNode)
    if kind == "node":
        return True
    if kind == "text":
        return isinstance(node, TextNode)
    if kind == "comment":
        return isinstance(node, CommentNode)
    if kind == "element":
        return isinstance(node, ElementNode) and (
            test.name is None or node.name == test.name
        )
    if kind == "attribute":
        return isinstance(node, AttributeNode) and (
            test.name is None or node.name == test.name
        )
    if kind == "document-node":
        return isinstance(node, DocumentNode)
    if kind == "processing-instruction":
        return isinstance(node, ProcessingInstructionNode) and (
            test.name is None or node.target == test.name
        )
    raise XQueryDynamicError(f"unsupported node test {kind!r}")


def _eval_axis_step(expr: ast.AxisStep, ctx: DynamicContext) -> Sequence:
    if not is_node(ctx.item):
        if ctx.item is None:
            raise _error(expr, ctx, "context item is absent in a path step", "XPDY0002")
        raise _error(
            expr, ctx, "a path step was applied to an atomic value", "XPTY0019"
        )
    candidates = [
        node
        for node in _axis_candidates(ctx.item, expr.axis)
        if _test_matches(expr.test, node, expr.axis)
    ]
    return _apply_predicates(candidates, expr.predicates, ctx)


def _apply_predicates(
    items: Sequence, predicates: List[ast.Expr], ctx: DynamicContext
) -> Sequence:
    for predicate in predicates:
        size = len(items)
        kept = []
        for position, item in enumerate(items, start=1):
            focus = ctx.with_focus(item, position, size)
            result = evaluate(predicate, focus)
            if _is_numeric_predicate(result):
                if float(result[0]) == position:
                    kept.append(item)
            elif ebv(result, predicate, ctx):
                kept.append(item)
        items = kept
    return items


def _is_numeric_predicate(result: Sequence) -> bool:
    return (
        len(result) == 1
        and isinstance(result[0], (int, float, Decimal))
        and not isinstance(result[0], bool)
    )


def _eval_filter(expr: ast.FilterExpr, ctx: DynamicContext) -> Sequence:
    base = evaluate(expr.base, ctx)
    return _apply_predicates(base, expr.predicates, ctx)


def _eval_path(expr: ast.PathExpr, ctx: DynamicContext) -> Sequence:
    if expr.anchor in ("/", "//"):
        if not is_node(ctx.item):
            raise _error(
                expr, ctx, "'/' requires a node as the context item", "XPDY0002"
            )
        current: Sequence = [ctx.item.root()]
        if expr.anchor == "//":
            current = _descendant_or_self_nodes(current)
        if expr.first is not None:
            current = _apply_step(expr.first, current, ctx)
    else:
        current = _apply_step(expr.first, [ctx.item] if ctx.item is not None else [None], ctx, initial=True)
    for separator, step in expr.steps:
        if separator == "//":
            current = _descendant_or_self_nodes(current)
        current = _apply_step(step, current, ctx)
    return current


def _descendant_or_self_nodes(nodes: Sequence) -> Sequence:
    expanded: List[Node] = []
    for node in nodes:
        if not is_node(node):
            raise XQueryTypeError("'//' applied to a non-node", code="XPTY0019")
        expanded.extend(node.descendants_or_self())
    return sort_document_order(expanded)


def _apply_step(
    step: ast.Expr, context_items: Sequence, ctx: DynamicContext, initial: bool = False
) -> Sequence:
    """Apply one path step to every context item and normalize the result.

    Node results are deduplicated and sorted in document order; an
    all-atomic result is allowed (for final steps like ``$x/data(.)``);
    mixing nodes and atomics is a type error, per the spec.
    """
    if initial and not isinstance(step, ast.AxisStep):
        # The leading expression of a relative path is evaluated once in the
        # outer focus ($x/kid: $x is not evaluated per context node).
        return evaluate(step, ctx)
    ctx.check_deadline()
    results: Sequence = []
    size = len(context_items)
    saw_node = False
    saw_atomic = False
    for position, item in enumerate(context_items, start=1):
        focus = ctx.with_focus(item, position, size)
        for result_item in evaluate(step, focus):
            if is_node(result_item):
                saw_node = True
            else:
                saw_atomic = True
            results.append(result_item)
    if saw_node and saw_atomic:
        raise XQueryTypeError(
            "a path step produced both nodes and atomic values", code="XPTY0018"
        )
    if saw_node:
        return sort_document_order(results)
    return results


# -- FLWOR, quantifiers, conditionals -------------------------------------------


def _eval_flwor(expr: ast.FLWOR, ctx: DynamicContext) -> Sequence:
    tuples: List[Dict[str, Sequence]] = [dict()]
    for clause in expr.clauses:
        ctx.check_deadline()
        if isinstance(clause, ast.ForClause):
            tuples = _expand_for(clause, tuples, ctx)
        elif isinstance(clause, ast.LetClause):
            for bindings in tuples:
                scope = ctx.with_variables(bindings)
                value = evaluate(clause.value, scope)
                if clause.declared_type is not None and not clause.declared_type.matches(value):
                    raise _error(
                        expr,
                        ctx,
                        f"let ${clause.var} value does not match "
                        f"declared type {clause.declared_type!r}",
                        "XPTY0004",
                    )
                bindings[clause.var] = value
        elif isinstance(clause, ast.WhereClause):
            kept = []
            for bindings in tuples:
                scope = ctx.with_variables(bindings)
                if ebv(evaluate(clause.condition, scope), clause.condition, ctx):
                    kept.append(bindings)
            tuples = kept
        elif isinstance(clause, ast.OrderByClause):
            tuples = _order_tuples(clause, tuples, ctx)
    result: Sequence = []
    check_deadline = ctx.deadline is not None
    for bindings in tuples:
        if check_deadline:
            ctx.check_deadline()
        scope = ctx.with_variables(bindings)
        result.extend(evaluate(expr.result, scope))
    return result


def _expand_for(
    clause: ast.ForClause,
    tuples: List[Dict[str, Sequence]],
    ctx: DynamicContext,
) -> List[Dict[str, Sequence]]:
    expanded = []
    check_deadline = ctx.deadline is not None
    for bindings in tuples:
        if check_deadline:
            ctx.check_deadline()
        scope = ctx.with_variables(bindings)
        source = evaluate(clause.source, scope)
        for position, item in enumerate(source, start=1):
            new_bindings = dict(bindings)
            new_bindings[clause.var] = [item]
            if clause.position_var is not None:
                new_bindings[clause.position_var] = [position]
            expanded.append(new_bindings)
    return expanded


class _OrderKey:
    """A sort key for ``order by``: handles empty and cross-type ordering."""

    __slots__ = ("empty", "value", "descending", "empty_least")

    def __init__(self, value: Sequence, descending: bool, empty_least: bool):
        atoms = atomize(value)
        if len(atoms) > 1:
            raise XQueryTypeError("order by key must be a singleton or empty")
        self.empty = not atoms
        self.descending = descending
        self.empty_least = empty_least
        if self.empty:
            self.value = None
        else:
            atom = atoms[0]
            if isinstance(atom, UntypedAtomic):
                atom = atom.value
            if isinstance(atom, Decimal):
                atom = float(atom)
            self.value = atom

    def __lt__(self, other: "_OrderKey") -> bool:
        if self.empty or other.empty:
            if self.empty and other.empty:
                return False
            # "empty least" puts () first ascending; descending flips below.
            self_first = self.empty == self.empty_least
            result = self_first if self.empty else not (other.empty == other.empty_least)
            return result != self.descending
        try:
            result = self.value < other.value
        except TypeError as exc:
            raise XQueryTypeError(
                f"order by: cannot compare {type(self.value).__name__} "
                f"with {type(other.value).__name__}"
            ) from exc
        return result != self.descending

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _OrderKey)
            and self.empty == other.empty
            and self.value == other.value
        )


def _order_tuples(
    clause: ast.OrderByClause,
    tuples: List[Dict[str, Sequence]],
    ctx: DynamicContext,
) -> List[Dict[str, Sequence]]:
    decorated = []
    for index, bindings in enumerate(tuples):
        scope = ctx.with_variables(bindings)
        keys = tuple(
            _OrderKey(evaluate(spec.key, scope), spec.descending, spec.empty_least)
            for spec in clause.specs
        )
        decorated.append((keys, index, bindings))
    decorated.sort(key=lambda entry: (entry[0], entry[1]))
    return [bindings for _, _, bindings in decorated]


def _eval_quantified(expr: ast.Quantified, ctx: DynamicContext) -> Sequence:
    return [_quantified_loop(expr, expr.bindings, ctx)]


def _quantified_loop(
    expr: ast.Quantified,
    bindings: List[Tuple[str, ast.Expr]],
    ctx: DynamicContext,
) -> bool:
    if not bindings:
        return ebv(evaluate(expr.satisfies, ctx), expr.satisfies, ctx)
    (var, source_expr), rest = bindings[0], bindings[1:]
    some = expr.quantifier == "some"
    for item in evaluate(source_expr, ctx):
        scope = ctx.with_variables({var: [item]})
        if _quantified_loop(expr, rest, scope) == some:
            return some
    return not some


def _eval_try_catch(expr: ast.TryCatch, ctx: DynamicContext) -> Sequence:
    """try/catch: the XQuery 3.0 extension (lesson 4 made real).

    Catches dynamic errors (including ``fn:error``); static errors were
    already raised at compile time and type errors raised while building
    the *handler* propagate normally.
    """
    try:
        return evaluate(expr.body, ctx)
    except XQueryDynamicError as error:
        if expr.catch_var is None:
            return evaluate(expr.handler, ctx)
        message = ElementNode("message")
        message.append(TextNode(getattr(error, "bare_message", str(error))))
        error_element = ElementNode("error")
        error_element.set_attribute("code", error.code)
        error_element.append(message)
        scope = ctx.with_variables({expr.catch_var: [error_element]})
        return evaluate(expr.handler, scope)


def _eval_typeswitch(expr: ast.Typeswitch, ctx: DynamicContext) -> Sequence:
    value = evaluate(expr.operand, ctx)
    for case in expr.cases:
        if case.sequence_type.matches(value):
            scope = ctx.with_variables({case.var: value}) if case.var else ctx
            return evaluate(case.result, scope)
    scope = (
        ctx.with_variables({expr.default_var: value}) if expr.default_var else ctx
    )
    return evaluate(expr.default, scope)


def _eval_if(expr: ast.IfExpr, ctx: DynamicContext) -> Sequence:
    if ebv(evaluate(expr.condition, ctx), expr.condition, ctx):
        return evaluate(expr.then_branch, ctx)
    return evaluate(expr.else_branch, ctx)


# -- functions --------------------------------------------------------------------


def _eval_function_call(expr: ast.FunctionCall, ctx: DynamicContext) -> Sequence:
    from .functions import lookup_builtin  # deferred: functions imports evaluator

    name = expr.name
    if name.startswith("fn:"):
        name = name[3:]
    # constructor functions: xs:integer("3") etc.
    if name.startswith("xs:"):
        if len(expr.args) != 1:
            raise _error(expr, ctx, f"{name} expects one argument", "XPST0017")
        value = atomize(evaluate(expr.args[0], ctx))
        if not value:
            return []
        if len(value) > 1:
            raise _error(expr, ctx, f"{name} requires a singleton", "XPTY0004")
        try:
            return [cast_atomic(value[0], name)]
        except CastError as exc:
            raise _error(expr, ctx, str(exc), "FORG0001") from exc

    local_name = name.split(":", 1)[1] if name.startswith("local:") else name
    declaration = ctx.functions.get((local_name, len(expr.args)))
    if declaration is not None:
        return _call_user_function(declaration, expr, ctx)

    builtin = lookup_builtin(name, len(expr.args))
    if builtin is None:
        raise _error(
            expr,
            ctx,
            f"unknown function {expr.name}() with {len(expr.args)} argument(s)",
            "XPST0017",
        )
    args = [evaluate(arg, ctx) for arg in expr.args]
    return builtin(ctx, args, expr)


def _call_user_function(
    declaration: ast.FunctionDecl, expr: ast.FunctionCall, ctx: DynamicContext
) -> Sequence:
    if ctx.depth >= ctx.config.max_recursion_depth:
        raise _error(
            expr,
            ctx,
            f"recursion depth limit exceeded calling {declaration.name}()",
            "FOER0000",
        )
    ctx.check_deadline()
    bindings: Dict[str, Sequence] = {}
    for param, arg_expr in zip(declaration.params, expr.args):
        value = evaluate(arg_expr, ctx)
        if (
            ctx.config.type_check_calls
            and param.declared_type is not None
            and not param.declared_type.matches(value)
        ):
            raise _error(
                expr,
                ctx,
                f"argument ${param.name} of {declaration.name}() does not match "
                f"declared type {param.declared_type!r}",
                "XPTY0004",
            )
        bindings[param.name] = value
    scope = ctx.function_scope(bindings)
    result = evaluate(declaration.body, scope)
    if (
        ctx.config.type_check_calls
        and declaration.return_type is not None
        and not declaration.return_type.matches(result)
    ):
        raise _error(
            expr,
            ctx,
            f"result of {declaration.name}() does not match declared type "
            f"{declaration.return_type!r}",
            "XPTY0004",
        )
    return result


# -- type expressions ----------------------------------------------------------------


def _eval_instance_of(expr: ast.InstanceOf, ctx: DynamicContext) -> Sequence:
    return [expr.sequence_type.matches(evaluate(expr.operand, ctx))]


def _eval_cast(expr: ast.CastAs, ctx: DynamicContext) -> Sequence:
    value = atomize(evaluate(expr.operand, ctx))
    if not value:
        if expr.allow_empty:
            return []
        raise _error(expr, ctx, "cast of an empty sequence", "XPTY0004")
    if len(value) > 1:
        raise _error(expr, ctx, "cast requires a singleton", "XPTY0004")
    try:
        return [cast_atomic(value[0], expr.type_name)]
    except CastError as exc:
        raise _error(expr, ctx, str(exc), "FORG0001") from exc


def _eval_castable(expr: ast.CastableAs, ctx: DynamicContext) -> Sequence:
    value = atomize(evaluate(expr.operand, ctx))
    if not value:
        return [expr.allow_empty]
    if len(value) > 1:
        return [False]
    try:
        cast_atomic(value[0], expr.type_name)
        return [True]
    except CastError:
        return [False]


def _eval_treat(expr: ast.TreatAs, ctx: DynamicContext) -> Sequence:
    value = evaluate(expr.operand, ctx)
    if not expr.sequence_type.matches(value):
        raise _error(
            expr,
            ctx,
            f"treat as: value does not match {expr.sequence_type!r}",
            "XPDY0050",
        )
    return value


# -- constructors -----------------------------------------------------------------
#
# This is the code the paper's data-structure section is about.


def construct_element(
    name: str,
    content_items: Sequence,
    ctx: DynamicContext,
    expr: ast.Expr,
    literal_attributes: Optional[List[AttributeNode]] = None,
) -> ElementNode:
    """Assemble an element from a constructor's evaluated content sequence.

    Implements the draft rules the paper discusses:

    * *leading* attribute nodes in the content become attributes of the
      element ("We are not sure why only leading attributes are treated
      this way");
    * an attribute node appearing after other content raises ``XQTY0024``
      (the error row of the paper's sequence-indexing table);
    * duplicate attribute names resolve per
      ``config.duplicate_attribute_mode`` — ``last``/``first`` are the two
      results the paper says are legal, ``keep`` is the Galax bug, and
      ``error`` is the eventual standard;
    * adjacent atomic values join with a single space into one text node;
    * content nodes are copied (fresh identity), as the spec requires.
    """
    element = ElementNode(name)
    attributes: List[AttributeNode] = list(literal_attributes or [])
    children: List[Node] = []
    pending_atoms: List[str] = []
    seen_content = False

    def flush_atoms() -> None:
        if pending_atoms:
            children.append(TextNode(" ".join(pending_atoms)))
            pending_atoms.clear()

    for item in content_items:
        if isinstance(item, AttributeNode):
            if seen_content:
                raise _error(
                    expr,
                    ctx,
                    f"attribute node {item.name!r} follows non-attribute content",
                    "XQTY0024",
                )
            attributes.append(item.copy())
            continue
        seen_content = True
        if is_node(item):
            flush_atoms()
            if isinstance(item, DocumentNode):
                for child in item.children:
                    children.append(child.copy())
            else:
                children.append(item.copy())
        else:
            pending_atoms.append(string_value_of_atomic(item))
    flush_atoms()

    _attach_attributes(element, attributes, ctx, expr)
    previous_text: Optional[TextNode] = None
    for child in children:
        # merge adjacent text nodes, as the data model requires.
        if isinstance(child, TextNode) and previous_text is not None:
            previous_text.text += child.text
            continue
        element.append(child)
        previous_text = child if isinstance(child, TextNode) else None
    return element


def _attach_attributes(
    element: ElementNode,
    attributes: List[AttributeNode],
    ctx: DynamicContext,
    expr: ast.Expr,
) -> None:
    mode = ctx.config.duplicate_attribute_mode
    if mode == "keep":
        # Galax-bug mode: both duplicates survive, violating the data model.
        for attribute in attributes:
            element.append_duplicate_attribute(attribute)
        return
    seen: Dict[str, AttributeNode] = {}
    order: List[str] = []
    for attribute in attributes:
        if attribute.name in seen:
            if mode == "error":
                raise _error(
                    expr,
                    ctx,
                    f"duplicate attribute name {attribute.name!r}",
                    "XQDY0025",
                )
            if mode == "first":
                continue
            seen[attribute.name] = attribute  # mode == "last"
        else:
            seen[attribute.name] = attribute
            order.append(attribute.name)
    for name in order:
        element.set_attribute_node(seen[name])


def _enclosed_items(items: Sequence) -> Sequence:
    """Convert one enclosed expression's result for element content.

    Runs of adjacent atomic values become a single text node joined with
    spaces; nodes (including attribute nodes, which fold later) pass
    through untouched.
    """
    result: Sequence = []
    pending: List[str] = []
    for item in items:
        if is_node(item):
            if pending:
                result.append(TextNode(" ".join(pending)))
                pending = []
            result.append(item)
        else:
            pending.append(string_value_of_atomic(item))
    if pending:
        result.append(TextNode(" ".join(pending)))
    return result


def _eval_direct_element(expr: ast.DirectElement, ctx: DynamicContext) -> Sequence:
    literal_attributes = [
        AttributeNode(name, _attribute_value_text(parts, ctx))
        for name, parts in expr.attributes
    ]
    duplicate_names = {a.name for a in literal_attributes}
    if len(duplicate_names) != len(literal_attributes):
        raise _error(expr, ctx, "duplicate attribute in direct constructor", "XQST0040")
    content_items: Sequence = []
    for part in expr.content:
        if isinstance(part, ast.DirectText):
            content_items.append(TextNode(part.text))
        elif isinstance(part, ast.DirectComment):
            content_items.append(CommentNode(part.text))
        elif isinstance(part, ast.DirectPI):
            content_items.append(ProcessingInstructionNode(part.target, part.text))
        elif isinstance(part, ast.DirectElement):
            content_items.extend(_eval_direct_element(part, ctx))
        else:
            # space-joining of adjacent atomics applies *within* one
            # enclosed expression; across enclosures text just abuts.
            content_items.extend(_enclosed_items(evaluate(part, ctx)))
    return [
        construct_element(
            expr.name, content_items, ctx, expr, literal_attributes=literal_attributes
        )
    ]


def _attribute_value_text(parts: List[object], ctx: DynamicContext) -> str:
    pieces: List[str] = []
    for part in parts:
        if isinstance(part, str):
            pieces.append(part)
        else:
            value = evaluate(part, ctx)
            pieces.append(
                " ".join(
                    item.string_value() if is_node(item) else string_value_of_atomic(item)
                    for item in value
                )
            )
    return "".join(pieces)


def _eval_direct_comment(expr: ast.DirectComment, ctx: DynamicContext) -> Sequence:
    return [CommentNode(expr.text)]


def _constructor_name(expr, ctx: DynamicContext) -> str:
    if expr.name is not None:
        return expr.name
    value = atomize(evaluate(expr.name_expr, ctx))
    if len(value) != 1:
        raise _error(expr, ctx, "computed constructor name must be a singleton", "XPTY0004")
    return string_value_of_atomic(value[0])


def _eval_computed_element(expr: ast.ComputedElement, ctx: DynamicContext) -> Sequence:
    name = _constructor_name(expr, ctx)
    content = evaluate(expr.content, ctx) if expr.content is not None else []
    return [construct_element(name, content, ctx, expr)]


def _eval_computed_attribute(expr: ast.ComputedAttribute, ctx: DynamicContext) -> Sequence:
    name = _constructor_name(expr, ctx)
    content = atomize(evaluate(expr.content, ctx)) if expr.content is not None else []
    text = " ".join(string_value_of_atomic(item) for item in content)
    return [AttributeNode(name, text)]


def _eval_computed_text(expr: ast.ComputedText, ctx: DynamicContext) -> Sequence:
    content = atomize(evaluate(expr.content, ctx)) if expr.content is not None else []
    if not content:
        return []
    return [TextNode(" ".join(string_value_of_atomic(item) for item in content))]


def _eval_computed_comment(expr: ast.ComputedComment, ctx: DynamicContext) -> Sequence:
    content = atomize(evaluate(expr.content, ctx)) if expr.content is not None else []
    return [CommentNode(" ".join(string_value_of_atomic(item) for item in content))]


def _eval_computed_document(expr: ast.ComputedDocument, ctx: DynamicContext) -> Sequence:
    content = evaluate(expr.content, ctx) if expr.content is not None else []
    document = DocumentNode()
    for item in content:
        if isinstance(item, AttributeNode):
            raise _error(
                expr, ctx, "a document node cannot contain attribute nodes", "XPTY0004"
            )
        if is_node(item):
            document.append(item.copy())
        else:
            document.append(TextNode(string_value_of_atomic(item)))
    return [document]


_DISPATCH = {
    ast.Literal: _eval_literal,
    ast.EmptySequence: _eval_empty,
    ast.VarRef: _eval_var,
    ast.ContextItem: _eval_context_item,
    ast.SequenceExpr: _eval_sequence,
    ast.RangeExpr: _eval_range,
    ast.Arithmetic: _eval_arithmetic,
    ast.Unary: _eval_unary,
    ast.Comparison: _eval_comparison,
    ast.BooleanOp: _eval_boolean_op,
    ast.SetOp: _eval_set_op,
    ast.AxisStep: _eval_axis_step,
    ast.FilterExpr: _eval_filter,
    ast.PathExpr: _eval_path,
    ast.FLWOR: _eval_flwor,
    ast.Quantified: _eval_quantified,
    ast.IfExpr: _eval_if,
    ast.Typeswitch: _eval_typeswitch,
    ast.TryCatch: _eval_try_catch,
    ast.FunctionCall: _eval_function_call,
    ast.InstanceOf: _eval_instance_of,
    ast.CastAs: _eval_cast,
    ast.CastableAs: _eval_castable,
    ast.TreatAs: _eval_treat,
    ast.DirectElement: _eval_direct_element,
    ast.DirectComment: _eval_direct_comment,
    ast.ComputedElement: _eval_computed_element,
    ast.ComputedAttribute: _eval_computed_attribute,
    ast.ComputedText: _eval_computed_text,
    ast.ComputedComment: _eval_computed_comment,
    ast.ComputedDocument: _eval_computed_document,
}
