"""The built-in function library (a useful subset of XQuery 1.0 F&O).

Each builtin takes ``(ctx, args, call_expr)`` where ``args`` is the list of
already-evaluated argument sequences, and returns a sequence.

Two functions get special care because the paper's debugging story depends
on them:

* ``fn:error`` — "prints $msg on the console and kills the program"; here
  it raises :class:`XQueryUserError` carrying the value, which the engine
  surfaces.  It was the paper's first tracing tool (binary search by
  strategically placed ``error()`` calls).
* ``fn:trace`` — "prints its arguments and returns the value of the last
  one" (the paper's description of the late-added Galax variant; note the
  eventual W3C signature returns the *first* argument — we implement the
  paper's).  Output goes to the context's :class:`TraceLog`.
"""

from __future__ import annotations

import math
import re
from decimal import Decimal
from typing import Callable, Dict, List, Optional, Tuple

from ..xdm import (
    Node,
    Sequence,
    UntypedAtomic,
    atomize,
    deep_equal,
    effective_boolean_value,
    is_node,
    number_value,
    string_value_of_atomic,
    value_compare,
)
from ..xdm.compare import ComparisonTypeError
from .errors import XQueryDynamicError, XQueryTypeError, XQueryUserError
from .operators import _promote_pair

_REGISTRY: Dict[Tuple[str, int], Callable] = {}
_VARIADIC: Dict[str, Tuple[int, Callable]] = {}


def builtin(name: str, *arities: int, min_arity: Optional[int] = None):
    """Register a builtin under ``name`` for the given arities.

    ``min_arity`` registers a variadic function accepting that many or more
    arguments (used by ``concat`` and the paper's ``trace``).
    """

    def register(fn: Callable) -> Callable:
        if min_arity is not None:
            _VARIADIC[name] = (min_arity, fn)
        for arity in arities:
            _REGISTRY[(name, arity)] = fn
        return fn

    return register


def lookup_builtin(name: str, arity: int) -> Optional[Callable]:
    """Find a builtin implementation for ``name#arity``, or None."""
    fn = _REGISTRY.get((name, arity))
    if fn is not None:
        return fn
    variadic = _VARIADIC.get(name)
    if variadic is not None and arity >= variadic[0]:
        return variadic[1]
    return None


def builtin_names() -> List[str]:
    """All registered builtin names (for documentation and the audit)."""
    names = {name for name, _ in _REGISTRY}
    names.update(_VARIADIC)
    return sorted(names)


def _string_of(value: Sequence, what: str) -> str:
    if not value:
        return ""
    if len(value) > 1:
        raise XQueryTypeError(f"{what} requires a singleton (or empty) argument")
    item = value[0]
    if is_node(item):
        return item.string_value()
    return string_value_of_atomic(item)


def _optional_string(args: List[Sequence], index: int, default: str = "") -> str:
    if index >= len(args):
        return default
    return _string_of(args[index], f"argument {index + 1}")


def _numeric(value: Sequence, what: str) -> Optional[object]:
    atoms = atomize(value)
    if not atoms:
        return None
    if len(atoms) > 1:
        raise XQueryTypeError(f"{what} requires a singleton argument")
    atom = atoms[0]
    if isinstance(atom, bool):
        raise XQueryTypeError(f"{what} requires a numeric argument")
    if isinstance(atom, (int, float, Decimal)):
        return atom
    if isinstance(atom, UntypedAtomic):
        # the fuzzer caught the bare float() here too (cf.
        # _untyped_to_double): round(text { 's' }) escaped as a raw
        # Python ValueError instead of a spec error code.
        return _untyped_to_double(atom, what)
    raise XQueryTypeError(f"{what} requires a numeric argument")


# -- general -------------------------------------------------------------------


@builtin("true", 0)
def _fn_true(ctx, args, expr) -> Sequence:
    return [True]


@builtin("false", 0)
def _fn_false(ctx, args, expr) -> Sequence:
    return [False]


@builtin("not", 1)
def _fn_not(ctx, args, expr) -> Sequence:
    return [not effective_boolean_value(args[0])]


@builtin("boolean", 1)
def _fn_boolean(ctx, args, expr) -> Sequence:
    return [effective_boolean_value(args[0])]


@builtin("count", 1)
def _fn_count(ctx, args, expr) -> Sequence:
    return [len(args[0])]


@builtin("empty", 1)
def _fn_empty(ctx, args, expr) -> Sequence:
    return [not args[0]]


@builtin("exists", 1)
def _fn_exists(ctx, args, expr) -> Sequence:
    return [bool(args[0])]


@builtin("data", 1)
def _fn_data(ctx, args, expr) -> Sequence:
    return atomize(args[0])


@builtin("position", 0)
def _fn_position(ctx, args, expr) -> Sequence:
    if ctx.item is None:
        raise XQueryDynamicError("position() with no context item", code="XPDY0002")
    return [ctx.position]


@builtin("last", 0)
def _fn_last(ctx, args, expr) -> Sequence:
    if ctx.item is None:
        raise XQueryDynamicError("last() with no context item", code="XPDY0002")
    return [ctx.size]


@builtin("exactly-one", 1)
def _fn_exactly_one(ctx, args, expr) -> Sequence:
    if len(args[0]) != 1:
        raise XQueryDynamicError(
            f"exactly-one: got {len(args[0])} items", code="FORG0005"
        )
    return args[0]


@builtin("zero-or-one", 1)
def _fn_zero_or_one(ctx, args, expr) -> Sequence:
    if len(args[0]) > 1:
        raise XQueryDynamicError(
            f"zero-or-one: got {len(args[0])} items", code="FORG0003"
        )
    return args[0]


@builtin("one-or-more", 1)
def _fn_one_or_more(ctx, args, expr) -> Sequence:
    if not args[0]:
        raise XQueryDynamicError("one-or-more: got an empty sequence", code="FORG0004")
    return args[0]


@builtin("deep-equal", 2)
def _fn_deep_equal(ctx, args, expr) -> Sequence:
    return [deep_equal(args[0], args[1])]


# -- error and trace --------------------------------------------------------------


@builtin("error", 0, 1, 2)
def _fn_error(ctx, args, expr) -> Sequence:
    if not args:
        raise XQueryUserError("error() called")
    message = _string_of(args[0], "error")
    value = args[1] if len(args) > 1 else None
    raise XQueryUserError(message, value=value)


@builtin("trace", min_arity=1)
def _fn_trace(ctx, args, expr) -> Sequence:
    parts = []
    for arg in args:
        parts.append(
            " ".join(
                item.string_value() if is_node(item) else string_value_of_atomic(item)
                for item in arg
            )
        )
    ctx.trace.emit(" ".join(parts))
    return args[-1]


# -- strings ------------------------------------------------------------------------


@builtin("string", 0, 1)
def _fn_string(ctx, args, expr) -> Sequence:
    if not args:
        if ctx.item is None:
            raise XQueryDynamicError("string() with no context item", code="XPDY0002")
        return [_string_of([ctx.item], "string")]
    return [_string_of(args[0], "string")]


@builtin("string-length", 0, 1)
def _fn_string_length(ctx, args, expr) -> Sequence:
    if not args:
        if ctx.item is None:
            raise XQueryDynamicError(
                "string-length() with no context item", code="XPDY0002"
            )
        return [len(_string_of([ctx.item], "string-length"))]
    return [len(_string_of(args[0], "string-length"))]


@builtin("concat", min_arity=2)
def _fn_concat(ctx, args, expr) -> Sequence:
    return ["".join(_string_of(arg, "concat") for arg in args)]


@builtin("string-join", 2)
def _fn_string_join(ctx, args, expr) -> Sequence:
    separator = _string_of(args[1], "string-join")
    pieces = [
        item.string_value() if is_node(item) else string_value_of_atomic(item)
        for item in args[0]
    ]
    return [separator.join(pieces)]


@builtin("substring", 2, 3)
def _fn_substring(ctx, args, expr) -> Sequence:
    text = _string_of(args[0], "substring")
    start = _numeric(args[1], "substring")
    if start is None:
        return [""]
    start_round = round(float(start))
    if len(args) > 2:
        length = _numeric(args[2], "substring")
        if length is None:
            return [""]
        end_round = start_round + round(float(length))
    else:
        end_round = len(text) + 1
    begin = max(1, start_round)
    end = max(begin, end_round)
    return [text[begin - 1 : end - 1]]


@builtin("substring-before", 2)
def _fn_substring_before(ctx, args, expr) -> Sequence:
    text = _string_of(args[0], "substring-before")
    sep = _string_of(args[1], "substring-before")
    if not sep or sep not in text:
        return [""]
    return [text.split(sep, 1)[0]]


@builtin("substring-after", 2)
def _fn_substring_after(ctx, args, expr) -> Sequence:
    text = _string_of(args[0], "substring-after")
    sep = _string_of(args[1], "substring-after")
    if not sep or sep not in text:
        return [""]
    return [text.split(sep, 1)[1]]


@builtin("contains", 2)
def _fn_contains(ctx, args, expr) -> Sequence:
    return [_string_of(args[1], "contains") in _string_of(args[0], "contains")]


@builtin("starts-with", 2)
def _fn_starts_with(ctx, args, expr) -> Sequence:
    return [
        _string_of(args[0], "starts-with").startswith(
            _string_of(args[1], "starts-with")
        )
    ]


@builtin("ends-with", 2)
def _fn_ends_with(ctx, args, expr) -> Sequence:
    return [
        _string_of(args[0], "ends-with").endswith(_string_of(args[1], "ends-with"))
    ]


@builtin("normalize-space", 0, 1)
def _fn_normalize_space(ctx, args, expr) -> Sequence:
    if not args:
        if ctx.item is None:
            raise XQueryDynamicError(
                "normalize-space() with no context item", code="XPDY0002"
            )
        text = _string_of([ctx.item], "normalize-space")
    else:
        text = _string_of(args[0], "normalize-space")
    return [" ".join(text.split())]


@builtin("upper-case", 1)
def _fn_upper_case(ctx, args, expr) -> Sequence:
    return [_string_of(args[0], "upper-case").upper()]


@builtin("lower-case", 1)
def _fn_lower_case(ctx, args, expr) -> Sequence:
    return [_string_of(args[0], "lower-case").lower()]


@builtin("translate", 3)
def _fn_translate(ctx, args, expr) -> Sequence:
    text = _string_of(args[0], "translate")
    source = _string_of(args[1], "translate")
    target = _string_of(args[2], "translate")
    table = {}
    for index, char in enumerate(source):
        if char not in table:
            table[char] = target[index] if index < len(target) else None
    out = []
    for char in text:
        if char in table:
            if table[char] is not None:
                out.append(table[char])
        else:
            out.append(char)
    return ["".join(out)]


@builtin("tokenize", 2)
def _fn_tokenize(ctx, args, expr) -> Sequence:
    text = _string_of(args[0], "tokenize")
    pattern = _string_of(args[1], "tokenize")
    if not text:
        return []
    return list(re.split(pattern, text))


@builtin("matches", 2)
def _fn_matches(ctx, args, expr) -> Sequence:
    text = _string_of(args[0], "matches")
    pattern = _string_of(args[1], "matches")
    return [re.search(pattern, text) is not None]


@builtin("replace", 3)
def _fn_replace(ctx, args, expr) -> Sequence:
    text = _string_of(args[0], "replace")
    pattern = _string_of(args[1], "replace")
    replacement = _string_of(args[2], "replace")
    return [re.sub(pattern, replacement.replace("$", "\\"), text)]


@builtin("codepoints-to-string", 1)
def _fn_codepoints_to_string(ctx, args, expr) -> Sequence:
    atoms = atomize(args[0])
    return ["".join(chr(int(a)) for a in atoms)]


@builtin("string-to-codepoints", 1)
def _fn_string_to_codepoints(ctx, args, expr) -> Sequence:
    return [ord(char) for char in _string_of(args[0], "string-to-codepoints")]


# -- numbers ---------------------------------------------------------------------------


@builtin("number", 0, 1)
def _fn_number(ctx, args, expr) -> Sequence:
    if not args:
        if ctx.item is None:
            raise XQueryDynamicError("number() with no context item", code="XPDY0002")
        return [number_value([ctx.item])]
    return [number_value(args[0])]


@builtin("abs", 1)
def _fn_abs(ctx, args, expr) -> Sequence:
    value = _numeric(args[0], "abs")
    return [] if value is None else [abs(value)]


def _non_finite(value) -> bool:
    """NaN and ±INF pass through fn:floor/ceiling/round unchanged, per the
    spec; feeding them to math.floor/ceil escaped as raw ValueError /
    OverflowError (a fuzz-found crash on ``ceiling(number(()))``)."""
    return isinstance(value, float) and not math.isfinite(value)


@builtin("floor", 1)
def _fn_floor(ctx, args, expr) -> Sequence:
    value = _numeric(args[0], "floor")
    if value is None:
        return []
    return [value if _non_finite(value) else math.floor(value)]


@builtin("ceiling", 1)
def _fn_ceiling(ctx, args, expr) -> Sequence:
    value = _numeric(args[0], "ceiling")
    if value is None:
        return []
    return [value if _non_finite(value) else math.ceil(value)]


@builtin("round", 1)
def _fn_round(ctx, args, expr) -> Sequence:
    value = _numeric(args[0], "round")
    if value is None:
        return []
    if _non_finite(value):
        return [value]
    # XQuery rounds half *up* (towards positive infinity), not banker's.
    return [math.floor(float(value) + 0.5)]


@builtin("sum", 1, 2)
def _fn_sum(ctx, args, expr) -> Sequence:
    atoms = atomize(args[0])
    if not atoms:
        return args[1] if len(args) > 1 else [0]
    total = None
    for atom in atoms:
        value = _coerce_number(atom, "sum")
        if total is None:
            total = value
        else:
            left, right = _promote_pair(total, value)
            total = left + right
    return [total]


@builtin("avg", 1)
def _fn_avg(ctx, args, expr) -> Sequence:
    atoms = atomize(args[0])
    if not atoms:
        return []
    values = [_coerce_number(atom, "avg") for atom in atoms]
    total = values[0]
    for value in values[1:]:
        # mixed float/decimal sequences need the same promotion the
        # arithmetic operators apply (the fuzzer caught the bare + raising
        # TypeError on float + Decimal).
        left, right = _promote_pair(total, value)
        total = left + right
    if isinstance(total, int):
        total = Decimal(total)
    return [total / len(values)]


def _coerce_number(atom: object, what: str) -> object:
    if isinstance(atom, bool):
        raise XQueryTypeError(f"{what}: boolean is not a number")
    if isinstance(atom, (int, float, Decimal)):
        return atom
    if isinstance(atom, UntypedAtomic):
        return _untyped_to_double(atom, what)
    raise XQueryTypeError(f"{what}: {atom!r} is not a number")


def _untyped_to_double(atom: UntypedAtomic, what: str) -> float:
    # the fuzzer caught the bare float() here: a non-numeric untyped value
    # escaped as a raw Python ValueError instead of a spec error code.
    try:
        return float(atom.value)
    except ValueError as exc:
        raise XQueryDynamicError(
            f"{what}: cannot cast {atom.value!r} to xs:double", code="FORG0001"
        ) from exc


@builtin("min", 1)
def _fn_min(ctx, args, expr) -> Sequence:
    return _min_max(args[0], "min", pick_smaller=True)


@builtin("max", 1)
def _fn_max(ctx, args, expr) -> Sequence:
    return _min_max(args[0], "max", pick_smaller=False)


def _min_max(value: Sequence, what: str, pick_smaller: bool) -> Sequence:
    atoms = atomize(value)
    if not atoms:
        return []
    best = None
    for atom in atoms:
        if isinstance(atom, UntypedAtomic):
            atom = _untyped_to_double(atom, what)
        if best is None:
            best = atom
            continue
        try:
            replace = value_compare("lt" if pick_smaller else "gt", atom, best)
        except ComparisonTypeError as exc:
            raise XQueryTypeError(f"{what}: {exc}") from exc
        if replace:
            best = atom
    return [best]


# -- sequences --------------------------------------------------------------------------


@builtin("distinct-values", 1)
def _fn_distinct_values(ctx, args, expr) -> Sequence:
    atoms = atomize(args[0])
    result: Sequence = []
    for atom in atoms:
        if isinstance(atom, UntypedAtomic):
            atom = atom.value
        duplicate = False
        for existing in result:
            try:
                if value_compare("eq", existing, atom):
                    duplicate = True
                    break
            except ComparisonTypeError:
                continue
        if not duplicate:
            result.append(atom)
    return result


@builtin("reverse", 1)
def _fn_reverse(ctx, args, expr) -> Sequence:
    return list(reversed(args[0]))


@builtin("subsequence", 2, 3)
def _fn_subsequence(ctx, args, expr) -> Sequence:
    source = args[0]
    start = _numeric(args[1], "subsequence")
    if start is None:
        return []
    start_round = round(float(start))
    if len(args) > 2:
        length = _numeric(args[2], "subsequence")
        if length is None:
            return []
        end_round = start_round + round(float(length))
    else:
        end_round = len(source) + 1
    begin = max(1, start_round)
    end = max(begin, end_round)
    return source[begin - 1 : end - 1]


@builtin("insert-before", 3)
def _fn_insert_before(ctx, args, expr) -> Sequence:
    source = args[0]
    position = _numeric(args[1], "insert-before")
    inserts = args[2]
    index = max(0, min(len(source), int(position or 1) - 1))
    return source[:index] + inserts + source[index:]


@builtin("remove", 2)
def _fn_remove(ctx, args, expr) -> Sequence:
    source = args[0]
    position = _numeric(args[1], "remove")
    index = int(position or 0)
    if index < 1 or index > len(source):
        return list(source)
    return source[: index - 1] + source[index:]


@builtin("index-of", 2)
def _fn_index_of(ctx, args, expr) -> Sequence:
    atoms = atomize(args[0])
    targets = atomize(args[1])
    if len(targets) != 1:
        raise XQueryTypeError("index-of requires a singleton search value")
    target = targets[0]
    if isinstance(target, UntypedAtomic):
        target = target.value
    result: Sequence = []
    for position, atom in enumerate(atoms, start=1):
        if isinstance(atom, UntypedAtomic):
            atom = atom.value
        try:
            if value_compare("eq", atom, target):
                result.append(position)
        except ComparisonTypeError:
            continue
    return result


@builtin("unordered", 1)
def _fn_unordered(ctx, args, expr) -> Sequence:
    return args[0]


# -- nodes ---------------------------------------------------------------------------------


@builtin("name", 0, 1)
def _fn_name(ctx, args, expr) -> Sequence:
    node = _node_argument(ctx, args, "name")
    if node is None:
        return [""]
    return [node.name or ""]


@builtin("local-name", 0, 1)
def _fn_local_name(ctx, args, expr) -> Sequence:
    node = _node_argument(ctx, args, "local-name")
    if node is None:
        return [""]
    name = node.name or ""
    return [name.split(":")[-1]]


@builtin("node-name", 0, 1)
def _fn_node_name(ctx, args, expr) -> Sequence:
    node = _node_argument(ctx, args, "node-name")
    if node is None or node.name is None:
        return []
    return [node.name]


def _node_argument(ctx, args, what: str) -> Optional[Node]:
    if not args:
        if ctx.item is None:
            raise XQueryDynamicError(f"{what}() with no context item", code="XPDY0002")
        item = ctx.item
    else:
        if not args[0]:
            return None
        if len(args[0]) > 1:
            raise XQueryTypeError(f"{what} requires a singleton node")
        item = args[0][0]
    if not is_node(item):
        raise XQueryTypeError(f"{what} requires a node argument")
    return item


@builtin("root", 0, 1)
def _fn_root(ctx, args, expr) -> Sequence:
    node = _node_argument(ctx, args, "root")
    if node is None:
        return []
    return [node.root()]


@builtin("doc", 1)
def _fn_doc(ctx, args, expr) -> Sequence:
    uri = _string_of(args[0], "doc")
    document = ctx.documents.get(uri)
    if document is None and ctx.collections is not None:
        document = ctx.collections.get(uri)
    if document is None:
        raise XQueryDynamicError(f"document {uri!r} is not available", code="FODC0002")
    return [document]


@builtin("doc-available", 1)
def _fn_doc_available(ctx, args, expr) -> Sequence:
    uri = _string_of(args[0], "doc-available")
    if uri in ctx.documents:
        return [True]
    return [ctx.collections is not None and uri in ctx.collections]


# -- collections + full-text search (repro.collections) ------------------------
#
# These builtins are thin glue over the collection store carried by the
# dynamic context (``CompiledQuery.run(collections=...)``); the logic —
# inverted index, brute-force scan, KWIC extraction — lives in
# :mod:`repro.collections`.  Registering them here (not in that package)
# guarantees they exist whenever the function registry is imported, for
# all three backends and for the typed lint pass, with no circular import.


def _collection_store(ctx, what: str):
    store = ctx.collections
    if store is None:
        raise XQueryDynamicError(
            f"{what}: no collection store in the dynamic context", code="FODC0002"
        )
    return store


def _stored_document(ctx, value: Sequence, what: str):
    """Resolve a node (its containing document) or a uri string to a stored doc."""
    store = _collection_store(ctx, what)
    if not value:
        raise XQueryTypeError(f"{what} requires a node or uri argument")
    if len(value) > 1:
        raise XQueryTypeError(f"{what} requires a singleton argument")
    item = value[0]
    if is_node(item):
        return store, item.root()
    return store, store.resolve(string_value_of_atomic(item))


@builtin("collection", 0, 1)
def _fn_collection(ctx, args, expr) -> Sequence:
    store = _collection_store(ctx, "collection")
    uri = _string_of(args[0], "collection") if args else ""
    return [document for _uri, document in store.collection(uri)]


@builtin("ft:search", 1, 2)
def _ft_search(ctx, args, expr) -> Sequence:
    """Documents containing the phrase, ordered by (score desc, uri asc).

    ``ft:search($phrase)`` searches the whole store;
    ``ft:search($collection, $phrase)`` one collection.  The store's
    ``use_index`` flag selects postings vs brute-force scan — the result
    is byte-identical either way (the oracle and E22 pin this).
    """
    store = _collection_store(ctx, "ft:search")
    if len(args) == 2:
        collection = _string_of(args[0], "ft:search")
        phrase = _string_of(args[1], "ft:search")
    else:
        collection = ""
        phrase = _string_of(args[0], "ft:search")
    return [store.resolve(uri) for uri, _score in store.search(collection, phrase)]


@builtin("ft:score", 2)
def _ft_score(ctx, args, expr) -> Sequence:
    """Phrase occurrence count in a node's string value (or a stored uri).

    Purely document-local (no idf), so the score a shard computes equals
    the score the unsharded engine computes — the property scatter/gather
    and the indexed/brute parity both rely on.
    """
    from ..collections.fulltext import count_phrase

    phrase = _string_of(args[1], "ft:score")
    if not args[0]:
        return [0]
    if len(args[0]) > 1:
        raise XQueryTypeError("ft:score requires a singleton first argument")
    item = args[0][0]
    if is_node(item):
        text = item.string_value()
    else:
        store = _collection_store(ctx, "ft:score")
        text = store.resolve(string_value_of_atomic(item)).string_value()
    return [count_phrase(text, phrase)]


@builtin("ft:kwic", 2, 3)
def _ft_kwic(ctx, args, expr) -> Sequence:
    """KWIC snippets (``before«match»after``), one per occurrence."""
    from ..collections.kwic import CHARS_KWIC, kwic_snippets

    phrase = _string_of(args[1], "ft:kwic")
    width = CHARS_KWIC
    if len(args) == 3:
        number = _numeric(args[2], "ft:kwic")
        if number is not None:
            width = max(0, int(number))
    if not args[0]:
        return []
    if len(args[0]) > 1:
        raise XQueryTypeError("ft:kwic requires a singleton first argument")
    item = args[0][0]
    if is_node(item):
        text = item.string_value()
    else:
        store = _collection_store(ctx, "ft:kwic")
        text = store.resolve(string_value_of_atomic(item)).string_value()
    return list(kwic_snippets(text, phrase, width))


@builtin("ft:uri", 1)
def _ft_uri(ctx, args, expr) -> Sequence:
    """The store URI of the document containing the argument node."""
    store, document = _stored_document(ctx, args[0], "ft:uri")
    return [store.uri_of(document)]
