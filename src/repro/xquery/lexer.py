"""The XQuery lexer.

Reproduces the syntactic quirks the paper catalogues:

* names may contain ``-`` and ``.``, so ``$n-1`` is a variable with a
  three-character name, not a subtraction;
* ``/`` is a path step, not division (division is the *name* ``div``);
* bare names are NameTests (``x`` means "children named x"), never
  variables — variables need ``$``;
* ``(: ... :)`` comments nest.

The lexer is pull-based.  Direct element constructors are *not* lexed here:
the parser detects ``<`` in expression position and switches to raw
character scanning (XML mode) using the cursor-control methods at the
bottom of the class, because XQuery's grammar is context sensitive at
exactly that point.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from typing import List, Optional

from .errors import XQueryStaticError
from .tokens import MULTI_SYMBOLS, SINGLE_SYMBOLS, Token

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_DIGITS = set("0123456789")

#: one NCName run — the paper's quirk characters ``-`` and ``.`` included;
#: a compiled regex scans the run in C instead of a per-character loop.
_NCNAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")

#: multi-character symbols grouped by first character (longest first within
#: a group), so scanning tries only the handful that can possibly match.
_MULTI_BY_FIRST: dict = {}
for _symbol in MULTI_SYMBOLS:
    _MULTI_BY_FIRST.setdefault(_symbol[0], []).append(_symbol)


class Lexer:
    """Tokenizes XQuery source text with explicit cursor control."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        # offsets where each line starts: location() is a bisect instead of
        # an O(pos) newline count per token (which made lexing quadratic).
        starts: List[int] = [0]
        find = text.find
        at = find("\n")
        while at >= 0:
            starts.append(at + 1)
            at = find("\n", at + 1)
        self._line_starts = starts

    # -- error reporting ----------------------------------------------------

    def location(self, pos: Optional[int] = None) -> tuple:
        pos = self.pos if pos is None else pos
        line = bisect_right(self._line_starts, pos)
        return line, pos - self._line_starts[line - 1] + 1

    def error(self, message: str, pos: Optional[int] = None) -> XQueryStaticError:
        line, column = self.location(pos)
        return XQueryStaticError(message, line=line, column=column)

    # -- main tokenizer -----------------------------------------------------

    def next_token(self) -> Token:
        """Scan and return the next token (``eof`` at end of input)."""
        self._skip_space_and_comments()
        text = self.text
        if self.pos >= len(text):
            return self._token("eof", "")
        start = self.pos
        char = text[start]

        if char == "$":
            return self._variable(start)
        if char in _NAME_START:
            return self._name_or_qname(start)
        if char in _DIGITS or (
            char == "." and start + 1 < len(text) and text[start + 1] in _DIGITS
        ):
            return self._number(start)
        if char in "\"'":
            return self._string(start)
        for symbol in _MULTI_BY_FIRST.get(char, ()):
            if text.startswith(symbol, start):
                self.pos = start + len(symbol)
                return self._token("symbol", symbol, start)
        if char in SINGLE_SYMBOLS or char == ":":
            self.pos = start + 1
            return self._token("symbol", char, start)
        raise self.error(f"unexpected character {char!r}", start)

    def _token(self, kind: str, value: str, start: Optional[int] = None) -> Token:
        start = self.pos if start is None else start
        starts = self._line_starts
        line = bisect_right(starts, start)
        return Token(kind, value, start, line, start - starts[line - 1] + 1)

    def _skip_space_and_comments(self) -> None:
        text = self.text
        size = len(text)
        pos = self.pos
        while True:
            while pos < size and text[pos] in " \t\r\n":
                pos += 1
            if pos < size and text[pos] == "(" and text.startswith("(:", pos):
                self.pos = pos
                self._skip_comment()
                pos = self.pos
            else:
                break
        self.pos = pos

    def _skip_comment(self) -> None:
        start = self.pos
        depth = 0
        text = self.text
        while self.pos < len(text):
            if text.startswith("(:", self.pos):
                depth += 1
                self.pos += 2
            elif text.startswith(":)", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise self.error("unterminated comment (: ... :)", start)

    def _variable(self, start: int) -> Token:
        # The infamous quirk: "-" continues the name, so $n-1 is one variable.
        self.pos = start + 1
        if self.pos >= len(self.text) or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a variable name after '$'", start)
        name = self._scan_name()
        return self._token("var", name, start)

    def _name_or_qname(self, start: int) -> Token:
        name = self._scan_name()
        return self._token("name", name, start)

    def _scan_name(self) -> str:
        """Scan an NCName or a QName (one optional colon)."""
        text = self.text
        start = self.pos
        match = _NCNAME_RE.match(text, start)
        if match is not None:
            self.pos = match.end()
        # one prefix:local colon, but not "::" (axis) and not ":=".
        if (
            self.pos < len(text)
            and text[self.pos] == ":"
            and self.pos + 1 < len(text)
            and text[self.pos + 1] in _NAME_START
            and not text.startswith("::", self.pos)
        ):
            match = _NCNAME_RE.match(text, self.pos + 1)
            self.pos = match.end()
        name = text[start : self.pos]
        # names may not end with "." or "-" followed by nothing meaningful;
        # XML allows trailing ones, keep as scanned.
        return name

    def _number(self, start: int) -> Token:
        text = self.text
        self.pos = start
        while self.pos < len(text) and text[self.pos] in _DIGITS:
            self.pos += 1
        kind = "integer"
        if self.pos < len(text) and text[self.pos] == ".":
            # ".." is the parent step, not a decimal point.
            if not text.startswith("..", self.pos):
                kind = "decimal"
                self.pos += 1
                while self.pos < len(text) and text[self.pos] in _DIGITS:
                    self.pos += 1
        if self.pos < len(text) and text[self.pos] in "eE":
            lookahead = self.pos + 1
            if lookahead < len(text) and text[lookahead] in "+-":
                lookahead += 1
            if lookahead < len(text) and text[lookahead] in _DIGITS:
                kind = "double"
                self.pos = lookahead
                while self.pos < len(text) and text[self.pos] in _DIGITS:
                    self.pos += 1
        return self._token(kind, text[start : self.pos], start)

    def _string(self, start: int) -> Token:
        text = self.text
        quote = text[start]
        self.pos = start + 1
        parts = []
        while self.pos < len(text):
            char = text[self.pos]
            if char == quote:
                if text.startswith(quote * 2, self.pos):
                    parts.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                return self._token("string", "".join(parts), start)
            if char == "&":
                parts.append(self._entity())
                continue
            parts.append(char)
            self.pos += 1
        raise self.error("unterminated string literal", start)

    def _entity(self) -> str:
        text = self.text
        end = text.find(";", self.pos + 1)
        if end < 0:
            raise self.error("unterminated entity reference")
        name = text[self.pos + 1 : end]
        self.pos = end + 1
        entities = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}
        if name.startswith("#x") or name.startswith("#X"):
            return chr(int(name[2:], 16))
        if name.startswith("#"):
            return chr(int(name[1:]))
        if name in entities:
            return entities[name]
        raise self.error(f"unknown entity &{name};")

    # -- raw XML-mode scanning (for direct constructors) --------------------
    #
    # The parser drives these directly; they read from self.pos.

    def at(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def take(self, literal: str) -> None:
        if not self.at(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def peek_char(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take_char(self) -> str:
        char = self.peek_char()
        self.pos += 1
        return char

    def skip_xml_space(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def scan_xml_name(self) -> str:
        if self.peek_char() not in _NAME_START:
            raise self.error("expected an XML name")
        return self._scan_name()

    def scan_entity(self) -> str:
        return self._entity()
