"""``python -m repro.xquery.lint`` — the xqlint command-line front end.

Lint .xq files (or stdin)::

    python -m repro.xquery.lint query.xq other.xq
    echo 'let $d := trace("x", 1) return 2' | python -m repro.xquery.lint -
    python -m repro.xquery.lint --json --select XQL001,XQL003 query.xq

Lint the repository's shipped corpus against the committed baseline (what
CI runs)::

    python -m repro.xquery.lint --corpus
    python -m repro.xquery.lint --corpus --write-baseline   # accept findings

Exit codes: 0 clean (corpus mode: no findings beyond the baseline),
1 findings at or above ``--fail-on`` (default: warning), 2 bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import (
    BASELINE_PATH,
    Diagnostic,
    analyze_source,
    diff_against_baseline,
    format_baseline,
    lint_corpus,
    rule_catalog,
    severity_at_least,
    sort_diagnostics,
)


def _parse_codes(raw: Optional[str]) -> Optional[List[str]]:
    if not raw:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def _emit(diagnostics: List[Diagnostic], as_json: bool, out) -> None:
    if as_json:
        json.dump([d.to_json() for d in diagnostics], out, indent=2)
        out.write("\n")
    else:
        for diagnostic in diagnostics:
            out.write(diagnostic.render() + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.xquery.lint",
        description=(
            "Static analyzer for the XQuery subset (rules XQL000-XQL012, "
            "including the schema-aware typed rules XQL010-XQL012)."
        ),
    )
    parser.add_argument(
        "files", nargs="*", help=".xq files to lint ('-' reads stdin)"
    )
    parser.add_argument("--json", action="store_true", help="emit JSON findings")
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated rule codes to run"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--fail-on",
        choices=("info", "warning", "error"),
        default="warning",
        help="minimum severity that makes the exit code 1 (default: warning)",
    )
    parser.add_argument(
        "--corpus",
        action="store_true",
        help="lint the repo's shipped .xq corpus against the baseline",
    )
    parser.add_argument(
        "--include",
        metavar="DIR",
        action="append",
        default=None,
        help="with --corpus: also lint .xq files under DIR (repo-relative; repeatable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file for --corpus (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="with --corpus: write the current findings as the new baseline",
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.rules:
        for entry in rule_catalog():
            print(f"{entry.code} ({entry.slug}): {entry.summary}")
        return 0

    if args.corpus:
        return _run_corpus(args)

    if not args.files:
        parser.error("no input files (pass .xq paths, '-' for stdin, or --corpus)")

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    findings: List[Diagnostic] = []
    for path in args.files:
        if path == "-":
            source = sys.stdin.read()
            label = "<stdin>"
        else:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as error:
                print(f"error: cannot read {path}: {error}", file=sys.stderr)
                return 2
            label = path
        findings.extend(
            analyze_source(
                source, select=select, ignore=ignore, source_label=label
            )
        )
    findings = sort_diagnostics(findings)
    _emit(findings, args.json, sys.stdout)
    failing = [d for d in findings if severity_at_least(d, args.fail_on)]
    return 1 if failing else 0


def _run_corpus(args) -> int:
    try:
        findings = lint_corpus(
            select=_parse_codes(args.select),
            ignore=_parse_codes(args.ignore),
            extra_dirs=args.include,
        )
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    baseline_path = args.baseline or BASELINE_PATH
    if args.write_baseline:
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write(format_baseline(findings))
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0
    fresh, stale = diff_against_baseline(findings, baseline_path)
    _emit(fresh, args.json, sys.stdout)
    if not args.json:
        for key in sorted(stale):
            print(f"note: baseline entry no longer produced: {key}")
        print(
            f"corpus: {len(findings)} finding(s), {len(fresh)} new, "
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
        )
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
