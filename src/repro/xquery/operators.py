"""Arithmetic and set operators with XQuery type promotion."""

from __future__ import annotations

import math
from decimal import Decimal, DivisionByZero, InvalidOperation
from typing import List

from ..xdm import (
    Node,
    Sequence,
    UntypedAtomic,
    atomize,
    sort_document_order,
)
from ..xdm.items import untyped_to_double
from .errors import XQueryDynamicError, XQueryTypeError

_NUMERIC = (int, float, Decimal)


def _to_number(item: object, op: str) -> object:
    """Coerce one atomized operand to a number (untyped promotes to double)."""
    if isinstance(item, bool):
        raise XQueryTypeError(f"operator '{op}' does not apply to xs:boolean")
    if isinstance(item, _NUMERIC):
        return item
    if isinstance(item, UntypedAtomic):
        try:
            return untyped_to_double(item)
        except ValueError as exc:
            raise XQueryTypeError(
                f"cannot promote untyped value {item.value!r} to a number"
            ) from exc
    raise XQueryTypeError(
        f"operator '{op}' does not apply to {type(item).__name__} values"
    )


def _promote_pair(left: object, right: object) -> tuple:
    """Numeric type promotion: integer → decimal → double."""
    if isinstance(left, float) or isinstance(right, float):
        return float(left), float(right)
    if isinstance(left, Decimal) or isinstance(right, Decimal):
        return Decimal(left) if not isinstance(left, Decimal) else left, (
            Decimal(right) if not isinstance(right, Decimal) else right
        )
    return left, right


def arithmetic(op: str, left_seq: Sequence, right_seq: Sequence) -> Sequence:
    """Evaluate ``left op right`` with XQuery's empty-propagation rule."""
    left_atoms = atomize(left_seq)
    right_atoms = atomize(right_seq)
    if not left_atoms or not right_atoms:
        return []
    if len(left_atoms) > 1 or len(right_atoms) > 1:
        raise XQueryTypeError(f"operator '{op}' requires singleton operands")
    left = _to_number(left_atoms[0], op)
    right = _to_number(right_atoms[0], op)
    left, right = _promote_pair(left, right)
    try:
        if op == "+":
            return [left + right]
        if op == "-":
            return [left - right]
        if op == "*":
            return [left * right]
        if op == "div":
            return [_divide(left, right)]
        if op == "idiv":
            return [_integer_divide(left, right)]
        if op == "mod":
            return [_modulo(left, right)]
    except (ZeroDivisionError, DivisionByZero, InvalidOperation) as exc:
        raise XQueryDynamicError(f"division by zero in '{op}'", code="FOAR0001") from exc
    raise XQueryDynamicError(f"unknown arithmetic operator {op!r}")


def _divide(left, right):
    if isinstance(left, float):
        if right == 0.0:
            if left == 0.0 or left != left:
                return float("nan")
            return float("inf") if left > 0 else float("-inf")
        return left / right
    # integer or decimal division produces a decimal, per the spec.
    if right == 0:
        raise ZeroDivisionError
    return Decimal(left) / Decimal(right)


def _is_nan(value) -> bool:
    return isinstance(value, float) and value != value


def _is_inf(value) -> bool:
    return isinstance(value, float) and math.isinf(value)


def _integer_divide(left, right) -> int:
    # the spec makes NaN/INF dividends a dynamic error (FOAR0002); the old
    # ``int(nan)`` here escaped as a raw ValueError (fuzz-found crash).
    if _is_nan(left) or _is_nan(right) or _is_inf(left):
        raise XQueryDynamicError(
            "idiv with NaN or infinite dividend", code="FOAR0002"
        )
    if right == 0:
        raise ZeroDivisionError
    quotient = (
        float(left) / float(right)
        if isinstance(left, float) or isinstance(right, float)
        else Decimal(left) / Decimal(right)
    )
    return int(quotient)


def _modulo(left, right):
    # fn-numeric-mod: NaN anywhere (or an infinite dividend) gives NaN; a
    # finite dividend mod ±INF gives the dividend back.  The fall-through
    # ``int(nan / 2)`` used to escape as a raw ValueError (fuzz-found).
    if _is_nan(left) or _is_nan(right) or _is_inf(left):
        return float("nan")
    if _is_inf(right):
        return float(left)
    if right == 0:
        if isinstance(left, float) or isinstance(right, float):
            return float("nan")
        raise ZeroDivisionError
    # XQuery mod takes the sign of the dividend (unlike Python's %).
    result = left - right * _trunc_div(left, right)
    return result


def _trunc_div(left, right):
    if isinstance(left, int) and isinstance(right, int):
        sign = -1 if (left < 0) != (right < 0) else 1
        return sign * (abs(left) // abs(right))
    return int(left / right)


def negate(value: Sequence) -> Sequence:
    atoms = atomize(value)
    if not atoms:
        return []
    if len(atoms) > 1:
        raise XQueryTypeError("unary '-' requires a singleton operand")
    number = _to_number(atoms[0], "-")
    return [-number]


def _require_nodes(value: Sequence, op: str) -> List[Node]:
    for item in value:
        if not isinstance(item, Node):
            raise XQueryTypeError(f"operator '{op}' requires node sequences")
    return list(value)


def set_operation(op: str, left_seq: Sequence, right_seq: Sequence) -> Sequence:
    """union / intersect / except over node sequences, in document order."""
    left = _require_nodes(left_seq, op)
    right = _require_nodes(right_seq, op)
    if op == "union":
        return sort_document_order(left + right)
    right_ids = {id(node) for node in right}
    if op == "intersect":
        return sort_document_order([n for n in left if id(n) in right_ids])
    if op == "except":
        return sort_document_order([n for n in left if id(n) not in right_ids])
    raise XQueryDynamicError(f"unknown set operator {op!r}")
