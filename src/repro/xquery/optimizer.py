"""The query optimizer — including the paper's famous ``trace`` bug.

Galax "was, quite reasonably for a query language, focussed on
optimization.  In particular, it did dead-code analysis.  Simply adding the
trace introduces a dead variable $dummy, which the Galax compiler helpfully
optimizes away — along with the call to trace."

The dead-``let`` elimination pass here reproduces that behaviour when
``trace_is_dead_code=True`` (the 2004 state); with the flag off, ``trace``
and ``error`` count as side effects and survive, modelling the fixed
compiler the paper says shipped "in the next version".

Passes:

* constant folding of arithmetic, comparisons, boolean operators, and
  ``if`` with a constant condition;
* dead-``let`` elimination in FLWOR expressions;
* flattening of nested sequence expressions.
"""

from __future__ import annotations

from dataclasses import replace
from decimal import Decimal
from typing import List, Set

from . import ast
from .errors import XQueryError
from .operators import arithmetic


class OptimizerStats:
    """Counts what the optimizer did — benchmarks report these."""

    def __init__(self) -> None:
        self.folded_constants = 0
        self.dead_lets_removed = 0
        self.traces_removed = 0

    def as_dict(self) -> dict:
        return {
            "folded_constants": self.folded_constants,
            "dead_lets_removed": self.dead_lets_removed,
            "traces_removed": self.traces_removed,
        }


def optimize_module(module: ast.Module, trace_is_dead_code: bool = False) -> OptimizerStats:
    """Optimize a module in place; returns statistics about the rewrites."""
    optimizer = _Optimizer(trace_is_dead_code)
    for function in module.functions:
        function.body = optimizer.rewrite(function.body)
    for variable in module.variables:
        if variable.value is not None:
            variable.value = optimizer.rewrite(variable.value)
    if module.body is not None:
        module.body = optimizer.rewrite(module.body)
    return optimizer.stats


def free_variables(expr) -> Set[str]:
    """Over-approximate the set of variable names referenced in *expr*.

    Used by dead-code elimination: a ``let`` binding survives if its name
    *might* be referenced downstream.  (Shadowing makes this an
    over-approximation; over-approximating keeps more code, which is the
    safe direction.)
    """
    names: Set[str] = set()

    def visit(node) -> None:
        if isinstance(node, ast.VarRef):
            names.add(node.name)

    ast.walk(expr, visit)
    return names


def has_side_effects(expr, trace_is_dead_code: bool) -> bool:
    """True if evaluating *expr* could do something observable.

    ``fn:error`` always counts.  ``fn:trace`` counts only when the
    optimizer is *not* in its buggy mode — the whole point of the bug is
    that trace's output was not considered observable.
    """
    impure = {"error"}
    if not trace_is_dead_code:
        impure.add("trace")

    found = []

    def visit(node) -> None:
        if isinstance(node, ast.FunctionCall):
            name = node.name[3:] if node.name.startswith("fn:") else node.name
            if name in impure:
                found.append(name)

    ast.walk(expr, visit)
    return bool(found)


def contains_trace(expr) -> bool:
    found = []

    def visit(node) -> None:
        if isinstance(node, ast.FunctionCall):
            name = node.name[3:] if node.name.startswith("fn:") else node.name
            if name == "trace":
                found.append(name)

    ast.walk(expr, visit)
    return bool(found)


class _Optimizer:
    def __init__(self, trace_is_dead_code: bool):
        self.trace_is_dead_code = trace_is_dead_code
        self.stats = OptimizerStats()

    # -- driver -----------------------------------------------------------

    def rewrite(self, expr):
        if expr is None or not isinstance(expr, ast.Expr):
            return expr
        expr = self._rewrite_children(expr)
        if isinstance(expr, ast.Arithmetic):
            return self._fold_arithmetic(expr)
        if isinstance(expr, ast.BooleanOp):
            return self._fold_boolean(expr)
        if isinstance(expr, ast.IfExpr):
            return self._fold_if(expr)
        if isinstance(expr, ast.FLWOR):
            return self._eliminate_dead_lets(expr)
        if isinstance(expr, ast.SequenceExpr):
            return self._flatten_sequence(expr)
        return expr

    def _rewrite_children(self, expr):
        if isinstance(expr, ast.SequenceExpr):
            expr.items = [self.rewrite(item) for item in expr.items]
        elif isinstance(expr, (ast.Arithmetic, ast.Comparison, ast.BooleanOp, ast.SetOp)):
            expr.left = self.rewrite(expr.left)
            expr.right = self.rewrite(expr.right)
        elif isinstance(expr, ast.RangeExpr):
            expr.start = self.rewrite(expr.start)
            expr.end = self.rewrite(expr.end)
        elif isinstance(expr, ast.Unary):
            expr.operand = self.rewrite(expr.operand)
        elif isinstance(expr, ast.FilterExpr):
            expr.base = self.rewrite(expr.base)
            expr.predicates = [self.rewrite(p) for p in expr.predicates]
        elif isinstance(expr, ast.AxisStep):
            expr.predicates = [self.rewrite(p) for p in expr.predicates]
        elif isinstance(expr, ast.PathExpr):
            if expr.first is not None:
                expr.first = self.rewrite(expr.first)
            expr.steps = [(sep, self.rewrite(step)) for sep, step in expr.steps]
        elif isinstance(expr, ast.FLWOR):
            for clause in expr.clauses:
                if isinstance(clause, ast.ForClause):
                    clause.source = self.rewrite(clause.source)
                elif isinstance(clause, ast.LetClause):
                    clause.value = self.rewrite(clause.value)
                elif isinstance(clause, ast.WhereClause):
                    clause.condition = self.rewrite(clause.condition)
                elif isinstance(clause, ast.OrderByClause):
                    for spec in clause.specs:
                        spec.key = self.rewrite(spec.key)
            expr.result = self.rewrite(expr.result)
        elif isinstance(expr, ast.Quantified):
            expr.bindings = [(var, self.rewrite(src)) for var, src in expr.bindings]
            expr.satisfies = self.rewrite(expr.satisfies)
        elif isinstance(expr, ast.IfExpr):
            expr.condition = self.rewrite(expr.condition)
            expr.then_branch = self.rewrite(expr.then_branch)
            expr.else_branch = self.rewrite(expr.else_branch)
        elif isinstance(expr, ast.Typeswitch):
            expr.operand = self.rewrite(expr.operand)
            for case in expr.cases:
                case.result = self.rewrite(case.result)
            expr.default = self.rewrite(expr.default)
        elif isinstance(expr, ast.TryCatch):
            expr.body = self.rewrite(expr.body)
            expr.handler = self.rewrite(expr.handler)
        elif isinstance(expr, ast.FunctionCall):
            expr.args = [self.rewrite(arg) for arg in expr.args]
        elif isinstance(expr, ast.DirectElement):
            expr.attributes = [
                (name, [self.rewrite(p) if isinstance(p, ast.Expr) else p for p in parts])
                for name, parts in expr.attributes
            ]
            expr.content = [
                self.rewrite(p) if isinstance(p, ast.Expr) else p for p in expr.content
            ]
        elif isinstance(expr, (ast.ComputedElement, ast.ComputedAttribute)):
            if expr.name_expr is not None:
                expr.name_expr = self.rewrite(expr.name_expr)
            if expr.content is not None:
                expr.content = self.rewrite(expr.content)
        elif isinstance(expr, (ast.ComputedText, ast.ComputedComment, ast.ComputedDocument)):
            if expr.content is not None:
                expr.content = self.rewrite(expr.content)
        elif isinstance(expr, (ast.InstanceOf, ast.CastAs, ast.CastableAs, ast.TreatAs)):
            expr.operand = self.rewrite(expr.operand)
        return expr

    # -- passes -----------------------------------------------------------

    @staticmethod
    def _literal_value(expr):
        if isinstance(expr, ast.Literal):
            return [expr.value]
        return None

    def _fold_arithmetic(self, expr: ast.Arithmetic):
        left = self._literal_value(expr.left)
        right = self._literal_value(expr.right)
        if left is None or right is None:
            return expr
        try:
            result = arithmetic(expr.op, left, right)
        except XQueryError:
            return expr  # leave runtime errors to runtime
        if len(result) != 1 or isinstance(result[0], Decimal):
            return expr
        self.stats.folded_constants += 1
        return ast.Literal(value=result[0], line=expr.line, column=expr.column)

    def _fold_boolean(self, expr: ast.BooleanOp):
        left = self._literal_value(expr.left)
        if left is None or len(left) != 1 or not isinstance(left[0], bool):
            return expr
        self.stats.folded_constants += 1
        if expr.op == "and":
            if not left[0]:
                return ast.Literal(value=False, line=expr.line, column=expr.column)
            return expr.right
        if left[0]:
            return ast.Literal(value=True, line=expr.line, column=expr.column)
        return expr.right

    def _fold_if(self, expr: ast.IfExpr):
        condition = self._literal_value(expr.condition)
        if condition is None or len(condition) != 1 or not isinstance(condition[0], bool):
            return expr
        self.stats.folded_constants += 1
        return expr.then_branch if condition[0] else expr.else_branch

    def _eliminate_dead_lets(self, expr: ast.FLWOR):
        """Remove ``let`` clauses whose variable is never used downstream.

        This is the pass that ate the paper's ``let $dummy := trace(...)``
        probes when ``trace_is_dead_code`` is on.
        """
        kept: List[object] = []
        clauses = expr.clauses
        for index, clause in enumerate(clauses):
            if not isinstance(clause, ast.LetClause):
                kept.append(clause)
                continue
            downstream: Set[str] = set()
            for later in clauses[index + 1 :]:
                if isinstance(later, ast.ForClause):
                    downstream |= free_variables(later.source)
                elif isinstance(later, ast.LetClause):
                    downstream |= free_variables(later.value)
                elif isinstance(later, ast.WhereClause):
                    downstream |= free_variables(later.condition)
                elif isinstance(later, ast.OrderByClause):
                    for spec in later.specs:
                        downstream |= free_variables(spec.key)
            downstream |= free_variables(expr.result)
            if clause.var in downstream:
                kept.append(clause)
                continue
            if has_side_effects(clause.value, self.trace_is_dead_code):
                kept.append(clause)
                continue
            self.stats.dead_lets_removed += 1
            if contains_trace(clause.value):
                self.stats.traces_removed += 1
        expr.clauses = kept
        if not expr.clauses:
            return expr.result
        return expr

    def _flatten_sequence(self, expr: ast.SequenceExpr):
        items: List[ast.Expr] = []
        changed = False
        for item in expr.items:
            if isinstance(item, ast.SequenceExpr):
                items.extend(item.items)
                changed = True
            elif isinstance(item, ast.EmptySequence):
                changed = True
            else:
                items.append(item)
        if not changed:
            return expr
        if not items:
            return ast.EmptySequence(line=expr.line, column=expr.column)
        if len(items) == 1:
            return items[0]
        return replace(expr, items=items)
