"""Recursive-descent parser for the XQuery subset.

Covers the fragment the paper's document generator exercised: the full
XPath 2.0 expression core (paths with axes, predicates, operators), FLWOR
with ``order by``, quantifiers, conditionals, direct and computed
constructors, and a prolog with ``declare function`` / ``declare
variable`` / ``declare namespace``.

The grammar is context sensitive where direct element constructors appear;
the parser switches the lexer into raw character scanning at ``<`` in
expression position (see :meth:`_direct_element`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..xdm import ItemType, SequenceType, parse_number
from . import ast
from .errors import XQueryStaticError, extended_stack
from .lexer import Lexer
from .tokens import Token

#: node-kind-test names: in a step, ``text()`` is a kind test, never a call.
KIND_TESTS = {
    "node",
    "text",
    "comment",
    "element",
    "attribute",
    "document-node",
    "processing-instruction",
}

AXES = {
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "attribute",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
}

GENERAL_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}
VALUE_COMPARISONS = {"eq", "ne", "lt", "le", "gt", "ge"}
NODE_COMPARISONS = {"is", "<<", ">>"}

#: function names that may not be called as ordinary functions.
RESERVED_FUNCTION_NAMES = KIND_TESTS | {"if", "item", "typeswitch", "empty-sequence"}


def parse_query(source: str) -> ast.Module:
    """Parse a complete query (prolog + body) into a :class:`Module`."""
    return Parser(source).parse_module()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (no prolog)."""
    module = Parser(source).parse_module()
    if module.functions or module.variables:
        raise XQueryStaticError("expected a bare expression, found a prolog")
    return module.body


class Parser:
    #: maximum expression nesting depth (each level costs several
    #: Python stack frames; extended_stack sizes the real stack to match).
    MAX_NESTING = 500

    def __init__(self, source: str):
        self.lexer = Lexer(source)
        self.source = source
        self.token: Token = self.lexer.next_token()
        self._nesting = 0
        #: lookahead memo: (cursor when peeked, cursor after, token).  Valid
        #: only while the lexer cursor still sits where the peek happened —
        #: any direct cursor move (raw XML mode, rewinds) invalidates it by
        #: construction, so those code paths need no cache management.
        self._peek: Optional[Tuple[int, int, Token]] = None

    # -- token plumbing -----------------------------------------------------

    def advance(self) -> Token:
        previous = self.token
        lexer = self.lexer
        peek = self._peek
        if peek is not None and peek[0] == lexer.pos:
            lexer.pos = peek[1]
            self.token = peek[2]
            self._peek = None
        else:
            self._peek = None
            self.token = lexer.next_token()
        return previous

    def expect_symbol(self, symbol: str) -> Token:
        if not self.token.is_symbol(symbol):
            raise self.error(f"expected {symbol!r}, found {self._describe()}")
        return self.advance()

    def expect_name(self, name: str) -> Token:
        if not self.token.is_name(name):
            raise self.error(f"expected keyword {name!r}, found {self._describe()}")
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        if self.token.kind != kind:
            raise self.error(f"expected {kind}, found {self._describe()}")
        return self.advance()

    def _describe(self) -> str:
        token = self.token
        if token.kind == "eof":
            return "end of query"
        return f"{token.kind} {token.value!r}"

    def error(self, message: str) -> XQueryStaticError:
        return XQueryStaticError(
            message, line=self.token.line, column=self.token.column
        )

    def _peek_next(self) -> Token:
        """Look one token past the current one without consuming."""
        lexer = self.lexer
        peek = self._peek
        if peek is not None and peek[0] == lexer.pos:
            return peek[2]
        saved_pos = lexer.pos
        token = lexer.next_token()
        self._peek = (saved_pos, lexer.pos, token)
        lexer.pos = saved_pos
        return token

    def _peek_two(self) -> Tuple[Token, Token]:
        """Look two tokens past the current one without consuming."""
        saved_pos = self.lexer.pos
        first = self.lexer.next_token()
        second = self.lexer.next_token()
        self.lexer.pos = saved_pos
        return first, second

    def _at_computed_constructor(self) -> bool:
        """True if the current token begins a computed constructor.

        ``element``/``attribute`` may be followed by a static name and then
        ``{``; the others take ``{`` directly.  Anything else starting with
        these keywords is a NameTest (an element really named "text"...).
        """
        token = self.token
        if token.kind != "name":
            return False
        if token.value in ("element", "attribute"):
            first, second = self._peek_two()
            if first.is_symbol("{"):
                return True
            return first.kind == "name" and second.is_symbol("{")
        if token.value in ("text", "comment", "document"):
            return self._peek_next().is_symbol("{")
        return False

    # -- module / prolog ------------------------------------------------------

    def parse_module(self) -> ast.Module:
        with extended_stack():
            module = ast.Module(source=self.source)
            self._parse_prolog(module)
            module.body = self.parse_expr()
            if self.token.kind != "eof":
                raise self.error(
                    f"unexpected {self._describe()} after end of query"
                )
            return module

    def _parse_prolog(self, module: ast.Module) -> None:
        while True:
            if self.token.is_name("xquery"):
                self.advance()
                self.expect_name("version")
                self.expect_kind("string")
                self.expect_symbol(";")
            elif self.token.is_name("declare"):
                self.advance()
                self._parse_declaration(module)
            else:
                return

    def _parse_declaration(self, module: ast.Module) -> None:
        if self.token.is_name("namespace"):
            self.advance()
            prefix = self.expect_kind("name").value
            self.expect_symbol("=")
            uri = self.expect_kind("string").value
            self.expect_symbol(";")
            module.namespaces.append((prefix, uri))
        elif self.token.is_name("variable"):
            self.advance()
            decl_token = self.expect_kind("var")
            declared_type = None
            if self.token.is_name("as"):
                self.advance()
                declared_type = self._parse_sequence_type()
            value: Optional[ast.Expr]
            if self.token.is_name("external"):
                self.advance()
                value = None
            else:
                self.expect_symbol(":=")
                value = self.parse_expr_single()
            self.expect_symbol(";")
            module.variables.append(
                ast.VariableDecl(
                    name=decl_token.value,
                    declared_type=declared_type,
                    value=value,
                    line=decl_token.line,
                    column=decl_token.column,
                )
            )
        elif self.token.is_name("function"):
            self.advance()
            module.functions.append(self._parse_function_decl())
        elif self.token.is_name("boundary-space") or self.token.is_name("option"):
            # accepted and ignored: scan to the terminating semicolon.
            while not self.token.is_symbol(";"):
                if self.token.kind == "eof":
                    raise self.error("unterminated declaration")
                self.advance()
            self.advance()
        elif self.token.is_name("default"):
            while not self.token.is_symbol(";"):
                if self.token.kind == "eof":
                    raise self.error("unterminated declaration")
                self.advance()
            self.advance()
        else:
            raise self.error(f"unknown declaration {self._describe()}")

    def _parse_function_decl(self) -> ast.FunctionDecl:
        name_token = self.expect_kind("name")
        if name_token.value in RESERVED_FUNCTION_NAMES:
            raise self.error(f"{name_token.value!r} is a reserved function name")
        self.expect_symbol("(")
        params: List[ast.Param] = []
        if not self.token.is_symbol(")"):
            while True:
                param_token = self.expect_kind("var")
                declared_type = None
                if self.token.is_name("as"):
                    self.advance()
                    declared_type = self._parse_sequence_type()
                params.append(
                    ast.Param(
                        param_token.value,
                        declared_type,
                        line=param_token.line,
                        column=param_token.column,
                    )
                )
                if self.token.is_symbol(","):
                    self.advance()
                    continue
                break
        self.expect_symbol(")")
        return_type = None
        if self.token.is_name("as"):
            self.advance()
            return_type = self._parse_sequence_type()
        self.expect_symbol("{")
        body = self.parse_expr()
        self.expect_symbol("}")
        self.expect_symbol(";")
        return ast.FunctionDecl(
            name=name_token.value,
            params=params,
            return_type=return_type,
            body=body,
            line=name_token.line,
            column=name_token.column,
        )

    # -- sequence types ---------------------------------------------------------

    def _parse_sequence_type(self) -> SequenceType:
        if self.token.is_name("empty-sequence"):
            self.advance()
            self.expect_symbol("(")
            self.expect_symbol(")")
            return SequenceType.empty()
        item_type = self._parse_item_type()
        occurrence = SequenceType.EXACTLY_ONE
        if self.token.is_symbol("?", "*", "+"):
            occurrence = self.advance().value
        return SequenceType(item_type, occurrence)

    def _parse_item_type(self) -> ItemType:
        if self.token.kind != "name":
            raise self.error(f"expected a type name, found {self._describe()}")
        name = self.token.value
        if name == "item":
            self.advance()
            self.expect_symbol("(")
            self.expect_symbol(")")
            return ItemType.item()
        if name in KIND_TESTS:
            self.advance()
            self.expect_symbol("(")
            inner_name = None
            if self.token.kind == "name":
                inner_name = self.advance().value
            elif self.token.is_symbol("*"):
                self.advance()
            self.expect_symbol(")")
            kind = None if name == "node" else name.replace("document-node", "document")
            return ItemType.node(kind=kind, name=inner_name)
        self.advance()
        if ":" not in name:
            name = f"xs:{name}"
        return ItemType.atomic(name)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        first_token = self.token
        items = [self.parse_expr_single()]
        while self.token.is_symbol(","):
            self.advance()
            items.append(self.parse_expr_single())
        if len(items) == 1:
            return items[0]
        return ast.at(ast.SequenceExpr(items=items), first_token)

    def parse_expr_single(self) -> ast.Expr:
        self._nesting += 1
        try:
            if self._nesting > self.MAX_NESTING:
                raise self.error(
                    f"expression nesting exceeds {self.MAX_NESTING} levels"
                )
            return self._parse_expr_single_inner()
        finally:
            self._nesting -= 1

    def _parse_expr_single_inner(self) -> ast.Expr:
        token = self.token
        if token.kind == "name":
            if token.value in ("for", "let") and self._peek_next().kind == "var":
                return self._parse_flwor()
            if token.value in ("some", "every") and self._peek_next().kind == "var":
                return self._parse_quantified()
            if token.value == "if" and self._peek_next().is_symbol("("):
                return self._parse_if()
            if token.value == "typeswitch" and self._peek_next().is_symbol("("):
                return self._parse_typeswitch()
            if token.value == "try" and self._peek_next().is_symbol("{"):
                return self._parse_try_catch()
        return self._parse_or()

    def _parse_flwor(self) -> ast.Expr:
        start = self.token
        clauses: List[object] = []
        while self.token.is_name("for", "let") and self._peek_next().kind == "var":
            keyword = self.advance().value
            while True:
                var_token = self.expect_kind("var")
                if keyword == "for":
                    position_var = None
                    if self.token.is_name("at"):
                        self.advance()
                        position_var = self.expect_kind("var").value
                    self.expect_name("in")
                    source = self.parse_expr_single()
                    clauses.append(
                        ast.ForClause(
                            var_token.value,
                            position_var,
                            source,
                            line=var_token.line,
                            column=var_token.column,
                        )
                    )
                else:
                    declared_type = None
                    if self.token.is_name("as"):
                        self.advance()
                        declared_type = self._parse_sequence_type()
                    self.expect_symbol(":=")
                    value = self.parse_expr_single()
                    clauses.append(
                        ast.LetClause(
                            var_token.value,
                            value,
                            declared_type,
                            line=var_token.line,
                            column=var_token.column,
                        )
                    )
                if self.token.is_symbol(","):
                    self.advance()
                    continue
                break
        if self.token.is_name("where"):
            where_token = self.advance()
            clauses.append(
                ast.WhereClause(
                    self.parse_expr_single(),
                    line=where_token.line,
                    column=where_token.column,
                )
            )
        if self.token.is_name("stable") or self.token.is_name("order"):
            stable = False
            if self.token.is_name("stable"):
                stable = True
                self.advance()
            self.expect_name("order")
            self.expect_name("by")
            specs = [self._parse_order_spec()]
            while self.token.is_symbol(","):
                self.advance()
                specs.append(self._parse_order_spec())
            clauses.append(ast.OrderByClause(specs, stable))
        self.expect_name("return")
        result = self.parse_expr_single()
        return ast.at(ast.FLWOR(clauses=clauses, result=result), start)

    def _parse_order_spec(self) -> ast.OrderSpec:
        key = self.parse_expr_single()
        descending = False
        if self.token.is_name("ascending"):
            self.advance()
        elif self.token.is_name("descending"):
            descending = True
            self.advance()
        empty_least = True
        if self.token.is_name("empty"):
            self.advance()
            if self.token.is_name("greatest"):
                empty_least = False
                self.advance()
            else:
                self.expect_name("least")
        return ast.OrderSpec(key, descending, empty_least)

    def _parse_quantified(self) -> ast.Expr:
        start = self.advance()  # some | every
        bindings: List[Tuple[str, ast.Expr]] = []
        while True:
            var_token = self.expect_kind("var")
            self.expect_name("in")
            source = self.parse_expr_single()
            bindings.append((var_token.value, source))
            if self.token.is_symbol(","):
                self.advance()
                continue
            break
        self.expect_name("satisfies")
        satisfies = self.parse_expr_single()
        return ast.at(
            ast.Quantified(
                quantifier=start.value, bindings=bindings, satisfies=satisfies
            ),
            start,
        )

    def _parse_try_catch(self) -> ast.Expr:
        start = self.expect_name("try")
        self.expect_symbol("{")
        body = self.parse_expr()
        self.expect_symbol("}")
        self.expect_name("catch")
        catch_var = None
        if self.token.kind == "var":
            catch_var = self.advance().value
        self.expect_symbol("{")
        handler = self.parse_expr()
        self.expect_symbol("}")
        return ast.at(
            ast.TryCatch(body=body, catch_var=catch_var, handler=handler), start
        )

    def _parse_typeswitch(self) -> ast.Expr:
        start = self.expect_name("typeswitch")
        self.expect_symbol("(")
        operand = self.parse_expr()
        self.expect_symbol(")")
        cases: List[ast.CaseClause] = []
        while self.token.is_name("case"):
            self.advance()
            var = None
            if self.token.kind == "var":
                var = self.advance().value
                self.expect_name("as")
            sequence_type = self._parse_sequence_type()
            self.expect_name("return")
            result = self.parse_expr_single()
            cases.append(ast.CaseClause(sequence_type, var, result))
        if not cases:
            raise self.error("typeswitch requires at least one case clause")
        self.expect_name("default")
        default_var = None
        if self.token.kind == "var":
            default_var = self.advance().value
        self.expect_name("return")
        default = self.parse_expr_single()
        return ast.at(
            ast.Typeswitch(
                operand=operand,
                cases=cases,
                default_var=default_var,
                default=default,
            ),
            start,
        )

    def _parse_if(self) -> ast.Expr:
        start = self.expect_name("if")
        self.expect_symbol("(")
        condition = self.parse_expr()
        self.expect_symbol(")")
        self.expect_name("then")
        then_branch = self.parse_expr_single()
        self.expect_name("else")
        else_branch = self.parse_expr_single()
        return ast.at(
            ast.IfExpr(
                condition=condition,
                then_branch=then_branch,
                else_branch=else_branch,
            ),
            start,
        )

    # -- operator precedence chain ---------------------------------------------

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.token.is_name("or"):
            token = self.advance()
            right = self._parse_and()
            left = ast.at(ast.BooleanOp(op="or", left=left, right=right), token)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self.token.is_name("and"):
            token = self.advance()
            right = self._parse_comparison()
            left = ast.at(ast.BooleanOp(op="and", left=left, right=right), token)
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_range()
        token = self.token
        style = None
        if token.kind == "symbol" and token.value in GENERAL_COMPARISONS:
            style = "general"
        elif token.kind == "name" and token.value in VALUE_COMPARISONS:
            style = "value"
        elif token.kind == "name" and token.value == "is":
            style = "node"
        elif token.kind == "symbol" and token.value in ("<<", ">>"):
            style = "node"
        if style is None:
            return left
        op_token = self.advance()
        right = self._parse_range()
        return ast.at(
            ast.Comparison(op=op_token.value, style=style, left=left, right=right),
            op_token,
        )

    def _parse_range(self) -> ast.Expr:
        left = self._parse_additive()
        if self.token.is_name("to"):
            token = self.advance()
            right = self._parse_additive()
            return ast.at(ast.RangeExpr(start=left, end=right), token)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.token.is_symbol("+", "-"):
            token = self.advance()
            right = self._parse_multiplicative()
            left = ast.at(
                ast.Arithmetic(op=token.value, left=left, right=right), token
            )
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_union()
        while self.token.is_symbol("*") or self.token.is_name("div", "idiv", "mod"):
            token = self.advance()
            right = self._parse_union()
            left = ast.at(
                ast.Arithmetic(op=token.value, left=left, right=right), token
            )
        return left

    def _parse_union(self) -> ast.Expr:
        left = self._parse_intersect()
        while self.token.is_name("union") or self.token.is_symbol("|"):
            token = self.advance()
            right = self._parse_intersect()
            left = ast.at(ast.SetOp(op="union", left=left, right=right), token)
        return left

    def _parse_intersect(self) -> ast.Expr:
        left = self._parse_instance_of()
        while self.token.is_name("intersect", "except"):
            token = self.advance()
            right = self._parse_instance_of()
            left = ast.at(
                ast.SetOp(op=token.value, left=left, right=right), token
            )
        return left

    def _parse_instance_of(self) -> ast.Expr:
        left = self._parse_treat()
        if self.token.is_name("instance"):
            token = self.advance()
            self.expect_name("of")
            sequence_type = self._parse_sequence_type()
            return ast.at(
                ast.InstanceOf(operand=left, sequence_type=sequence_type), token
            )
        return left

    def _parse_treat(self) -> ast.Expr:
        left = self._parse_castable()
        if self.token.is_name("treat"):
            token = self.advance()
            self.expect_name("as")
            sequence_type = self._parse_sequence_type()
            return ast.at(
                ast.TreatAs(operand=left, sequence_type=sequence_type), token
            )
        return left

    def _parse_castable(self) -> ast.Expr:
        left = self._parse_cast()
        if self.token.is_name("castable"):
            token = self.advance()
            self.expect_name("as")
            type_name, allow_empty = self._parse_single_type()
            return ast.at(
                ast.CastableAs(
                    operand=left, type_name=type_name, allow_empty=allow_empty
                ),
                token,
            )
        return left

    def _parse_cast(self) -> ast.Expr:
        left = self._parse_unary()
        if self.token.is_name("cast"):
            token = self.advance()
            self.expect_name("as")
            type_name, allow_empty = self._parse_single_type()
            return ast.at(
                ast.CastAs(operand=left, type_name=type_name, allow_empty=allow_empty),
                token,
            )
        return left

    def _parse_single_type(self) -> Tuple[str, bool]:
        name = self.expect_kind("name").value
        if ":" not in name:
            name = f"xs:{name}"
        allow_empty = False
        if self.token.is_symbol("?"):
            allow_empty = True
            self.advance()
        return name, allow_empty

    def _parse_unary(self) -> ast.Expr:
        if self.token.is_symbol("-", "+"):
            token = self.advance()
            operand = self._parse_unary()
            if token.value == "+":
                return operand
            return ast.at(ast.Unary(op="-", operand=operand), token)
        return self._parse_path()

    # -- paths ---------------------------------------------------------------------

    def _parse_path(self) -> ast.Expr:
        token = self.token
        if token.kind == "symbol" and (token.value == "/" or token.value == "//"):
            self.advance()
            if token.value == "/":
                if self._starts_step():
                    first, steps = self._parse_relative_path()
                    return ast.at(
                        ast.PathExpr(anchor="/", first=first, steps=steps), token
                    )
                return ast.at(ast.PathExpr(anchor="/", first=None, steps=[]), token)
            first, steps = self._parse_relative_path()
            return ast.at(ast.PathExpr(anchor="//", first=first, steps=steps), token)
        if not self._starts_step():
            raise self.error(f"expected an expression, found {self._describe()}")
        first, steps = self._parse_relative_path()
        if not steps and not isinstance(first, ast.AxisStep):
            return first
        return ast.at(ast.PathExpr(anchor=None, first=first, steps=steps), token)

    def _parse_relative_path(self) -> Tuple[ast.Expr, List[Tuple[str, ast.Expr]]]:
        first = self._parse_step_expr()
        steps: List[Tuple[str, ast.Expr]] = []
        token = self.token
        while token.kind == "symbol" and (token.value == "/" or token.value == "//"):
            separator = self.advance().value
            steps.append((separator, self._parse_step_expr()))
            token = self.token
        return first, steps

    _STEP_SYMBOLS = frozenset(("(", ".", "..", "@", "*", "<", "$"))

    def _starts_step(self) -> bool:
        token = self.token
        if token.kind in ("var", "integer", "decimal", "double", "string", "name"):
            return True
        return token.kind == "symbol" and token.value in self._STEP_SYMBOLS

    def _parse_step_expr(self) -> ast.Expr:
        token = self.token
        if token.kind == "symbol":
            # reverse step: ".."
            if token.value == "..":
                self.advance()
                step = ast.at(
                    ast.AxisStep(axis="parent", test=ast.NodeTest("node")), token
                )
                step.predicates = self._parse_predicates()
                return step
            # attribute abbreviation: @name
            if token.value == "@":
                self.advance()
                test = self._parse_node_test()
                step = ast.at(ast.AxisStep(axis="attribute", test=test), token)
                step.predicates = self._parse_predicates()
                return step
            # wildcard child step (the name-flavored cases cannot apply)
            if token.value == "*":
                self.advance()
                step = ast.at(
                    ast.AxisStep(axis="child", test=ast.NodeTest("wildcard", "*")),
                    token,
                )
                step.predicates = self._parse_predicates()
                return step
        elif token.kind == "name":
            # explicit axis: axisname::test
            if token.value in AXES and self._peek_next().is_symbol("::"):
                axis = self.advance().value
                self.expect_symbol("::")
                test = self._parse_node_test()
                step = ast.at(ast.AxisStep(axis=axis, test=test), token)
                step.predicates = self._parse_predicates()
                return step
            # kind test as a child step: text(), node(), element(name)...
            if token.value in KIND_TESTS and self._peek_next().is_symbol("("):
                test = self._parse_node_test()
                axis = "attribute" if token.value == "attribute" else "child"
                step = ast.at(ast.AxisStep(axis=axis, test=test), token)
                step.predicates = self._parse_predicates()
                return step
            # computed constructors are primaries, not name tests
            if self._at_computed_constructor():
                base = self._computed_constructor()
                predicates = self._parse_predicates()
                if predicates:
                    return ast.at(
                        ast.FilterExpr(base=base, predicates=predicates), token
                    )
                return base
            # name test (child axis), unless it is a function call
            if not self._peek_next().is_symbol("("):
                name = self.advance().value
                if name.endswith(":") and self.token.is_symbol("*"):
                    self.advance()
                    test = ast.NodeTest("wildcard", name + "*")
                else:
                    test = ast.NodeTest("name", name)
                step = ast.at(ast.AxisStep(axis="child", test=test), token)
                step.predicates = self._parse_predicates()
                return step
        # otherwise: a filter expression (primary + predicates)
        base = self._parse_primary()
        predicates = self._parse_predicates()
        if predicates:
            return ast.at(ast.FilterExpr(base=base, predicates=predicates), token)
        return base

    def _parse_node_test(self) -> ast.NodeTest:
        token = self.token
        if token.is_symbol("*"):
            self.advance()
            return ast.NodeTest("wildcard", "*")
        name_token = self.expect_kind("name")
        name = name_token.value
        if name in KIND_TESTS and self.token.is_symbol("("):
            self.advance()
            inner = None
            if self.token.kind == "name":
                inner = self.advance().value
            elif self.token.kind == "string":
                inner = self.advance().value
            elif self.token.is_symbol("*"):
                self.advance()
            self.expect_symbol(")")
            return ast.NodeTest(name, inner)
        return ast.NodeTest("name", name)

    def _parse_predicates(self) -> List[ast.Expr]:
        predicates: List[ast.Expr] = []
        token = self.token
        while token.kind == "symbol" and token.value == "[":
            self.advance()
            predicates.append(self.parse_expr())
            self.expect_symbol("]")
            token = self.token
        return predicates

    # -- primaries --------------------------------------------------------------------

    def _parse_primary(self) -> ast.Expr:
        token = self.token
        if token.kind == "var":
            self.advance()
            return ast.at(ast.VarRef(name=token.value), token)
        if token.kind == "string":
            self.advance()
            return ast.at(ast.Literal(value=token.value), token)
        if token.kind in ("integer", "decimal", "double"):
            self.advance()
            return ast.at(ast.Literal(value=parse_number(token.value)), token)
        if token.is_symbol("("):
            self.advance()
            if self.token.is_symbol(")"):
                self.advance()
                return ast.at(ast.EmptySequence(), token)
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        if token.is_symbol("."):
            self.advance()
            return ast.at(ast.ContextItem(), token)
        if token.is_symbol("<"):
            return self._direct_constructor()
        if token.kind == "name":
            return self._parse_named_primary()
        raise self.error(f"expected an expression, found {self._describe()}")

    def _parse_named_primary(self) -> ast.Expr:
        token = self.token
        name = token.value
        next_token = self._peek_next()
        # computed constructors: element foo {...}, attribute {$n} {...}, etc.
        if name in ("element", "attribute", "text", "comment", "document") and (
            next_token.is_symbol("{")
            or (name in ("element", "attribute") and next_token.kind == "name")
        ):
            return self._computed_constructor()
        if next_token.is_symbol("(") and name not in RESERVED_FUNCTION_NAMES:
            self.advance()
            self.expect_symbol("(")
            args: List[ast.Expr] = []
            if not self.token.is_symbol(")"):
                while True:
                    args.append(self.parse_expr_single())
                    if self.token.is_symbol(","):
                        self.advance()
                        continue
                    break
            self.expect_symbol(")")
            return ast.at(ast.FunctionCall(name=name, args=args), token)
        raise self.error(f"unexpected name {name!r} in expression position")

    def _computed_constructor(self) -> ast.Expr:
        token = self.advance()  # element | attribute | text | comment | document
        kind = token.value
        name = None
        name_expr = None
        if kind in ("element", "attribute"):
            if self.token.kind == "name":
                name = self.advance().value
            else:
                self.expect_symbol("{")
                name_expr = self.parse_expr()
                self.expect_symbol("}")
        self.expect_symbol("{")
        content = None
        if not self.token.is_symbol("}"):
            content = self.parse_expr()
        self.expect_symbol("}")
        if kind == "element":
            return ast.at(
                ast.ComputedElement(name_expr=name_expr, name=name, content=content),
                token,
            )
        if kind == "attribute":
            return ast.at(
                ast.ComputedAttribute(name_expr=name_expr, name=name, content=content),
                token,
            )
        if kind == "text":
            return ast.at(ast.ComputedText(content=content), token)
        if kind == "comment":
            return ast.at(ast.ComputedComment(content=content), token)
        return ast.at(ast.ComputedDocument(content=content), token)

    # -- direct constructors (raw XML-mode scanning) -------------------------------

    def _direct_constructor(self) -> ast.Expr:
        token = self.token  # the "<" symbol token
        lexer = self.lexer
        lexer.pos = token.pos  # rewind to the "<" and scan as XML
        if lexer.at("<!--"):
            lexer.take("<!--")
            end = lexer.text.find("-->", lexer.pos)
            if end < 0:
                raise lexer.error("unterminated XML comment in constructor")
            text = lexer.text[lexer.pos : end]
            lexer.pos = end + 3
            self.token = lexer.next_token()
            return ast.at(ast.DirectComment(text=text), token)
        element = self._direct_element()
        self.token = lexer.next_token()
        return ast.at(element, token)

    def _direct_element(self) -> ast.DirectElement:
        """Scan one direct element; the lexer cursor sits at its ``<``."""
        lexer = self.lexer
        line, column = lexer.location()
        lexer.take("<")
        name = lexer.scan_xml_name()
        element = ast.DirectElement(name=name, line=line, column=column)
        while True:
            lexer.skip_xml_space()
            if lexer.at("/>"):
                lexer.take("/>")
                return element
            if lexer.at(">"):
                lexer.take(">")
                break
            attr_name = lexer.scan_xml_name()
            lexer.skip_xml_space()
            lexer.take("=")
            lexer.skip_xml_space()
            element.attributes.append((attr_name, self._attribute_value()))
        element.content = self._element_content(name)
        return element

    def _attribute_value(self) -> List[object]:
        """Scan a quoted attribute value template: text and ``{expr}`` parts."""
        lexer = self.lexer
        quote = lexer.take_char()
        if quote not in "\"'":
            raise lexer.error("expected a quoted attribute value")
        parts: List[object] = []
        buffer: List[str] = []

        def flush() -> None:
            if buffer:
                parts.append("".join(buffer))
                buffer.clear()

        while True:
            char = lexer.peek_char()
            if char == "":
                raise lexer.error("unterminated attribute value")
            if char == quote:
                lexer.take_char()
                if lexer.peek_char() == quote:  # doubled quote escape
                    buffer.append(lexer.take_char())
                    continue
                flush()
                return parts
            if lexer.at("{{"):
                lexer.take("{{")
                buffer.append("{")
                continue
            if lexer.at("}}"):
                lexer.take("}}")
                buffer.append("}")
                continue
            if char == "{":
                flush()
                parts.append(self._enclosed_expr())
                continue
            if char == "&":
                buffer.append(lexer.scan_entity())
                continue
            buffer.append(lexer.take_char())

    def _element_content(self, element_name: str) -> List[object]:
        """Scan element content until the matching end tag."""
        lexer = self.lexer
        parts: List[object] = []
        buffer: List[str] = []
        buffer_has_entity = False

        def flush() -> None:
            nonlocal buffer_has_entity
            if buffer:
                text = "".join(buffer)
                # boundary-space strip: drop whitespace-only literal runs
                # unless they contain character references.
                if text.strip() or buffer_has_entity:
                    parts.append(ast.DirectText(text=text))
                buffer.clear()
            buffer_has_entity = False

        while True:
            if lexer.at("</"):
                flush()
                lexer.take("</")
                end_name = lexer.scan_xml_name()
                lexer.skip_xml_space()
                lexer.take(">")
                if end_name != element_name:
                    raise lexer.error(
                        f"mismatched tags: <{element_name}> closed by </{end_name}>"
                    )
                return parts
            char = lexer.peek_char()
            if char == "":
                raise lexer.error(f"unclosed element <{element_name}>")
            if lexer.at("<!--"):
                flush()
                line, column = lexer.location()
                lexer.take("<!--")
                end = lexer.text.find("-->", lexer.pos)
                if end < 0:
                    raise lexer.error("unterminated XML comment")
                parts.append(
                    ast.DirectComment(
                        text=lexer.text[lexer.pos : end], line=line, column=column
                    )
                )
                lexer.pos = end + 3
                continue
            if lexer.at("<?"):
                flush()
                lexer.take("<?")
                target = lexer.scan_xml_name()
                end = lexer.text.find("?>", lexer.pos)
                if end < 0:
                    raise lexer.error("unterminated processing instruction")
                parts.append(
                    ast.DirectPI(
                        target=target, text=lexer.text[lexer.pos : end].strip()
                    )
                )
                lexer.pos = end + 2
                continue
            if lexer.at("<![CDATA["):
                lexer.take("<![CDATA[")
                end = lexer.text.find("]]>", lexer.pos)
                if end < 0:
                    raise lexer.error("unterminated CDATA section")
                buffer.append(lexer.text[lexer.pos : end])
                buffer_has_entity = True  # CDATA whitespace is significant
                lexer.pos = end + 3
                continue
            if char == "<":
                flush()
                parts.append(self._direct_element())
                continue
            if lexer.at("{{"):
                lexer.take("{{")
                buffer.append("{")
                continue
            if lexer.at("}}"):
                lexer.take("}}")
                buffer.append("}")
                continue
            if char == "{":
                flush()
                parts.append(self._enclosed_expr())
                continue
            if char == "&":
                buffer.append(lexer.scan_entity())
                buffer_has_entity = True
                continue
            buffer.append(lexer.take_char())

    def _enclosed_expr(self) -> ast.Expr:
        """Parse ``{ Expr }`` from raw mode, returning to raw mode after."""
        lexer = self.lexer
        lexer.take("{")
        self.token = lexer.next_token()
        expr = self.parse_expr()
        if not self.token.is_symbol("}"):
            raise self.error(
                f"expected '}}' to close enclosed expression, found {self._describe()}"
            )
        # The lexer cursor now sits just past the '}'; raw scanning resumes.
        return expr
