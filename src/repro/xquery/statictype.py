"""A static checker for the XQuery subset.

The paper used XQuery "in the untyped mode, avoiding the type system
entirely" and found that adding annotations made types "metastatize".  This
module provides both experiences:

* :func:`check_module` — an untyped sanity pass (unknown functions,
  undefined variables, arity mismatches) that any engine must do;
* :func:`annotation_pressure` — a measurement of the metastasis: given a
  module where some functions are annotated, how many *other* functions
  would need annotations for the typed fragment to check cleanly (i.e. the
  transitive callers/callees of annotated functions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from . import ast
from .functions import lookup_builtin


@dataclass
class StaticIssue:
    """One problem found by the checker."""

    code: str
    message: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"[{self.code}] {self.message} (line {self.line}, column {self.column})"


def check_module(module: ast.Module) -> List[StaticIssue]:
    """Check name resolution and arities across the whole module."""
    checker = _Checker(module)
    issues: List[StaticIssue] = []
    global_names = {decl.name for decl in module.variables}
    for function in module.functions:
        scope = set(global_names)
        scope.update(param.name for param in function.params)
        issues.extend(checker.check_expr(function.body, scope))
    declared_so_far: Set[str] = set()
    for declaration in module.variables:
        if declaration.value is not None:
            issues.extend(checker.check_expr(declaration.value, set(declared_so_far)))
        declared_so_far.add(declaration.name)
    if module.body is not None:
        issues.extend(checker.check_expr(module.body, set(global_names)))
    return issues


class _Checker:
    def __init__(self, module: ast.Module):
        self.functions: Dict[Tuple[str, int], ast.FunctionDecl] = {}
        for declaration in module.functions:
            name = declaration.name
            if name.startswith("local:"):
                name = name[len("local:") :]
            self.functions[(name, declaration.arity)] = declaration

    def check_expr(self, expr, scope: Set[str]) -> List[StaticIssue]:
        issues: List[StaticIssue] = []
        self._walk(expr, scope, issues)
        return issues

    def _walk(self, expr, scope: Set[str], issues: List[StaticIssue]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.VarRef):
            if expr.name not in scope:
                issues.append(
                    StaticIssue(
                        "XPST0008",
                        f"undefined variable ${expr.name}",
                        expr.line,
                        expr.column,
                    )
                )
            return
        if isinstance(expr, ast.FunctionCall):
            self._check_call(expr, issues)
            for arg in expr.args:
                self._walk(arg, scope, issues)
            return
        if isinstance(expr, ast.FLWOR):
            inner = set(scope)
            for clause in expr.clauses:
                if isinstance(clause, ast.ForClause):
                    self._walk(clause.source, inner, issues)
                    inner.add(clause.var)
                    if clause.position_var:
                        inner.add(clause.position_var)
                elif isinstance(clause, ast.LetClause):
                    self._walk(clause.value, inner, issues)
                    inner.add(clause.var)
                elif isinstance(clause, ast.WhereClause):
                    self._walk(clause.condition, inner, issues)
                elif isinstance(clause, ast.OrderByClause):
                    for spec in clause.specs:
                        self._walk(spec.key, inner, issues)
            self._walk(expr.result, inner, issues)
            return
        if isinstance(expr, ast.Quantified):
            inner = set(scope)
            for var, source in expr.bindings:
                self._walk(source, inner, issues)
                inner.add(var)
            self._walk(expr.satisfies, inner, issues)
            return
        if isinstance(expr, ast.TryCatch):
            self._walk(expr.body, scope, issues)
            inner = set(scope)
            if expr.catch_var:
                inner.add(expr.catch_var)
            self._walk(expr.handler, inner, issues)
            return
        if isinstance(expr, ast.Typeswitch):
            self._walk(expr.operand, scope, issues)
            for case in expr.cases:
                inner = set(scope)
                if case.var:
                    inner.add(case.var)
                self._walk(case.result, inner, issues)
            inner = set(scope)
            if expr.default_var:
                inner.add(expr.default_var)
            self._walk(expr.default, inner, issues)
            return
        for child in ast.children_of(expr):
            self._walk(child, scope, issues)

    def _check_call(self, expr: ast.FunctionCall, issues: List[StaticIssue]) -> None:
        name = expr.name
        if name.startswith("fn:"):
            name = name[3:]
        if name.startswith("xs:"):
            if len(expr.args) != 1:
                issues.append(
                    StaticIssue(
                        "XPST0017",
                        f"{name} expects exactly one argument",
                        expr.line,
                        expr.column,
                    )
                )
            return
        local = name[len("local:") :] if name.startswith("local:") else name
        if (local, len(expr.args)) in self.functions:
            return
        if lookup_builtin(name, len(expr.args)) is not None:
            return
        issues.append(
            StaticIssue(
                "XPST0017",
                f"unknown function {expr.name}() with {len(expr.args)} argument(s)",
                expr.line,
                expr.column,
            )
        )


def call_graph(module: ast.Module) -> Dict[str, Set[str]]:
    """User-function call graph: declared name → called user-function names."""
    declared = {f.name.split(":")[-1] for f in module.functions}
    graph: Dict[str, Set[str]] = {name: set() for name in declared}
    for function in module.functions:
        callee_names: Set[str] = set()

        def visit(node) -> None:
            if isinstance(node, ast.FunctionCall):
                local = node.name.split(":")[-1]
                if local in declared:
                    callee_names.add(local)

        ast.walk(function.body, visit)
        graph[function.name.split(":")[-1]] = callee_names
    return graph


def annotation_pressure(module: ast.Module) -> Dict[str, object]:
    """Measure the paper's type "metastasis".

    Given which functions already carry type annotations, compute the set
    of functions transitively connected to them in the call graph — the
    functions the project "had to spend a couple of days" annotating.
    Returns counts and the ratio of dragged-in functions to annotated ones.
    """
    annotated = {
        f.name.split(":")[-1]
        for f in module.functions
        if f.return_type is not None or any(p.declared_type for p in f.params)
    }
    graph = call_graph(module)
    undirected: Dict[str, Set[str]] = {name: set() for name in graph}
    for caller, callees in graph.items():
        for callee in callees:
            undirected[caller].add(callee)
            undirected.setdefault(callee, set()).add(caller)
    reached: Set[str] = set()
    frontier = list(annotated)
    while frontier:
        name = frontier.pop()
        if name in reached:
            continue
        reached.add(name)
        frontier.extend(undirected.get(name, ()))
    dragged_in = reached - annotated
    return {
        "functions": len(graph),
        "annotated": len(annotated),
        "dragged_in": len(dragged_in),
        "touched": len(reached),
        "pressure": (len(reached) / len(annotated)) if annotated else 0.0,
    }
