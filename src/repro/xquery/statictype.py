"""Deprecated shim — the checker moved to :mod:`repro.xquery.analysis.types`.

This module used to hold the thin untyped-mode checker (scope and arity
resolution, the paper's "typed mode not worth the trouble" counterpoint).
PR 7 absorbed it into the whole-program type inference pass, which does
the same scope walk once and infers item types and occurrences along the
way.  The public names are re-exported here so existing imports keep
working; new code should import from ``repro.xquery.analysis.types``.
"""

from __future__ import annotations

from .analysis.types import (  # noqa: F401
    StaticIssue,
    annotation_pressure,
    call_graph,
    check_module,
)

__all__ = ["StaticIssue", "annotation_pressure", "call_graph", "check_module"]
