"""Token definitions for the XQuery lexer."""

from __future__ import annotations

from typing import NamedTuple


class Token(NamedTuple):
    """One lexical token.

    ``kind`` ∈ {``name``, ``var``, ``integer``, ``decimal``, ``double``,
    ``string``, ``symbol``, ``eof``}.  ``value`` holds the name text, the
    variable name (without ``$``), the literal value as text, or the symbol.
    ``pos`` is the character offset of the token start; ``line``/``column``
    are 1-based for error messages.
    """

    kind: str
    value: str
    pos: int
    line: int
    column: int

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "symbol" and self.value in symbols

    def is_name(self, *names: str) -> bool:
        return self.kind == "name" and self.value in names


#: Multi-character symbols, longest first so the lexer scans greedily.
MULTI_SYMBOLS = [
    "<=",
    ">=",
    "!=",
    "<<",
    ">>",
    "//",
    ":=",
    "..",
    "::",
    "{{",
    "}}",
]

SINGLE_SYMBOLS = set("()[]{},;/@.*+-=<>|?$")

#: Names that act as binary operators when found in operator position.
OPERATOR_NAMES = {
    "and",
    "or",
    "div",
    "idiv",
    "mod",
    "to",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "is",
    "union",
    "intersect",
    "except",
    "instance",
    "cast",
    "castable",
    "treat",
}
