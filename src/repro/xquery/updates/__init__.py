"""A FLUX-style update sublanguage over AWB models.

The paper's serving story (PRs 3-8) made *reads* fast: plan caches, an
incrementally maintained XML export, a result cache keyed by export
generation.  Writes stayed primitive — any mutation bumps the model
generation and silently orphans every warm cache entry, so the 0.01x
warm path collapses to the cold path under even a trickle of writes.

Cheney's FLUX (PAPERS.md) shows the way out: make updates a *language*,
not ad-hoc property pokes.  A typed update program has a statically
analyzable **footprint** — which types it touches, which properties it
writes, which ids it inserts or deletes — and a footprint can be
intersected with each cached query's **dependency set** to decide, per
entry, whether the write could possibly have changed that answer.
Entries whose footprint is disjoint survive the write; the rest are
patched or selectively invalidated.  See
:mod:`repro.querycalc.service.deps` for the read side of the bargain.

The language itself borrows the XQuery Update Facility's spellings
(``insert node``, ``delete node``, ``replace value of``, ``rename``)
applied to AWB's universe of nodes, relations, and property bags::

    insert node Program id P9 with (label "LedgerD", version "2.0");
    insert relation uses from N3 to P9 with (since 2004);
    replace value of N3.birthYear with 1971;
    delete property version of P9;
    rename node N3 as Superuser;
    delete relation R12;
    delete node P9;

Execution goes through the :class:`~repro.awb.model.Model` API, so the
:class:`~repro.awb.xml_io.IncrementalExporter` sees the same structured
mutation events it always has — the update layer adds meaning (the
footprint), it never bypasses the dirty tracking.
"""

from .ast import (
    DeleteNode,
    DeleteProperty,
    DeleteRelation,
    InsertNode,
    InsertRelation,
    RenameNode,
    RenameRelation,
    ReplaceValue,
    UpdateScript,
)
from .apply import UpdateError, UpdateResult, apply_script
from .check import UpdateCheckError, check_script
from .footprint import Footprint
from .parser import UpdateParseError, parse_update_script, render_script

__all__ = [
    "DeleteNode",
    "DeleteProperty",
    "DeleteRelation",
    "Footprint",
    "InsertNode",
    "InsertRelation",
    "RenameNode",
    "RenameRelation",
    "ReplaceValue",
    "UpdateCheckError",
    "UpdateError",
    "UpdateParseError",
    "UpdateResult",
    "UpdateScript",
    "apply_script",
    "check_script",
    "parse_update_script",
    "render_script",
]
