"""Execute update scripts against a live model, recording the footprint.

Execution goes entity by entity through the :class:`~repro.awb.model.Model`
API (``create_node``/``connect``/``remove_node``/``retype_node``/property
bag writes), so the :class:`~repro.awb.xml_io.IncrementalExporter` and any
other listener see the usual structured mutation events.  While executing,
the applier records the exact :class:`~repro.xquery.updates.footprint.Footprint`
— types are read off the live entities, cascade-deleted relations are
enumerated before the delete lands — and resolves auto-assigned ids into
the returned script, which renders to the canonical text the serving tier
broadcasts to replicas.

Statements that provably change nothing (replacing a value with itself,
deleting an absent property, renaming to the current type) are suppressed
before touching the model, so they contribute nothing to the footprint
and leave ``model.generation`` unmoved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Union

from ...awb.model import Model
from ..analysis.diagnostics import Diagnostic
from ..errors import XQueryError
from .ast import (
    DeleteNode,
    DeleteProperty,
    DeleteRelation,
    InsertNode,
    InsertRelation,
    RenameNode,
    RenameRelation,
    ReplaceValue,
    Statement,
    UpdateScript,
)
from .check import UpdateCheckError, check_errors, check_script
from .footprint import Footprint
from .parser import parse_update_script, render_script


class UpdateError(XQueryError):
    """A statement could not be applied (missing target, duplicate id)."""

    default_code = "UPDY0001"


@dataclass
class UpdateResult:
    """What applying a script did.

    ``script`` is the *resolved* script: auto-assigned ids filled in, so
    replaying its canonical text on a faithful replica reproduces the
    primary's mutations byte for byte regardless of the replica's own id
    counters.  ``applied`` counts statements that actually mutated the
    model (no-ops are excluded).
    """

    script: UpdateScript
    footprint: Footprint
    diagnostics: List[Diagnostic] = field(default_factory=list)
    applied: int = 0

    @property
    def text(self) -> str:
        """Canonical text of the resolved script (the delta broadcast)."""
        return render_script(self.script)


def apply_script(
    script: Union[str, UpdateScript],
    model: Model,
    check: str = "error",
) -> UpdateResult:
    """Apply *script* (text or parsed) to *model*.

    ``check="error"`` (the default) runs :func:`check_script` against the
    live model first and raises :class:`UpdateCheckError` — before any
    statement executes — if an error-severity diagnostic fires; warnings
    and infos ride along on the result.  ``check="off"`` skips straight
    to execution (replica replay uses this: the primary already checked),
    where missing targets raise :class:`UpdateError` mid-script.
    """
    if isinstance(script, str):
        script = parse_update_script(script)
    diagnostics: List[Diagnostic] = []
    if check != "off":
        diagnostics = check_script(script, model.metamodel, model)
        errors = check_errors(diagnostics)
        if errors:
            raise UpdateCheckError(errors)
    applier = _Applier(model)
    for statement in script:
        applier.apply(statement)
    return UpdateResult(
        script=UpdateScript(applier.resolved),
        footprint=applier.footprint,
        diagnostics=diagnostics,
        applied=applier.applied,
    )


class _Applier:
    def __init__(self, model: Model):
        self.model = model
        self.footprint = Footprint()
        self.resolved: List[Statement] = []
        self.applied = 0

    def _node(self, node_id: str, statement: Statement):
        node = self.model.nodes.get(node_id)
        if node is None:
            raise UpdateError(
                f"node {node_id!r} is not in the model",
                line=statement.line,
                column=statement.column,
            )
        return node

    def _relation(self, relation_id: str, statement: Statement):
        relation = self.model.relations.get(relation_id)
        if relation is None:
            raise UpdateError(
                f"relation {relation_id!r} is not in the model",
                line=statement.line,
                column=statement.column,
            )
        return relation

    def _target(self, target_id: str, statement: Statement):
        """A property statement's target: relation when the id names one,
        else a node (ids are unique across both namespaces in practice)."""
        relation = self.model.relations.get(target_id)
        if relation is not None:
            return relation
        return self._node(target_id, statement)

    def apply(self, statement: Statement) -> None:
        handler = {
            InsertNode: self._insert_node,
            InsertRelation: self._insert_relation,
            DeleteNode: self._delete_node,
            DeleteRelation: self._delete_relation,
            DeleteProperty: self._delete_property,
            ReplaceValue: self._replace_value,
            RenameNode: self._rename_node,
            RenameRelation: self._rename_relation,
        }.get(type(statement))
        if handler is None:
            raise UpdateError(f"unknown statement {type(statement).__name__}")
        handler(statement)

    # -- inserts -----------------------------------------------------------

    def _insert_node(self, statement: InsertNode) -> None:
        if statement.node_id is not None and statement.node_id in self.model.nodes:
            raise UpdateError(
                f"duplicate node id {statement.node_id!r}",
                line=statement.line,
                column=statement.column,
            )
        node = self.model.create_node(statement.type_name, node_id=statement.node_id)
        for name, value in statement.properties:
            # no prop-write footprint: a fresh node's properties are part
            # of the insert, and the membership rule covers the insert.
            node.set(name, value)
        self.footprint.inserted_nodes[node.id] = node.type_name
        self.footprint.touched_node_ids.add(node.id)
        self.resolved.append(replace(statement, node_id=node.id))
        self.applied += 1

    def _insert_relation(self, statement: InsertRelation) -> None:
        if (
            statement.relation_id is not None
            and statement.relation_id in self.model.relations
        ):
            raise UpdateError(
                f"duplicate relation id {statement.relation_id!r}",
                line=statement.line,
                column=statement.column,
            )
        source = self._node(statement.source_id, statement)
        target = self._node(statement.target_id, statement)
        relation = self.model.connect(
            source,
            statement.relation_name,
            target,
            relation_id=statement.relation_id,
        )
        for name, value in statement.properties:
            relation.set(name, value)
            self.footprint.relation_prop_writes.add(
                (relation.relation_name, name)
            )
        self.footprint.relation_names.add(relation.relation_name)
        self.resolved.append(replace(statement, relation_id=relation.id))
        self.applied += 1

    # -- deletes -----------------------------------------------------------

    def _delete_node(self, statement: DeleteNode) -> None:
        node = self._node(statement.node_id, statement)
        # cascades: every relation touching the node dies with it, and
        # queries following those relation types must see the change.
        for relation in self.model.outgoing(node) + self.model.incoming(node):
            self.footprint.relation_names.add(relation.relation_name)
        if node.id in self.footprint.inserted_nodes:
            # inserted and deleted within one script: no generation ever
            # observes the node, so its membership never changed.
            del self.footprint.inserted_nodes[node.id]
        else:
            self.footprint.deleted_nodes[node.id] = node.type_name
        self.footprint.touched_node_ids.add(node.id)
        self.model.remove_node(node)
        self.resolved.append(statement)
        self.applied += 1

    def _delete_relation(self, statement: DeleteRelation) -> None:
        relation = self._relation(statement.relation_id, statement)
        self.footprint.relation_names.add(relation.relation_name)
        self.model.remove_relation(relation)
        self.resolved.append(statement)
        self.applied += 1

    def _delete_property(self, statement: DeleteProperty) -> None:
        target = self._target(statement.target_id, statement)
        if statement.name not in target.properties:
            self.resolved.append(statement)  # no-op; replays as a no-op too
            return
        del target.properties[statement.name]
        self._record_prop_write(target, statement.name)
        self.resolved.append(statement)
        self.applied += 1

    # -- value and type edits ---------------------------------------------

    def _replace_value(self, statement: ReplaceValue) -> None:
        target = self._target(statement.target_id, statement)
        if statement.name in target.properties:
            current = target.properties[statement.name]
            if type(current) is type(statement.value) and current == statement.value:
                self.resolved.append(statement)  # value-unchanged no-op
                return
        target.properties[statement.name] = statement.value
        self._record_prop_write(target, statement.name)
        self.resolved.append(statement)
        self.applied += 1

    def _record_prop_write(self, target, name: str) -> None:
        if hasattr(target, "relation_name"):
            self.footprint.relation_prop_writes.add((target.relation_name, name))
        elif target.id in self.footprint.inserted_nodes:
            pass  # writes to a script-fresh node ride on its insert
        else:
            self.footprint.node_prop_writes.add((target.type_name, name))
            self.footprint.touched_node_ids.add(target.id)

    def _rename_node(self, statement: RenameNode) -> None:
        node = self._node(statement.node_id, statement)
        if node.type_name == statement.new_type:
            self.resolved.append(statement)
            return
        old_type = node.type_name
        self.model.retype_node(node, statement.new_type)
        if node.id in self.footprint.inserted_nodes:
            # a script-fresh node was only ever observable as its final
            # type: fold the rename into the insert.
            self.footprint.inserted_nodes[node.id] = statement.new_type
        else:
            self.footprint.linked_types.update((old_type, statement.new_type))
        self.footprint.touched_node_ids.add(node.id)
        self.resolved.append(statement)
        self.applied += 1

    def _rename_relation(self, statement: RenameRelation) -> None:
        relation = self._relation(statement.relation_id, statement)
        if relation.relation_name == statement.new_type:
            self.resolved.append(statement)
            return
        old_name = relation.relation_name
        self.model.retype_relation(relation, statement.new_type)
        self.footprint.relation_names.update((old_name, statement.new_type))
        self.resolved.append(statement)
        self.applied += 1
