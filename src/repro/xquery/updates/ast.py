"""AST of the update sublanguage.

Statements are deliberately first-order: every target is a literal id,
every value a literal scalar.  That is what makes the footprint *exact*
rather than estimated — FLUX's insight is that an update language you
can type is an update language whose effects you can name statically.
Property values are plain Python scalars (``str``/``int``/``float``/
``bool``), matching what :class:`~repro.awb.model.PropertyBag` stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: a (property name, scalar value) pair as written in a ``with (...)`` clause.
Property = Tuple[str, object]


@dataclass
class Statement:
    """Base class carrying the source location for diagnostics."""

    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass
class InsertNode(Statement):
    """``insert node <type> [id <id>] [with (<props>)]``.

    Without an explicit id the executor asks the model for one and
    records it in the *resolved* script, so replicas replaying the
    broadcast create byte-identical nodes.
    """

    type_name: str = ""
    node_id: Optional[str] = None
    properties: List[Property] = field(default_factory=list)


@dataclass
class InsertRelation(Statement):
    """``insert relation <type> [id <id>] from <id> to <id> [with (...)]``."""

    relation_name: str = ""
    source_id: str = ""
    target_id: str = ""
    relation_id: Optional[str] = None
    properties: List[Property] = field(default_factory=list)


@dataclass
class DeleteNode(Statement):
    """``delete node <id>`` — cascades to every touching relation."""

    node_id: str = ""


@dataclass
class DeleteRelation(Statement):
    """``delete relation <id>``."""

    relation_id: str = ""


@dataclass
class DeleteProperty(Statement):
    """``delete property <name> of <id>`` — node or relation target."""

    name: str = ""
    target_id: str = ""


@dataclass
class ReplaceValue(Statement):
    """``replace value of <id>.<name> with <literal>``."""

    target_id: str = ""
    name: str = ""
    value: object = None


@dataclass
class RenameNode(Statement):
    """``rename node <id> as <type>`` — retype in place.

    XQuery Update's ``rename`` changes an element's name; over the AWB
    export every node element is literally named ``node``, so the
    meaningful analogue is the ``@type`` attribute — the node's type.
    """

    node_id: str = ""
    new_type: str = ""


@dataclass
class RenameRelation(Statement):
    """``rename relation <id> as <type>``."""

    relation_id: str = ""
    new_type: str = ""


@dataclass
class UpdateScript:
    """A parsed update program: an ordered list of statements."""

    statements: List[Statement] = field(default_factory=list)

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)
