"""Static checking of update scripts — the PR 7 lint pass, pointed at writes.

The rules (UPD001–UPD009) mirror the model's own advisory philosophy:
unknown types and undeclared properties *warn* (AWB allows user
inventions), but statements that can be proven wrong before execution —
ill-typed values, references to entities that do not exist or that the
script itself already deleted — are errors.  Checking happens before the
first statement executes, so a rejected script leaves the model (and
its generation counter) untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ...awb.metamodel import Metamodel, PropertyDecl
from ...awb.model import Model
from ..analysis.diagnostics import Diagnostic, severity_at_least, sort_diagnostics
from ..errors import XQueryError
from .ast import (
    DeleteNode,
    DeleteProperty,
    DeleteRelation,
    InsertNode,
    InsertRelation,
    RenameNode,
    RenameRelation,
    ReplaceValue,
    Statement,
    UpdateScript,
)

#: declared property type → Python types an update literal may carry.
#: Exact on purpose: an ``integer`` literal stored into a ``float``-declared
#: property would export as ``5`` and re-import as ``5.0``, silently
#: diverging replicas from the primary (the fuzzer's ``declared-type-store``
#: allowlist documents this hazard for raw API writes; the update language
#: refuses to create new instances of it).
_LITERAL_TYPES = {
    "string": (str,),
    "html": (str,),
    "integer": (int,),
    "boolean": (bool,),
    "float": (float,),
}


class UpdateCheckError(XQueryError):
    """The script failed static checking; no statement was applied."""

    default_code = "UPTY0001"

    def __init__(self, diagnostics: List[Diagnostic]):
        self.diagnostics = diagnostics
        first = diagnostics[0]
        super().__init__(
            f"{len(diagnostics)} update check error(s); first: {first.message}",
            line=first.line,
            column=first.column,
        )


def _diag(
    code: str,
    severity: str,
    message: str,
    statement: Statement,
    rule: str,
    hint: str = "",
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        line=statement.line,
        column=statement.column,
        rule=rule,
        source="<update>",
        hint=hint,
    )


def _relation_property_decl(
    metamodel: Metamodel, relation_name: str, prop: str
) -> Optional[PropertyDecl]:
    relation_type = metamodel.relation_type(relation_name)
    if relation_type is None:
        return None
    for ancestor in relation_type.ancestors():
        for declaration in ancestor.properties:
            if declaration.name == prop:
                return declaration
    return None


class _Checker:
    """Walks the script front to back, simulating id liveness.

    ``node_types``/``relation_types`` track every id the checker knows
    about (seeded from the live model when given) so later statements
    can be checked against the ids earlier statements created or
    deleted.  Without a model, existence checks degrade gracefully:
    only script-local knowledge (created/deleted ids) is enforced.
    """

    def __init__(self, metamodel: Metamodel, model: Optional[Model]):
        self.metamodel = metamodel
        self.model = model
        self.diagnostics: List[Diagnostic] = []
        self.node_types: Dict[str, str] = (
            {node.id: node.type_name for node in model.nodes.values()}
            if model is not None
            else {}
        )
        self.relation_types: Dict[str, str] = (
            {rel.id: rel.relation_name for rel in model.relations.values()}
            if model is not None
            else {}
        )
        self.deleted: Set[str] = set()

    # -- shared helpers ----------------------------------------------------

    def _check_node_ref(self, node_id: str, statement: Statement) -> Optional[str]:
        """Returns the node's type name when known, reporting UPD006/008."""
        if node_id in self.deleted:
            self.diagnostics.append(
                _diag(
                    "UPD008",
                    "error",
                    f"node {node_id!r} was deleted earlier in this script",
                    statement,
                    rule="write-after-delete",
                )
            )
            return None
        if node_id in self.node_types:
            return self.node_types[node_id]
        if self.model is not None:
            self.diagnostics.append(
                _diag(
                    "UPD006",
                    "error",
                    f"node {node_id!r} is not in the model",
                    statement,
                    rule="unknown-target",
                )
            )
        return None

    def _check_relation_ref(
        self, relation_id: str, statement: Statement
    ) -> Optional[str]:
        if relation_id in self.deleted:
            self.diagnostics.append(
                _diag(
                    "UPD008",
                    "error",
                    f"relation {relation_id!r} was deleted earlier in this script",
                    statement,
                    rule="write-after-delete",
                )
            )
            return None
        if relation_id in self.relation_types:
            return self.relation_types[relation_id]
        if self.model is not None:
            self.diagnostics.append(
                _diag(
                    "UPD006",
                    "error",
                    f"relation {relation_id!r} is not in the model",
                    statement,
                    rule="unknown-target",
                )
            )
        return None

    def _check_property(
        self,
        declaration: Optional[PropertyDecl],
        owner_desc: str,
        name: str,
        value: object,
        statement: Statement,
        declared_owner: bool,
    ) -> None:
        if declaration is None:
            if declared_owner:
                self.diagnostics.append(
                    _diag(
                        "UPD004",
                        "info",
                        f"property {name!r} is not declared on {owner_desc}"
                        " (ad-hoc properties are allowed)",
                        statement,
                        rule="undeclared-property",
                    )
                )
            return
        allowed = _LITERAL_TYPES[declaration.type]
        # bool is an int subclass; keep boolean literals out of integers.
        if not isinstance(value, allowed) or (
            declaration.type == "integer" and isinstance(value, bool)
        ):
            self.diagnostics.append(
                _diag(
                    "UPD003",
                    "error",
                    f"property {name!r} of {owner_desc} is declared "
                    f"{declaration.type!r} but the value is "
                    f"{type(value).__name__} {value!r}",
                    statement,
                    rule="ill-typed-property-value",
                    hint=f"write a {declaration.type} literal",
                )
            )

    # -- per-statement rules -----------------------------------------------

    def check(self, statement: Statement) -> None:
        if isinstance(statement, InsertNode):
            self._insert_node(statement)
        elif isinstance(statement, InsertRelation):
            self._insert_relation(statement)
        elif isinstance(statement, DeleteNode):
            if self._check_node_ref(statement.node_id, statement) is not None:
                self.node_types.pop(statement.node_id, None)
                self.deleted.add(statement.node_id)
                if self.model is not None:
                    # cascade: relations touching the node die with it.
                    node = self.model.nodes.get(statement.node_id)
                    if node is not None:
                        for relation in self.model.outgoing(
                            node
                        ) + self.model.incoming(node):
                            self.relation_types.pop(relation.id, None)
                            self.deleted.add(relation.id)
        elif isinstance(statement, DeleteRelation):
            if self._check_relation_ref(statement.relation_id, statement) is not None:
                self.relation_types.pop(statement.relation_id, None)
                self.deleted.add(statement.relation_id)
        elif isinstance(statement, DeleteProperty):
            self._property_target(statement.target_id, statement)
        elif isinstance(statement, ReplaceValue):
            self._replace(statement)
        elif isinstance(statement, RenameNode):
            if self._check_node_ref(statement.node_id, statement) is not None:
                self.node_types[statement.node_id] = statement.new_type
            if self.metamodel.node_type(statement.new_type) is None:
                self.diagnostics.append(
                    _diag(
                        "UPD001",
                        "warning",
                        f"node type {statement.new_type!r} is not in the metamodel",
                        statement,
                        rule="unknown-node-type",
                    )
                )
        elif isinstance(statement, RenameRelation):
            if (
                self._check_relation_ref(statement.relation_id, statement)
                is not None
            ):
                self.relation_types[statement.relation_id] = statement.new_type
            if self.metamodel.relation_type(statement.new_type) is None:
                self.diagnostics.append(
                    _diag(
                        "UPD002",
                        "warning",
                        f"relation type {statement.new_type!r} is not in the "
                        "metamodel",
                        statement,
                        rule="unknown-relation-type",
                    )
                )

    def _insert_node(self, statement: InsertNode) -> None:
        node_type = self.metamodel.node_type(statement.type_name)
        if node_type is None:
            self.diagnostics.append(
                _diag(
                    "UPD001",
                    "warning",
                    f"node type {statement.type_name!r} is not in the metamodel",
                    statement,
                    rule="unknown-node-type",
                )
            )
        if statement.node_id is not None:
            if (
                statement.node_id in self.node_types
                or statement.node_id in self.relation_types
            ):
                self.diagnostics.append(
                    _diag(
                        "UPD007",
                        "error",
                        f"id {statement.node_id!r} already exists",
                        statement,
                        rule="duplicate-id",
                    )
                )
                return
            self.deleted.discard(statement.node_id)
            self.node_types[statement.node_id] = statement.type_name
        owner = f"node type {statement.type_name!r}"
        for name, value in statement.properties:
            declaration = node_type.property_decl(name) if node_type else None
            self._check_property(
                declaration, owner, name, value, statement, node_type is not None
            )

    def _insert_relation(self, statement: InsertRelation) -> None:
        relation_type = self.metamodel.relation_type(statement.relation_name)
        if relation_type is None:
            self.diagnostics.append(
                _diag(
                    "UPD002",
                    "warning",
                    f"relation type {statement.relation_name!r} is not in the "
                    "metamodel",
                    statement,
                    rule="unknown-relation-type",
                )
            )
        source_type = self._check_node_ref(statement.source_id, statement)
        target_type = self._check_node_ref(statement.target_id, statement)
        if (
            relation_type is not None
            and source_type is not None
            and target_type is not None
            and not self.metamodel.endpoint_allowed(
                statement.relation_name, source_type, target_type
            )
        ):
            self.diagnostics.append(
                _diag(
                    "UPD005",
                    "warning",
                    f"{statement.relation_name!r} between {source_type} and "
                    f"{target_type} is not what the metamodel intends",
                    statement,
                    rule="advisory-endpoint-violation",
                )
            )
        if statement.relation_id is not None:
            if (
                statement.relation_id in self.relation_types
                or statement.relation_id in self.node_types
            ):
                self.diagnostics.append(
                    _diag(
                        "UPD007",
                        "error",
                        f"id {statement.relation_id!r} already exists",
                        statement,
                        rule="duplicate-id",
                    )
                )
                return
            self.deleted.discard(statement.relation_id)
            self.relation_types[statement.relation_id] = statement.relation_name
        owner = f"relation type {statement.relation_name!r}"
        for name, value in statement.properties:
            declaration = _relation_property_decl(
                self.metamodel, statement.relation_name, name
            )
            self._check_property(
                declaration, owner, name, value, statement, relation_type is not None
            )

    def _property_target(self, target_id: str, statement: Statement):
        """Resolve a property statement's target: relation ids are known
        exactly; anything else is treated as (and checked as) a node."""
        if target_id in self.deleted:
            self.diagnostics.append(
                _diag(
                    "UPD008",
                    "error",
                    f"{target_id!r} was deleted earlier in this script",
                    statement,
                    rule="write-after-delete",
                )
            )
            return (None, None)
        if target_id in self.relation_types:
            return ("relation", self.relation_types[target_id])
        return ("node", self._check_node_ref(target_id, statement))

    def _replace(self, statement: ReplaceValue) -> None:
        kind, type_name = self._property_target(statement.target_id, statement)
        if type_name is None:
            return
        if kind == "node":
            node_type = self.metamodel.node_type(type_name)
            declaration = (
                node_type.property_decl(statement.name) if node_type else None
            )
            declared_owner = node_type is not None
            owner = f"node type {type_name!r}"
        else:
            declaration = _relation_property_decl(
                self.metamodel, type_name, statement.name
            )
            declared_owner = self.metamodel.relation_type(type_name) is not None
            owner = f"relation type {type_name!r}"
        self._check_property(
            declaration,
            owner,
            statement.name,
            statement.value,
            statement,
            declared_owner,
        )
        if self.model is not None and kind == "node":
            node = self.model.nodes.get(statement.target_id)
            if node is not None and statement.name in node.properties:
                current = node.properties[statement.name]
                if type(current) is type(statement.value) and current == statement.value:
                    self.diagnostics.append(
                        _diag(
                            "UPD009",
                            "info",
                            f"replacing {statement.target_id}.{statement.name} "
                            f"with its current value {statement.value!r} is a no-op",
                            statement,
                            rule="no-op-replace",
                        )
                    )


def check_script(
    script: UpdateScript,
    metamodel: Metamodel,
    model: Optional[Model] = None,
) -> List[Diagnostic]:
    """Statically check *script*, optionally against a live *model*.

    With a model, id existence (UPD006), duplicate ids (UPD007), and
    no-op replaces (UPD009) are checked exactly; without one, only
    metamodel conformance and script-local liveness are enforced.
    """
    checker = _Checker(metamodel, model)
    for statement in script:
        checker.check(statement)
    return sort_diagnostics(checker.diagnostics)


def check_errors(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Just the ``error``-severity findings."""
    return [d for d in diagnostics if severity_at_least(d, "error")]
