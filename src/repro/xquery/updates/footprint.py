"""The footprint of an update: exactly which reads it could perturb.

FLUX's central observation is that a *typed* update language admits
static effect analysis.  Here the analysis is even better than static —
:func:`~repro.xquery.updates.apply.apply_script` records the footprint
while executing, so types of renamed nodes and cascade-deleted relations
are exact, not estimated.  The footprint is intersected with each cached
query's :class:`~repro.querycalc.service.deps.DependencySet` to decide,
per entry, whether a write could possibly have changed that answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple


@dataclass
class Footprint:
    """What one applied update script touched, named exactly.

    ``inserted_nodes``/``deleted_nodes`` map node id → concrete type name
    (the type at insertion/deletion time).  ``linked_types`` holds the
    old *and* new types of renamed nodes — a rename changes membership
    for any query whose pipeline can pass through either type.
    ``relation_names`` holds every concrete relation type inserted,
    deleted (including cascades from ``delete node``), or renamed
    (old and new names).  Property writes are ``(concrete type, property
    name)`` pairs, split by target kind because no query in the calculus
    reads relation properties.  ``touched_node_ids`` names every node id
    the script referenced, for id-rooted queries.
    """

    inserted_nodes: Dict[str, str] = field(default_factory=dict)
    deleted_nodes: Dict[str, str] = field(default_factory=dict)
    linked_types: Set[str] = field(default_factory=set)
    relation_names: Set[str] = field(default_factory=set)
    node_prop_writes: Set[Tuple[str, str]] = field(default_factory=set)
    relation_prop_writes: Set[Tuple[str, str]] = field(default_factory=set)
    touched_node_ids: Set[str] = field(default_factory=set)

    def member_types(self) -> FrozenSet[str]:
        """Concrete types whose *membership* (the set of nodes of that
        type) changed: the types of inserted and deleted nodes."""
        return frozenset(self.inserted_nodes.values()) | frozenset(
            self.deleted_nodes.values()
        )

    def is_empty(self) -> bool:
        """True when the script changed nothing observable (every
        statement was suppressed as a no-op)."""
        return not (
            self.inserted_nodes
            or self.deleted_nodes
            or self.linked_types
            or self.relation_names
            or self.node_prop_writes
            or self.relation_prop_writes
            or self.touched_node_ids
        )

    def merge(self, other: "Footprint") -> None:
        """Fold *other* into this footprint (script concatenation)."""
        self.inserted_nodes.update(other.inserted_nodes)
        self.deleted_nodes.update(other.deleted_nodes)
        self.linked_types |= other.linked_types
        self.relation_names |= other.relation_names
        self.node_prop_writes |= other.node_prop_writes
        self.relation_prop_writes |= other.relation_prop_writes
        self.touched_node_ids |= other.touched_node_ids

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary (for ``explain``/metrics surfaces)."""
        return {
            "inserted_nodes": dict(self.inserted_nodes),
            "deleted_nodes": dict(self.deleted_nodes),
            "linked_types": sorted(self.linked_types),
            "relation_names": sorted(self.relation_names),
            "node_prop_writes": sorted(
                f"{type_name}.{prop}" for type_name, prop in self.node_prop_writes
            ),
            "relation_prop_writes": sorted(
                f"{type_name}.{prop}"
                for type_name, prop in self.relation_prop_writes
            ),
            "touched_node_ids": sorted(self.touched_node_ids),
        }
