"""Tokenizer, recursive-descent parser, and canonical renderer.

The grammar is regular enough to read aloud::

    script    := (statement ';')* [statement [';']]
    statement := 'insert' 'node' name [idclause] [props]
               | 'insert' 'relation' name [idclause] 'from' ref 'to' ref [props]
               | 'delete' 'node' ref
               | 'delete' 'relation' ref
               | 'delete' 'property' name 'of' ref
               | 'replace' 'value' 'of' ref '.' name 'with' literal
               | 'rename' ('node' | 'relation') ref 'as' name
    idclause  := 'id' ref
    props     := 'with' '(' [name literal (',' name literal)*] ')'
    literal   := STRING | NUMBER | 'true' | 'false'

Names and refs are bare words (``N3``, ``Superuser``) or quoted strings
(``"needs spaces"``); string literals support ``\\"`` and ``\\\\`` escapes.
:func:`render_script` emits canonical text that re-parses to an equal
AST — the serving tier broadcasts *resolved* scripts (auto-assigned ids
filled in) in exactly this form.

Errors carry line/column, per the repo's no-``Index out of bounds`` rule.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import XQueryError
from .ast import (
    DeleteNode,
    DeleteProperty,
    DeleteRelation,
    InsertNode,
    InsertRelation,
    Property,
    RenameNode,
    RenameRelation,
    ReplaceValue,
    Statement,
    UpdateScript,
)


class UpdateParseError(XQueryError):
    """The update script is not well-formed."""

    default_code = "UPST0001"

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\(:.*?:\))
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_-]*)
  | (?P<punct>[;(),.])
    """,
    re.VERBOSE | re.DOTALL,
)

#: statement-introducing and clause keywords (matched case-sensitively,
#: lowercase, like XQuery's).
KEYWORDS = frozenset(
    "insert delete replace rename node relation property value of id from to with as true false".split()
)


class Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind  # "string" | "number" | "name" | "punct" | "eof"
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} {self.text!r} @{self.line}:{self.column}>"


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    line, column, pos = 1, 1, 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise UpdateParseError(
                f"unexpected character {text[pos]!r}", line, column
            )
        kind = match.lastgroup
        lexeme = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, lexeme, line, column))
        newlines = lexeme.count("\n")
        if newlines:
            line += newlines
            column = len(lexeme) - lexeme.rfind("\n")
        else:
            column += len(lexeme)
        pos = match.end()
    tokens.append(Token("eof", "", line, column))
    return tokens


def _unquote(text: str) -> str:
    body = text[1:-1]
    return re.sub(r"\\(.)", r"\1", body)


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def _fail(self, expected: str) -> "UpdateParseError":
        token = self.current
        got = repr(token.text) if token.kind != "eof" else "end of script"
        return UpdateParseError(
            f"expected {expected}, got {got}", token.line, token.column
        )

    def _keyword(self, word: str) -> Token:
        token = self.current
        if token.kind == "name" and token.text == word:
            return self._advance()
        raise self._fail(f"keyword {word!r}")

    def _punct(self, char: str) -> Token:
        token = self.current
        if token.kind == "punct" and token.text == char:
            return self._advance()
        raise self._fail(repr(char))

    def _at_keyword(self, word: str) -> bool:
        return self.current.kind == "name" and self.current.text == word

    def _name(self, what: str) -> str:
        """A name or ref: a bare word (keywords excluded) or a string."""
        token = self.current
        if token.kind == "string":
            self._advance()
            return _unquote(token.text)
        if token.kind == "name" and token.text not in KEYWORDS:
            self._advance()
            return token.text
        raise self._fail(what)

    def _literal(self) -> object:
        token = self.current
        if token.kind == "string":
            self._advance()
            return _unquote(token.text)
        if token.kind == "number":
            self._advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "name" and token.text in ("true", "false"):
            self._advance()
            return token.text == "true"
        raise self._fail("a literal (string, number, true, false)")

    # -- grammar -----------------------------------------------------------

    def script(self) -> UpdateScript:
        statements: List[Statement] = []
        while self.current.kind != "eof":
            statements.append(self.statement())
            if self.current.kind == "punct" and self.current.text == ";":
                self._advance()
            elif self.current.kind != "eof":
                raise self._fail("';' or end of script")
        return UpdateScript(statements)

    def statement(self) -> Statement:
        token = self.current
        if self._at_keyword("insert"):
            return self._insert()
        if self._at_keyword("delete"):
            return self._delete()
        if self._at_keyword("replace"):
            return self._replace()
        if self._at_keyword("rename"):
            return self._rename()
        raise UpdateParseError(
            f"expected a statement (insert/delete/replace/rename), got {token.text!r}",
            token.line,
            token.column,
        )

    def _props(self) -> List[Property]:
        properties: List[Property] = []
        if not self._at_keyword("with"):
            return properties
        self._advance()
        self._punct("(")
        while not (self.current.kind == "punct" and self.current.text == ")"):
            name = self._name("a property name")
            value = self._literal()
            properties.append((name, value))
            if self.current.kind == "punct" and self.current.text == ",":
                self._advance()
            else:
                break
        self._punct(")")
        return properties

    def _insert(self) -> Statement:
        opener = self._keyword("insert")
        if self._at_keyword("node"):
            self._advance()
            type_name = self._name("a node type")
            node_id = None
            if self._at_keyword("id"):
                self._advance()
                node_id = self._name("a node id")
            return InsertNode(
                line=opener.line,
                column=opener.column,
                type_name=type_name,
                node_id=node_id,
                properties=self._props(),
            )
        self._keyword("relation")
        relation_name = self._name("a relation type")
        relation_id = None
        if self._at_keyword("id"):
            self._advance()
            relation_id = self._name("a relation id")
        self._keyword("from")
        source_id = self._name("a source node id")
        self._keyword("to")
        target_id = self._name("a target node id")
        return InsertRelation(
            line=opener.line,
            column=opener.column,
            relation_name=relation_name,
            source_id=source_id,
            target_id=target_id,
            relation_id=relation_id,
            properties=self._props(),
        )

    def _delete(self) -> Statement:
        opener = self._keyword("delete")
        if self._at_keyword("node"):
            self._advance()
            return DeleteNode(
                line=opener.line,
                column=opener.column,
                node_id=self._name("a node id"),
            )
        if self._at_keyword("relation"):
            self._advance()
            return DeleteRelation(
                line=opener.line,
                column=opener.column,
                relation_id=self._name("a relation id"),
            )
        self._keyword("property")
        name = self._name("a property name")
        self._keyword("of")
        return DeleteProperty(
            line=opener.line,
            column=opener.column,
            name=name,
            target_id=self._name("a node or relation id"),
        )

    def _replace(self) -> Statement:
        opener = self._keyword("replace")
        self._keyword("value")
        self._keyword("of")
        target_id = self._name("a node or relation id")
        self._punct(".")
        name = self._name("a property name")
        self._keyword("with")
        return ReplaceValue(
            line=opener.line,
            column=opener.column,
            target_id=target_id,
            name=name,
            value=self._literal(),
        )

    def _rename(self) -> Statement:
        opener = self._keyword("rename")
        if self._at_keyword("node"):
            self._advance()
            node_id = self._name("a node id")
            self._keyword("as")
            return RenameNode(
                line=opener.line,
                column=opener.column,
                node_id=node_id,
                new_type=self._name("a node type"),
            )
        self._keyword("relation")
        relation_id = self._name("a relation id")
        self._keyword("as")
        return RenameRelation(
            line=opener.line,
            column=opener.column,
            relation_id=relation_id,
            new_type=self._name("a relation type"),
        )


def parse_update_script(text: str) -> UpdateScript:
    """Parse update-language text into an :class:`UpdateScript`."""
    return _Parser(text).script()


# -- canonical rendering -------------------------------------------------------


def _render_name(name: str) -> str:
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_-]*", name) and name not in KEYWORDS:
        return name
    return _quote(name)


def _render_literal(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return _quote(str(value))


def _render_props(properties: List[Property]) -> str:
    if not properties:
        return ""
    body = ", ".join(
        f"{_render_name(name)} {_render_literal(value)}" for name, value in properties
    )
    return f" with ({body})"


def render_statement(statement: Statement) -> str:
    if isinstance(statement, InsertNode):
        id_clause = f" id {_render_name(statement.node_id)}" if statement.node_id else ""
        return (
            f"insert node {_render_name(statement.type_name)}{id_clause}"
            f"{_render_props(statement.properties)}"
        )
    if isinstance(statement, InsertRelation):
        id_clause = (
            f" id {_render_name(statement.relation_id)}" if statement.relation_id else ""
        )
        return (
            f"insert relation {_render_name(statement.relation_name)}{id_clause}"
            f" from {_render_name(statement.source_id)}"
            f" to {_render_name(statement.target_id)}"
            f"{_render_props(statement.properties)}"
        )
    if isinstance(statement, DeleteNode):
        return f"delete node {_render_name(statement.node_id)}"
    if isinstance(statement, DeleteRelation):
        return f"delete relation {_render_name(statement.relation_id)}"
    if isinstance(statement, DeleteProperty):
        return (
            f"delete property {_render_name(statement.name)}"
            f" of {_render_name(statement.target_id)}"
        )
    if isinstance(statement, ReplaceValue):
        return (
            f"replace value of {_render_name(statement.target_id)}"
            f".{_render_name(statement.name)} with {_render_literal(statement.value)}"
        )
    if isinstance(statement, RenameNode):
        return (
            f"rename node {_render_name(statement.node_id)}"
            f" as {_render_name(statement.new_type)}"
        )
    if isinstance(statement, RenameRelation):
        return (
            f"rename relation {_render_name(statement.relation_id)}"
            f" as {_render_name(statement.new_type)}"
        )
    raise TypeError(f"unknown statement {type(statement).__name__}")


def render_script(script: UpdateScript) -> str:
    """Canonical text for a script: one statement per line, ``;``-terminated.

    ``parse_update_script(render_script(s))`` is structurally equal to
    ``s`` (modulo source locations) — the round-trip the delta broadcast
    relies on.
    """
    return "\n".join(render_statement(statement) + ";" for statement in script)
