"""A minimal XSLT-ish processor — "a bit of XSLT sprinkled in at the end"."""

from .engine import transform
from .stylesheet import (
    MatchPattern,
    Stylesheet,
    StylesheetError,
    Template,
    parse_match_pattern,
    parse_stylesheet,
)

__all__ = [
    "MatchPattern",
    "Stylesheet",
    "StylesheetError",
    "Template",
    "parse_match_pattern",
    "parse_stylesheet",
    "transform",
]
