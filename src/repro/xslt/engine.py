"""The mini-XSLT transformation engine."""

from __future__ import annotations

from typing import List, Union

from ..xdm import (
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    TextNode,
    effective_boolean_value,
    is_node,
    string_value_of_atomic,
)
from ..xquery.context import DynamicContext, EngineConfig
from ..xquery.evaluator import evaluate
from .stylesheet import (
    XSL_PREFIX,
    Stylesheet,
    StylesheetError,
    compile_select,
    parse_stylesheet,
)


def transform(
    stylesheet: Union[str, Stylesheet], document: Node
) -> List[Node]:
    """Apply a stylesheet to a document (or element), returning result nodes."""
    if not isinstance(stylesheet, Stylesheet):
        stylesheet = parse_stylesheet(stylesheet)
    engine = _Transformer(stylesheet)
    return engine.apply_templates([document])


class _Transformer:
    def __init__(self, stylesheet: Stylesheet):
        self.stylesheet = stylesheet
        self._select_cache = {}

    # -- template application ------------------------------------------------

    def apply_templates(self, nodes: List[Node]) -> List[Node]:
        output: List[Node] = []
        size = len(nodes)
        for position, node in enumerate(nodes, start=1):
            template = self.stylesheet.best_match(node)
            if template is not None:
                output.extend(self.instantiate(template.body, node, position, size))
            else:
                output.extend(self._builtin_rule(node))
        return output

    def _builtin_rule(self, node: Node) -> List[Node]:
        """XSLT's built-in rules: recurse into elements, copy text."""
        if node.kind in ("document", "element"):
            return self.apply_templates(list(node.children))
        if node.kind == "text":
            return [node.copy()]
        return []

    # -- body instantiation -----------------------------------------------------

    def instantiate(
        self, body: List[Node], context: Node, position: int, size: int
    ) -> List[Node]:
        output: List[Node] = []
        for instruction in body:
            output.extend(self._one(instruction, context, position, size))
        return output

    def _one(
        self, instruction: Node, context: Node, position: int, size: int
    ) -> List[Node]:
        if instruction.kind == "text":
            if instruction.string_value().strip():
                return [instruction.copy()]
            return []
        if instruction.kind != "element":
            return [instruction.copy()]
        name = instruction.name
        if not name.startswith(XSL_PREFIX):
            literal = ElementNode(name)
            for attribute in instruction.attributes:
                literal.set_attribute(attribute.name, attribute.value)
            for child in self.instantiate(
                list(instruction.children), context, position, size
            ):
                if isinstance(child, AttributeNode):
                    literal.set_attribute_node(child)
                else:
                    literal.append(child)
            return [literal]
        verb = name[len(XSL_PREFIX) :]
        if verb == "apply-templates":
            select = instruction.get_attribute("select")
            if select is None:
                return self.apply_templates(list(context.children))
            selected = self._select(select, context, position, size)
            return self.apply_templates([n for n in selected if is_node(n)])
        if verb == "value-of":
            select = self._required(instruction, "select")
            value = self._select(select, context, position, size)
            if not value:
                return []
            first = value[0]
            text = first.string_value() if is_node(first) else string_value_of_atomic(first)
            return [TextNode(text)]
        if verb == "copy-of":
            select = self._required(instruction, "select")
            value = self._select(select, context, position, size)
            return [
                item.copy() if is_node(item) else TextNode(string_value_of_atomic(item))
                for item in value
            ]
        if verb == "copy":
            shallow: Node
            if context.kind == "element":
                shallow = ElementNode(context.name)
                for attribute in context.attributes:
                    shallow.set_attribute(attribute.name, attribute.value)
            elif context.kind == "text":
                return [context.copy()]
            else:
                shallow = DocumentNode()
            for child in self.instantiate(
                list(instruction.children), context, position, size
            ):
                shallow.append(child)
            return [shallow]
        if verb == "for-each":
            select = self._required(instruction, "select")
            selected = [
                n for n in self._select(select, context, position, size) if is_node(n)
            ]
            output: List[Node] = []
            inner_size = len(selected)
            for inner_position, node in enumerate(selected, start=1):
                output.extend(
                    self.instantiate(
                        list(instruction.children), node, inner_position, inner_size
                    )
                )
            return output
        if verb == "choose":
            for branch in instruction.child_elements():
                if branch.name == XSL_PREFIX + "when":
                    test = self._required(branch, "test")
                    value = self._select(test, context, position, size)
                    if effective_boolean_value(value):
                        return self.instantiate(
                            list(branch.children), context, position, size
                        )
                elif branch.name == XSL_PREFIX + "otherwise":
                    return self.instantiate(
                        list(branch.children), context, position, size
                    )
                else:
                    raise StylesheetError(
                        f"<xsl:choose> allows only when/otherwise, "
                        f"found <{branch.name}>"
                    )
            return []
        if verb == "attribute":
            name_attr = self._required(instruction, "name")
            content = self.instantiate(
                list(instruction.children), context, position, size
            )
            value = "".join(node.string_value() for node in content)
            return [AttributeNode(name_attr, value)]
        if verb == "text":
            return [TextNode(instruction.string_value())]
        if verb == "if":
            test = self._required(instruction, "test")
            value = self._select(test, context, position, size)
            if effective_boolean_value(value):
                return self.instantiate(
                    list(instruction.children), context, position, size
                )
            return []
        raise StylesheetError(f"unsupported instruction <xsl:{verb}>")

    def _required(self, instruction: ElementNode, attribute: str) -> str:
        value = instruction.get_attribute(attribute)
        if value is None:
            raise StylesheetError(
                f"<{instruction.name}> requires a {attribute} attribute"
            )
        return value

    # -- select evaluation -------------------------------------------------------

    def _select(self, source: str, context: Node, position: int, size: int):
        compiled = self._select_cache.get(source)
        if compiled is None:
            compiled = compile_select(source)
            self._select_cache[source] = compiled
        ctx = DynamicContext(config=EngineConfig(optimize=False))
        ctx = ctx.with_focus(context, position, size)
        return evaluate(compiled, ctx)
