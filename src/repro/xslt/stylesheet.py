"""Parsing of the mini-XSLT stylesheet language.

The paper used "a bit of XSLT sprinkled in at the end" — specifically "a
little XSLT program could split them apart" (the output streams).  This
processor supports the fragment such a program needs:

* ``<xsl:template match="...">`` with simplified match patterns
  (name, ``parent/child``, ``*``, ``/``, ``text()``);
* ``<xsl:apply-templates/>`` and ``<xsl:apply-templates select="..."/>``;
* ``<xsl:value-of select="..."/>``;
* ``<xsl:copy-of select="..."/>``;
* ``<xsl:copy>`` (shallow copy with attributes);
* ``<xsl:for-each select="...">``;
* ``<xsl:if test="...">``;
* literal result elements and text.

``select``/``test`` expressions are compiled with the repo's own XQuery
parser — XPath 1.0 select expressions are a subset of what it accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..xdm import ElementNode, Node
from ..xmlio import parse_element
from ..xquery.ast import Expr
from ..xquery.parser import parse_expression

XSL_PREFIX = "xsl:"


class StylesheetError(ValueError):
    """The stylesheet is malformed or uses unsupported features."""


@dataclass
class MatchPattern:
    """A simplified match pattern.

    ``steps`` holds the name path (last element is the node itself);
    ``kind`` distinguishes ``element`` / ``text`` / ``root`` patterns.
    Specificity: root > longer paths > name > wildcard.
    """

    source: str
    kind: str = "element"  # element | text | root
    steps: List[str] = field(default_factory=list)

    @property
    def specificity(self) -> float:
        if self.kind == "root":
            return 100.0
        if self.kind == "text":
            return 1.0
        score = float(len(self.steps))
        if self.steps and self.steps[-1] == "*":
            score -= 0.5
        return score

    def matches(self, node: Node) -> bool:
        if self.kind == "root":
            return node.kind == "document"
        if self.kind == "text":
            return node.kind == "text"
        if node.kind != "element":
            return False
        current: Optional[Node] = node
        for name in reversed(self.steps):
            if current is None or current.kind != "element":
                return False
            if name != "*" and current.name != name:
                return False
            current = current.parent
        return True


def parse_match_pattern(source: str) -> MatchPattern:
    text = source.strip()
    if text == "/":
        return MatchPattern(source, kind="root")
    if text == "text()":
        return MatchPattern(source, kind="text")
    steps = [step for step in text.split("/") if step]
    if not steps:
        raise StylesheetError(f"unsupported match pattern {source!r}")
    for step in steps:
        if step != "*" and not step.replace("-", "").replace("_", "").isalnum():
            raise StylesheetError(f"unsupported match step {step!r} in {source!r}")
    return MatchPattern(source, kind="element", steps=steps)


@dataclass
class Template:
    """One ``<xsl:template>``: a match pattern and a body."""

    pattern: MatchPattern
    body: List[Node]


class Stylesheet:
    """A parsed stylesheet: an ordered, specificity-ranked template list."""

    def __init__(self, templates: List[Template]):
        self.templates = templates

    def best_match(self, node: Node) -> Optional[Template]:
        best: Optional[Template] = None
        best_rank = (-1.0, -1)
        for position, template in enumerate(self.templates):
            if template.pattern.matches(node):
                # later templates win ties, as in XSLT's import precedence.
                rank = (template.pattern.specificity, position)
                if rank > best_rank:
                    best, best_rank = template, rank
        return best


def parse_stylesheet(source: Union[str, ElementNode]) -> Stylesheet:
    """Parse a stylesheet from XML text or a parsed element."""
    root = parse_element(source) if isinstance(source, str) else source
    if root.name not in (XSL_PREFIX + "stylesheet", XSL_PREFIX + "transform"):
        raise StylesheetError(f"expected <xsl:stylesheet>, found <{root.name}>")
    templates: List[Template] = []
    for child in root.child_elements():
        if child.name != XSL_PREFIX + "template":
            raise StylesheetError(f"unsupported top-level element <{child.name}>")
        match = child.get_attribute("match")
        if not match:
            raise StylesheetError("<xsl:template> requires a match attribute")
        templates.append(
            Template(pattern=parse_match_pattern(match), body=list(child.children))
        )
    return Stylesheet(templates)


def compile_select(source: str) -> Expr:
    """Compile a select/test expression using the XQuery parser."""
    try:
        return parse_expression(source)
    except Exception as exc:
        raise StylesheetError(f"bad select expression {source!r}: {exc}") from exc
