(: fuzz-case kind=xquery seed=7 gen=1 :)
(: note: fn:avg/fn:sum accumulated with a bare + and no numeric type promotion, so a mixed float/decimal sequence (number() yields double, div yields decimal) escaped as a raw TypeError in every backend :)
avg((9, number(2), (1 div 5)))
