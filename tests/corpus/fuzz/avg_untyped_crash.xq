(: fuzz-case kind=xquery seed=20040522 gen=1 :)
(: note: same escape as minmax_untyped_crash via the _coerce_number path shared by fn:avg and fn:sum; pinned separately because the two call sites were fixed separately :)
avg(<x>et</x>)
