(: fuzz-case kind=xquery seed=99 gen=1 :)
(: note: fn:ceiling fed NaN into math.ceil and escaped as a raw ValueError in every backend; the spec passes NaN and +-INF through floor/ceiling/round unchanged :)
ceiling(number(()))
