(: fuzz-case kind=xquery seed=20040522 gen=1 :)
(: note: fn:max over a non-numeric untyped value leaked a raw Python ValueError out of both backends instead of raising FORG0001; found by the first full mixed campaign (budget=1000), shrunk by hand from a generated aggregate over element content :)
max((<x>et</x>, 1))
