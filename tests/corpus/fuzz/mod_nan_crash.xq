(: fuzz-case kind=xquery seed=777777 gen=1 :)
(: note: the mod operator's truncating division called int(nan / 2) and escaped as a raw ValueError in every backend; fn-numeric-mod gives NaN for NaN operands or an infinite dividend, and returns the dividend for an infinite divisor :)
(number(()) mod 2)
