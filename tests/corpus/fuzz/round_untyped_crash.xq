(: fuzz-case kind=xquery seed=20040522 gen=1 :)
(: note: fn:round / fn:floor / fn:ceiling / fn:abs share _numeric, whose bare float() on an untyped value escaped as a raw ValueError in every backend; found by the 3-way campaign after the algebra backend joined the fleet :)
declare function local:f($p) { text { 's' } };
round(local:f(1))
