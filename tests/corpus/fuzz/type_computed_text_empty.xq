(: fuzz-case kind=xquery seed=20040522 gen=1 :)
(: note: type-soundness: the computed text constructor is the one constructor that maps empty content to the empty sequence rather than an empty node; the analyzer inferred exactly-one text() for a zero-item result :)
text { () }
