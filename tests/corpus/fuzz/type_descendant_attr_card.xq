(: fuzz-case kind=xquery seed=20040522 gen=1 :)
(: note: type-soundness: a named attribute step carries at most one node per base element, but //@x reaches every descendant, so Card(0, base.hi) undercounted: two x attributes came back against an inferred attribute(x)? :)
(<r><b x='0'>0</b><a>1</a><b x='0'><c>2</c></b><a>3</a></r>)//@x
