(: fuzz-case kind=xquery seed=20040522 gen=1 :)
(: note: type-soundness: analyzer consulted the builtin always-one table before declared functions, so a user local:count shadowing fn:count inferred exactly-one for a three-item body; found by directed probing with the soundness oracle, fixed by mirroring the runtime's declaration-first resolution in _call_card :)
declare function local:count($x) { (1, 2, 3) };
local:count(0)
