(: fuzz-case kind=xquery seed=20040522 gen=1 :)
(: note: type-soundness: fn:trace returns its last argument (the value) but the analyzer's passthrough table drew the item type from the first (the label), inferring xs:string* for an integer result :)
trace('t1', 1)
