(: fuzz-case kind=xquery seed=20040522 gen=1 :)
(: note: type-soundness: xs: constructor functions map the empty sequence to the empty sequence, but the analyzer inferred exactly-one for every xs: call; found by directed probing with the soundness oracle, fixed to infer ? unless the argument is provably non-empty :)
xs:integer(())
