"""Unit tests for the algebra backend (``EngineConfig(backend="algebra")``).

Result *parity* with the treewalk is enforced wholesale by
``tests/test_backend_parity.py`` and the differential fuzzer; this file
tests the machinery itself — what lowering produces, what the statistics
catalog measures, which choices the cost pass makes, how the shared scan
cache behaves across runs, and what ``explain`` reports.
"""

import json

import pytest

from repro.querycalc import QueryService, parse_query_xml
from repro.workloads import make_it_model
from repro.xmlio import parse_document
from repro.xquery import EngineConfig, XQueryEngine
from repro.xquery.algebra import (
    DEFAULT_STATS,
    SharedEvalCache,
    StatisticsCatalog,
    module_signature,
)

DOC = parse_document(
    """<awb-model>
  <node id="n1" type="User"><property name="label" type="string">ann</property></node>
  <node id="n2" type="User"><property name="label" type="string">bob</property></node>
  <node id="s1" type="Server"><property name="label" type="string">web</property></node>
  <relation id="r1" type="uses" source="n1" target="s1"/>
  <relation id="r2" type="uses" source="n2" target="s1"/>
  <relation id="r3" type="runs" source="s1" target="n1"/>
</awb-model>"""
)

JOIN_QUERY = (
    "declare variable $model external;\n"
    "for $n in $model/node[@type = (\"User\")]\n"
    "for $r in root($n)/awb-model/relation[@type = (\"uses\")]"
    "[@source eq $n/@id]\n"
    "return root($n)/awb-model/node[@id eq $r/@target]"
)


def compile_algebra(source, config=None):
    config = config or EngineConfig(backend="algebra")
    return XQueryEngine(config).compile(source)


def run_both(source, **kwargs):
    results = {}
    for backend in ("treewalk", "algebra"):
        engine = XQueryEngine(EngineConfig(backend=backend))
        results[backend] = engine.compile(source).run(**kwargs)
    return results


# -- lowering shapes ----------------------------------------------------------


class TestLowering:
    def test_follow_join_lowers_to_hash_join(self):
        query = compile_algebra(JOIN_QUERY)
        assert not query.algebra.trivial
        text = query.algebra.explain_text()
        assert "HashJoin $r on @source eq probe" in text
        assert "Scan" in text

    def test_whole_body_fallback_is_trivial(self):
        # quantified expressions are outside the fragment: whole-body fallback
        query = compile_algebra("some $x in (1,2,3) satisfies $x > 2")
        assert query.algebra.trivial
        assert query.algebra.explain()["fallback"] is True
        assert query.run() == [True]

    def test_constant_body_is_not_a_fallback(self):
        # constant folding runs before lowering: "1 + 1" is a literal plan
        query = compile_algebra("1 + 1")
        assert not query.algebra.trivial
        assert query.run() == [2]

    def test_builtin_call_is_a_pass_through_plan(self):
        # trace() wrapping a path must not hide the scan behind a fallback
        source = 'declare variable $model external; trace("q", $model/node)'
        text = compile_algebra(source).algebra.explain_text()
        assert "Call:trace" in text
        assert "Scan" in text

    def test_positional_predicate_compiles_to_slice(self):
        source = "declare variable $model external; $model/node[2]"
        query = compile_algebra(source)
        assert "position() = 2" in query.algebra.explain_text()
        root = DOC.document_element()
        result = query.run(variables={"model": root})
        assert [item.get_attribute("id") for item in result] == ["n2"]

    def test_join_executes_identically_to_treewalk(self):
        root = DOC.document_element()
        results = run_both(JOIN_QUERY, variables={"model": root})
        assert results["algebra"] == results["treewalk"]
        assert [n.get_attribute("id") for n in results["algebra"]] == ["s1", "s1"]


# -- the statistics catalog ---------------------------------------------------


class TestStatisticsCatalog:
    def test_counts_from_one_walk(self):
        catalog = StatisticsCatalog.from_root(DOC.document_element(), generation=7)
        assert catalog.generation == 7
        assert catalog.element_counts["node"] == 3
        assert catalog.element_counts["relation"] == 3
        assert catalog.element_counts["property"] == 3
        assert catalog.total_elements == 10  # root + 3 + 3 + 3
        assert catalog.attr_distinct[("relation", "source")] == 3
        assert catalog.attr_distinct[("relation", "type")] == 2
        assert catalog.attr_present[("node", "id")] == 3

    def test_estimates(self):
        catalog = StatisticsCatalog.from_root(DOC.document_element())
        assert catalog.element_count("node") == 3
        assert catalog.element_count("missing") == 0
        assert catalog.fanout("node") == 1.0  # one <property> child each
        assert catalog.attr_distinct_count("relation", "source") == 3
        # @id is unique per node: an equality predicate keeps one of three
        assert catalog.attr_selectivity("node", "id") == pytest.approx(1 / 3)

    def test_default_catalog_has_bland_priors(self):
        assert DEFAULT_STATS.is_default
        assert DEFAULT_STATS.element_count("anything") > 0
        assert 0.0 < DEFAULT_STATS.attr_selectivity(None, "id") <= 1.0

    def test_to_dict_is_json_friendly(self):
        catalog = StatisticsCatalog.from_root(DOC.document_element(), generation=1)
        snapshot = json.loads(json.dumps(catalog.to_dict()))
        assert snapshot["generation"] == 1
        assert snapshot["element_counts"]["relation"] == 3
        assert snapshot["attr_distinct"]["relation/@source"] == 3


# -- the cost pass ------------------------------------------------------------


class TestOptimizer:
    def test_most_selective_predicate_goes_first(self):
        # @id (3 distinct) beats @type (2 distinct) — written the other way
        source = (
            "declare variable $model external; "
            '$model/node[@type eq "User"][@id eq "n1"]'
        )
        catalog = StatisticsCatalog.from_root(DOC.document_element())
        text = compile_algebra(source).algebra.explain_text(catalog)
        assert text.index("@id") < text.index("@type")

    def test_join_key_follows_distinct_counts(self):
        source = (
            "declare variable $model external; "
            "for $n in $model/node "
            "for $r in root($n)/awb-model/relation"
            "[@type eq $n/@type][@source eq $n/@id] "
            "return $r"
        )

        def keyed(distincts):
            catalog = StatisticsCatalog()
            catalog.total_elements = 10
            catalog.element_counts = {"node": 3, "relation": 3}
            catalog.attr_distinct = distincts
            text = compile_algebra(source).algebra.explain_text(catalog)
            (line,) = [l for l in text.splitlines() if "HashJoin" in l]
            return line

        # lowering picked @type (first written); more distinct @source wins
        line = keyed({("relation", "source"): 100, ("relation", "type"): 2})
        assert "on @source" in line
        # the old key survives as a residual (generic) filter
        assert "generic predicate" in line
        # and with the counts reversed the original key stays
        line = keyed({("relation", "source"): 2, ("relation", "type"): 100})
        assert "on @type" in line

    def test_estimates_are_annotated_for_explain(self):
        catalog = StatisticsCatalog.from_root(DOC.document_element())
        plan = json.loads(compile_algebra(JOIN_QUERY).algebra.explain_json(catalog))
        assert plan["backend"] == "algebra"
        assert plan["fallback"] is False

        def rows(node):
            yield node.get("est_rows")
            for child in node.get("children", []):
                yield from rows(child)

        estimates = [r for r in rows(plan["plan"]) if r is not None]
        assert estimates, "explain JSON must carry est_rows annotations"

    def test_reoptimizing_for_new_stats_preserves_results(self):
        query = compile_algebra(JOIN_QUERY)
        root = DOC.document_element()
        baseline = query.run(variables={"model": root})
        catalog = StatisticsCatalog.from_root(root)
        assert query.run(variables={"model": root}, statistics=catalog) == baseline


# -- shared scan/build memoization -------------------------------------------


class TestSharedEvalCache:
    def test_join_builds_are_shared_across_runs(self):
        query = compile_algebra(JOIN_QUERY)
        root = DOC.document_element()
        cache = SharedEvalCache()
        first = query.run(variables={"model": root}, algebra_cache=cache)
        after_first = cache.info()
        assert after_first["entries"] > 0
        second = query.run(variables={"model": root}, algebra_cache=cache)
        assert second == first
        assert cache.info()["hits"] > after_first["hits"]

    def test_runs_without_a_cache_are_isolated(self):
        query = compile_algebra(JOIN_QUERY)
        root = DOC.document_element()
        assert query.run(variables={"model": root}) == query.run(
            variables={"model": root}
        )


# -- structural signatures ----------------------------------------------------


class TestPlanSignature:
    def test_signature_ignores_positions(self):
        spread = JOIN_QUERY.replace("\n", "\n\n   ")
        assert (
            compile_algebra(JOIN_QUERY).plan_signature
            == compile_algebra(spread).plan_signature
        )

    def test_signature_sees_structure(self):
        changed = JOIN_QUERY.replace('"uses"', '"runs"')
        assert (
            compile_algebra(JOIN_QUERY).plan_signature
            != compile_algebra(changed).plan_signature
        )

    def test_signature_matches_module_signature(self):
        query = compile_algebra(JOIN_QUERY)
        assert query.plan_signature == module_signature(query.module)


# -- the service and CLI surfaces --------------------------------------------


FOLLOW_XML = (
    '<query><start type="User"/><follow relation="uses"/>'
    '<collect sort-by="label"/></query>'
)


class TestServiceIntegration:
    def test_service_defaults_to_the_algebra_backend(self):
        service = QueryService(make_it_model(scale=3))
        assert service.engine.config.backend == "algebra"

    def test_service_explain_shows_the_join(self):
        service = QueryService(make_it_model(scale=3))
        explanation = service.explain(parse_query_xml(FOLLOW_XML))
        assert explanation["backend"] == "algebra"
        assert "HashJoin" in explanation["text"]
        assert explanation["plan_key"]

    def test_metrics_expose_compile_and_algebra_caches(self):
        service = QueryService(make_it_model(scale=3))
        service.run(parse_query_xml(FOLLOW_XML))
        metrics = service.metrics()
        assert metrics["compile_cache"] is not None
        assert "hits" in metrics["compile_cache"]
        assert metrics["algebra_cache"] is not None

    def test_native_backend_explain_degrades_gracefully(self):
        service = QueryService(make_it_model(scale=3), backend="native")
        explanation = service.explain(parse_query_xml(FOLLOW_XML))
        assert explanation["backend"] == "native"


class TestCli:
    def test_explain_text(self, capsys):
        from repro.xquery.__main__ import main

        assert main(["--explain", JOIN_QUERY]) == 0
        out = capsys.readouterr().out
        assert "HashJoin" in out

    def test_explain_json(self, capsys):
        from repro.xquery.__main__ import main

        assert main(["--explain", "--explain-format", "json", JOIN_QUERY]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "algebra"
        assert payload["plan"]["op"]

    def test_algebra_backend_runs(self, capsys):
        from repro.xquery.__main__ import main

        assert main(["--backend", "algebra", "1 to 3"]) == 0
        assert capsys.readouterr().out.strip() == "1 2 3"
