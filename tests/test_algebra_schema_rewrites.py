"""Schema-licensed optimizer rewrites: plans change, results don't.

PR 7's optimizer additions, exercised end to end:

* **existence-check elimination** — a ``[@id]`` predicate on an element
  whose schema declares ``@id`` required is marked ``skipped`` and never
  evaluated; the plan says ``[pruned: ...]`` and the results are
  bit-identical to the schema-free run;
* **occurrence annotations** — every plan node carries ``[occ=...]`` from
  the static-type pass, including the proven-singleton hash-join build;
* the **warrant contract** — a catalog only carries the schema after
  verifying it against the walked document, so the pruning is licensed by
  observation, not by faith.
"""

import pytest

from repro.awb.xml_io import export_model
from repro.testing.models import random_model
from repro.xquery import EngineConfig, XQueryEngine
from repro.xquery.algebra.stats import DEFAULT_STATS, StatisticsCatalog
from repro.xquery.api import serialize_result


@pytest.fixture(scope="module")
def export():
    model = random_model(20040522, size=30)
    root = export_model(model)
    return root, StatisticsCatalog.from_root(root)


def compile_algebra(source):
    return XQueryEngine(EngineConfig(backend="algebra")).compile(source)


EXISTENCE_QUERY = (
    "declare variable $doc external;\n"
    "for $n in $doc/awb-model/node[@id] return string($n/@type)"
)


def test_existence_check_pruned_under_schema_catalog(export):
    root, catalog = export
    query = compile_algebra(EXISTENCE_QUERY)
    schema_plan = "\n".join(query.explain(catalog)["text"].splitlines())
    assert "pruned" in schema_plan, schema_plan
    bare_plan = query.explain(DEFAULT_STATS)["text"]
    assert "pruned" not in bare_plan, bare_plan


def test_pruned_plan_results_unchanged(export):
    root, catalog = export
    query = compile_algebra(EXISTENCE_QUERY)
    kwargs = {"variables": {"doc": [root]}}
    pruned = query.run(backend="algebra", statistics=catalog, **kwargs)
    reference = query.run(backend="treewalk", **kwargs)
    unpruned = query.run(backend="algebra", statistics=DEFAULT_STATS, **kwargs)
    assert serialize_result(pruned) == serialize_result(reference)
    assert serialize_result(unpruned) == serialize_result(reference)
    assert len(pruned) == 30 + 1  # every node element has @id (plus the SUD)


def test_reoptimizing_without_schema_resets_pruning(export):
    _, catalog = export
    query = compile_algebra(EXISTENCE_QUERY)
    assert "pruned" in query.explain(catalog)["text"]
    # switching to a schema-free catalog must clear every skipped flag:
    # the warrant was scoped to the verified document.
    assert "pruned" not in query.explain(DEFAULT_STATS)["text"]


def test_dead_path_estimated_empty(export):
    _, catalog = export
    query = compile_algebra(
        "declare variable $doc external;\n$doc/awb-model/relation/node"
    )
    explanation = query.explain(catalog)
    assert "[occ=" in explanation["text"]
    assert "(~0" in explanation["text"], explanation["text"]


def test_plans_carry_occurrence_annotations(export):
    _, catalog = export
    query = compile_algebra(
        "declare variable $doc external;\n$doc/awb-model/node/@id"
    )
    assert "[occ=" in query.explain(catalog)["text"]


def test_three_hop_join_gets_singleton_occurrence(export):
    root, catalog = export
    source = (
        "declare variable $doc external;\n"
        "for $r in $doc/awb-model/relation\n"
        "for $n in $doc/awb-model/node[@id eq $r/@source]\n"
        "return $n/@type"
    )
    query = compile_algebra(source)
    text = query.explain(catalog)["text"]
    assert "HashJoin" in text, text
    # @id is proven unique (present == count == distinct), so the join
    # probe is a singleton: the op is annotated [occ=?].
    join_lines = [line for line in text.splitlines() if "HashJoin" in line]
    assert any("[occ=?]" in line for line in join_lines), text
    joined = query.run(
        backend="algebra", statistics=catalog, variables={"doc": [root]}
    )
    reference = query.run(backend="treewalk", variables={"doc": [root]})
    assert serialize_result(joined) == serialize_result(reference)


def test_explain_includes_static_type(export):
    _, catalog = export
    query = compile_algebra(
        "declare variable $doc external;\n$doc/awb-model/node/@id"
    )
    explanation = query.explain(catalog)
    assert explanation["static_type"] is not None
    assert "attribute(id)" in explanation["static_type"]
