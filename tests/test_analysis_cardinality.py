"""The occurrence-inference lattice: Card intervals and the analyzer."""

from repro.xquery import parse_query
from repro.xquery.analysis import (
    EMPTY,
    ONE,
    OPT,
    PLUS,
    STAR,
    Binding,
    Card,
    CardinalityAnalyzer,
)
from repro.xquery.analysis.cardinality import (
    concat,
    from_sequence_type,
    join,
    module_environments,
    positional_index,
)
from repro.xdm import ItemType, SequenceType


def card_of(source, env=None):
    module = parse_query(source)
    analyzer = CardinalityAnalyzer(module)
    body_env, _ = module_environments(module, analyzer)
    if env:
        body_env.update(env)
    return analyzer.card(module.body, body_env)


class TestLattice:
    def test_concat_adds_intervals(self):
        assert concat(ONE, ONE) == Card(2, 2)
        assert concat(OPT, ONE) == Card(1, 2)
        assert concat(STAR, ONE) == Card(1, None)
        assert concat(EMPTY, EMPTY) == EMPTY

    def test_join_is_least_upper_bound(self):
        assert join(ONE, EMPTY) == OPT
        assert join(ONE, STAR) == STAR
        assert join(Card(2, 2), Card(5, 5)) == Card(2, 5)
        assert join(PLUS, EMPTY) == STAR

    def test_predicates(self):
        assert EMPTY.can_be_empty and not ONE.can_be_empty
        assert ONE.is_exactly_one and not OPT.is_exactly_one

    def test_from_sequence_type(self):
        item = ItemType.item()
        assert from_sequence_type(SequenceType(item)) == ONE
        assert from_sequence_type(SequenceType(item, "?")) == OPT
        assert from_sequence_type(SequenceType(item, "*")) == STAR
        assert from_sequence_type(SequenceType(item, "+")) == PLUS
        assert from_sequence_type(SequenceType.empty()) == EMPTY
        assert from_sequence_type(None) == STAR


class TestExpressionCards:
    def test_literals_and_empty(self):
        assert card_of("42") == ONE
        assert card_of("()") == EMPTY

    def test_sequence_concatenation_is_exact(self):
        assert card_of("(1, 2, 3)") == Card(3, 3)

    def test_literal_range(self):
        assert card_of("1 to 4") == Card(4, 4)
        assert card_of("5 to 1") == EMPTY

    def test_if_joins_branches(self):
        assert card_of("if (1 gt 0) then 1 else ()") == OPT
        assert card_of("if (1 gt 0) then (1,2) else (3,4)") == Card(2, 2)

    def test_flwor_multiplies(self):
        assert card_of("for $x in (1,2,3) return $x") == Card(3, 3)
        assert card_of("for $x in (1,2) return ($x, $x)") == Card(4, 4)

    def test_where_makes_lower_bound_zero(self):
        assert card_of("for $x in (1,2) where $x gt 1 return $x") == Card(0, 2)

    def test_let_binding_card_flows(self):
        assert card_of("let $p := (1,2) return $p") == Card(2, 2)

    def test_positional_filter_is_at_most_one(self):
        assert card_of("(1,2,3)[2]") == Card(0, 1)

    def test_builtin_tables(self):
        assert card_of("count((1,2))") == ONE
        assert card_of("avg((1,2))") == OPT
        assert card_of("one-or-more((1,2))") == PLUS

    def test_declared_return_type_is_trusted(self):
        source = (
            'declare function local:f($x) as item() { $x };'
            "local:f(1)"
        )
        assert card_of(source) == ONE

    def test_unknown_variable_is_star(self):
        module = parse_query("declare variable $v external; $v")
        analyzer = CardinalityAnalyzer(module)
        env, _ = module_environments(module, analyzer)
        assert analyzer.card(module.body, env) == STAR

    def test_declared_variable_type_is_trusted(self):
        source = "declare variable $v as item() external; $v"
        assert card_of(source) == ONE

    def test_value_comparison_propagates_emptiness(self):
        assert card_of("1 eq 1") == ONE
        assert card_of("() eq 1") == Card(0, 1)


class TestPositionalIndex:
    def test_literal_integer(self):
        module = parse_query("(1,2)[2]")
        predicate = module.body.predicates[0]
        assert positional_index(predicate) == 2

    def test_position_eq(self):
        module = parse_query("(1,2)[position() = 2]")
        assert positional_index(module.body.predicates[0]) == 2

    def test_boolean_predicate_is_not_positional(self):
        module = parse_query("(1,2)[. gt 1]")
        assert positional_index(module.body.predicates[0]) is None


class TestAttributeTracking:
    def test_computed_attribute_is_tracked(self):
        module = parse_query("attribute x { 1 }")
        analyzer = CardinalityAnalyzer(module)
        assert analyzer.may_construct_attribute(module.body, {})
        assert analyzer.static_attribute_name(module.body, {}) == "x"

    def test_let_bound_attribute_is_tracked(self):
        module = parse_query("let $a := attribute x { 1 } return $a")
        analyzer = CardinalityAnalyzer(module)
        binding = analyzer.binding_of(module.body.clauses[0].value, {})
        assert binding.may_be_attribute
        assert binding.attribute_name == "x"

    def test_element_is_not_an_attribute(self):
        module = parse_query("<a/>")
        analyzer = CardinalityAnalyzer(module)
        assert not analyzer.may_construct_attribute(module.body, {})

    def test_attribute_axis_path_is_tracked(self):
        module = parse_query("declare variable $d external; $d/attribute::x")
        analyzer = CardinalityAnalyzer(module)
        env = {"d": Binding()}
        assert analyzer.may_construct_attribute(module.body, env)
