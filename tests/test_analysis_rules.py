"""Positive and negative cases for every xqlint rule (XQL000–XQL009)."""

from repro.xquery import EngineConfig, parse_query
from repro.xquery.analysis import analyze_module, analyze_source


def codes(source, **kwargs):
    return [d.code for d in analyze_source(source, **kwargs)]


class TestParseErrors:
    def test_unparseable_input_is_a_diagnostic_not_an_exception(self):
        diagnostics = analyze_source("for $x in", source_label="bad.xq")
        assert [d.code for d in diagnostics] == ["XQL000"]
        assert diagnostics[0].severity == "error"
        assert diagnostics[0].spec_code == "XPST0003"
        assert diagnostics[0].source == "bad.xq"

    def test_parse_error_location_is_from_the_original_source(self):
        (diagnostic,) = analyze_source("not-closed(")
        assert diagnostic.line == 1

    def test_library_module_without_body_is_linted(self):
        # a prolog-only library parses (and lints) via the dummy-body retry
        diagnostics = analyze_source(
            "declare function local:helper($x) { $x + 1 };"
        )
        assert "XQL000" not in [d.code for d in diagnostics]
        # and unused-function does NOT fire: there is no body to call from
        assert "XQL005" not in [d.code for d in diagnostics]


class TestDeadTrace:
    DEAD = 'let $x := 6 * 7 let $dummy := trace("x=", $x) return $x'
    LIVE = 'let $x := trace("x=", 6 * 7) return $x'

    def test_trace_in_dead_let_fires(self):
        assert "XQL001" in codes(self.DEAD)

    def test_location_points_at_the_dead_binding(self):
        (diagnostic,) = [
            d for d in analyze_source(self.DEAD) if d.code == "XQL001"
        ]
        assert diagnostic.line == 1
        assert diagnostic.column == 21  # the $dummy binding

    def test_trace_in_live_binding_does_not_fire(self):
        assert "XQL001" not in codes(self.LIVE)

    def test_severity_escalates_when_the_engine_will_eat_it(self):
        module = parse_query(self.DEAD)
        config = EngineConfig(optimize=True, trace_is_dead_code=True)
        (diagnostic,) = [
            d for d in analyze_module(module, config=config) if d.code == "XQL001"
        ]
        assert diagnostic.severity == "error"

    def test_plain_warning_without_the_buggy_optimizer(self):
        (diagnostic,) = [
            d for d in analyze_source(self.DEAD) if d.code == "XQL001"
        ]
        assert diagnostic.severity == "warning"

    def test_dead_let_with_error_call_is_not_xql001(self):
        # error() is a real side effect: the optimizer keeps the binding
        source = 'let $x := 1 let $d := (trace("t", 1), error("boom")) return $x'
        assert "XQL001" not in codes(source)


ERROR_CONVENTION_PRELUDE = """
declare function local:is-error($v)
  { count($v) eq 1 and $v instance of element(error) };
declare function local:mk-error($m) { <error>{ $m }</error> };
declare function local:lookup($x)
  { if (empty($x)) then local:mk-error("missing") else $x };
"""


class TestUncheckedErrorValue:
    def test_embedding_fallible_result_in_content_fires(self):
        source = ERROR_CONVENTION_PRELUDE + "<out>{ local:lookup(()) }</out>"
        assert "XQL002" in codes(source)

    def test_checked_result_does_not_fire(self):
        source = ERROR_CONVENTION_PRELUDE + (
            "let $r := local:lookup(()) return "
            'if (local:is-error($r)) then "failed" else <out>{ $r }</out>'
        )
        assert "XQL002" not in codes(source)

    def test_tail_propagation_inside_a_function_does_not_fire(self):
        # returning the fallible result unchecked IS the convention:
        # the caller checks.
        source = ERROR_CONVENTION_PRELUDE + (
            "declare function local:outer($x) { local:lookup($x) };"
            "let $r := local:outer(()) return "
            "if (local:is-error($r)) then () else $r"
        )
        assert "XQL002" not in codes(source)

    def test_calling_the_constructor_itself_does_not_fire(self):
        # mk-error is intentional construction, not an unchecked use
        source = ERROR_CONVENTION_PRELUDE + 'local:mk-error("on purpose")'
        assert "XQL002" not in codes(source)

    def test_fallibility_propagates_through_wrappers(self):
        source = ERROR_CONVENTION_PRELUDE + (
            "declare function local:wrapper($x) { local:lookup($x) };"
            "<out>{ local:wrapper(()) }</out>"
        )
        assert "XQL002" in codes(source)

    def test_without_a_checker_the_convention_is_not_in_force(self):
        # modules that never declare is-error aren't using the convention
        source = (
            "declare function local:mk($m) { <error>{ $m }</error> };"
            "<out>{ local:mk('x') }</out>"
        )
        assert "XQL002" not in codes(source)


class TestPositionalPredicates:
    def test_index_beyond_known_length_is_an_error(self):
        diagnostics = [
            d for d in analyze_source("(1, 2)[3]") if d.code == "XQL003"
        ]
        assert [d.severity for d in diagnostics] == ["error"]

    def test_index_zero_is_an_error(self):
        diagnostics = [
            d for d in analyze_source("(1, 2)[0]") if d.code == "XQL003"
        ]
        assert [d.severity for d in diagnostics] == ["error"]

    def test_e1_concatenation_of_unknown_parts_warns(self):
        source = (
            "declare variable $x external; declare variable $y external;"
            "declare variable $z external; ($x, $y, $z)[2]"
        )
        diagnostics = [d for d in analyze_source(source) if d.code == "XQL003"]
        assert [d.severity for d in diagnostics] == ["warning"]

    def test_position_eq_form_is_recognized(self):
        assert "XQL003" in codes("(1, 2)[position() = 5]")

    def test_indexing_exactly_one_parts_is_clean(self):
        assert "XQL003" not in codes("(1, 2, 3)[2]")

    def test_paper_idiom_path_then_first_is_clean(self):
        # the corpus' `(path)[1]` idiom must never be flagged
        source = "declare variable $doc external; ($doc/child::a)[1]"
        assert "XQL003" not in codes(source)

    def test_let_bound_cardinality_is_tracked(self):
        source = "let $pair := (1, 2) return $pair[5]"
        diagnostics = [d for d in analyze_source(source) if d.code == "XQL003"]
        assert [d.severity for d in diagnostics] == ["error"]


class TestAttributeFolding:
    def test_leading_computed_attribute_in_direct_content_is_noted(self):
        diagnostics = [
            d
            for d in analyze_source("<a>{ attribute x { 1 } }</a>")
            if d.code == "XQL004"
        ]
        assert [d.severity for d in diagnostics] == ["info"]

    def test_attribute_after_content_is_an_error(self):
        diagnostics = [
            d
            for d in analyze_source("<a>text{ attribute x { 1 } }</a>")
            if d.code == "XQL004"
        ]
        assert any(d.severity == "error" for d in diagnostics)
        assert any(d.spec_code == "XQTY0024" for d in diagnostics)

    def test_duplicate_attribute_name_warns(self):
        diagnostics = [
            d
            for d in analyze_source('<a x="1">{ attribute x { 2 } }</a>')
            if d.code == "XQL004"
        ]
        assert any(d.severity == "warning" for d in diagnostics)

    def test_attribute_flow_through_let_is_tracked(self):
        source = "let $attr := attribute x { 1 } return <a>text{ $attr }</a>"
        diagnostics = [d for d in analyze_source(source) if d.code == "XQL004"]
        assert any(d.severity == "error" for d in diagnostics)

    def test_plain_element_content_is_clean(self):
        assert "XQL004" not in codes("<a>text{ <b/> }</a>")

    def test_computed_constructor_attrs_first_idiom_is_clean(self):
        # `element e { attribute a {...}, content }` is the idiomatic
        # ordering — no folding surprise to warn about
        source = "element e { attribute a { 1 }, <b/> }"
        assert "XQL004" not in codes(source)

    def test_computed_constructor_attr_after_content_is_an_error(self):
        source = "element e { <b/>, attribute a { 1 } }"
        diagnostics = [d for d in analyze_source(source) if d.code == "XQL004"]
        assert any(d.severity == "error" for d in diagnostics)


class TestDeadCode:
    def test_unused_function(self):
        assert "XQL005" in codes(
            "declare function local:orphan($x) { $x }; 42"
        )

    def test_used_function_is_clean(self):
        assert "XQL005" not in codes(
            "declare function local:used($x) { $x }; local:used(1)"
        )

    def test_unused_global_variable(self):
        assert "XQL005" in codes("declare variable $unused := 1; 42")

    def test_unused_let_is_informational(self):
        diagnostics = [
            d
            for d in analyze_source("let $unused := 1 return 42")
            if d.code == "XQL005"
        ]
        assert [d.severity for d in diagnostics] == ["info"]

    def test_constant_condition_unreachable_branch(self):
        assert "XQL005" in codes('if (true()) then 1 else "never"')

    def test_constant_false_where_clause(self):
        assert "XQL005" in codes("for $x in 1 to 3 where false() return $x")

    def test_live_code_is_clean(self):
        assert "XQL005" not in codes(
            "declare variable $n := 2;"
            "for $x in 1 to $n where $x gt 1 return $x"
        )


class TestShadowing:
    def test_let_shadows_let(self):
        assert "XQL006" in codes("let $x := 1 let $x := 2 return $x")

    def test_for_shadows_outer_for(self):
        assert "XQL006" in codes(
            "for $i in 1 to 2 return for $i in 3 to 4 return $i"
        )

    def test_parameter_shadows_global(self):
        assert "XQL006" in codes(
            "declare variable $x := 1;"
            "declare function local:f($x) { $x }; local:f($x)"
        )

    def test_distinct_names_are_clean(self):
        assert "XQL006" not in codes(
            "let $x := 1 let $y := 2 return $x + $y"
        )

    def test_sibling_flwors_do_not_shadow_each_other(self):
        source = (
            "(for $i in 1 to 2 return $i), (for $i in 3 to 4 return $i)"
        )
        assert "XQL006" not in codes(source)


class TestRehomedChecks:
    def test_undefined_variable_is_xql007(self):
        diagnostics = [d for d in analyze_source("$nope") if d.code == "XQL007"]
        assert len(diagnostics) == 1
        assert diagnostics[0].spec_code == "XPST0008"
        assert diagnostics[0].severity == "error"

    def test_unknown_function_is_xql008(self):
        diagnostics = [
            d for d in analyze_source("no-such-fn(1)") if d.code == "XQL008"
        ]
        assert len(diagnostics) == 1
        assert diagnostics[0].spec_code == "XPST0017"

    def test_wrong_arity_is_xql008(self):
        assert "XQL008" in codes("count(1, 2, 3)")

    def test_clean_module_has_neither(self):
        found = codes("declare function local:f($x) { $x + 1 }; local:f(2)")
        assert "XQL007" not in found
        assert "XQL008" not in found


class TestCartesianProduct:
    NODES = 'doc("m")/model/node'
    RELS = 'doc("m")/model/relation'

    def test_unlinked_second_for_fires(self):
        found = [
            d
            for d in analyze_source(
                f"for $a in {self.NODES} for $b in {self.RELS} return $b"
            )
            if d.code == "XQL009"
        ]
        assert len(found) == 1
        assert "$b" in found[0].message
        assert found[0].severity == "warning"

    def test_join_predicate_in_source_is_clean(self):
        source = (
            f"for $a in {self.NODES} "
            f"for $b in {self.RELS}[@source eq $a/@id] return $b"
        )
        assert "XQL009" not in codes(source)

    def test_where_clause_join_is_clean(self):
        source = (
            f"for $a in {self.NODES} for $b in {self.RELS} "
            f"where $b/@source eq $a/@id return $b"
        )
        assert "XQL009" not in codes(source)

    def test_where_on_one_side_only_still_fires(self):
        source = (
            f"for $a in {self.NODES} for $b in {self.RELS} "
            f'where $b/@type eq "calls" return $b'
        )
        assert "XQL009" in codes(source)

    def test_nested_flwor_spelling_fires_once(self):
        source = (
            f"for $a in {self.NODES} return "
            f"for $b in {self.RELS} return ($a, $b)"
        )
        assert codes(source).count("XQL009") == 1

    def test_nested_flwor_with_join_predicate_is_clean(self):
        source = (
            f"for $a in {self.NODES} return "
            f"for $b in {self.RELS}[@target eq $a/@id] return $b"
        )
        assert "XQL009" not in codes(source)

    def test_let_mediated_where_join_is_clean(self):
        # the join goes through a let derived from the suspect binding
        source = (
            f"for $a in {self.NODES} for $b in {self.RELS} "
            f"let $k := $b/@source where $k eq $a/@id return $b"
        )
        assert "XQL009" not in codes(source)

    def test_source_through_derived_let_is_clean(self):
        # root($a) taints $r; $r-based sources are joined via the predicate
        source = (
            f"for $a in {self.NODES} let $r := root($a) "
            f"for $b in $r/model/relation[@source eq $a/@id] return $b"
        )
        assert "XQL009" not in codes(source)

    def test_single_for_never_fires(self):
        assert "XQL009" not in codes(f"for $a in {self.NODES} return $a")

    def test_literal_singleton_source_is_not_flagged(self):
        assert "XQL009" not in codes(
            f"for $a in {self.NODES} for $b in 3 return $a"
        )


class TestSelectionAndOrdering:
    SOURCE = 'let $d := trace("t", 1) return $nope'

    def test_select_restricts_rules(self):
        assert codes(self.SOURCE, select=["XQL001"]) == ["XQL001"]

    def test_ignore_drops_rules(self):
        assert "XQL001" not in codes(self.SOURCE, ignore=["XQL001"])

    def test_diagnostics_are_sorted_by_location(self):
        diagnostics = analyze_source(self.SOURCE)
        keys = [(d.line, d.column) for d in diagnostics]
        assert keys == sorted(keys)

    def test_source_label_is_applied(self):
        diagnostics = analyze_source(self.SOURCE, source_label="q.xq")
        assert all(d.source == "q.xq" for d in diagnostics)

    def test_render_shape(self):
        (diagnostic,) = analyze_source("$nope", source_label="q.xq")
        text = diagnostic.render()
        assert text.startswith("q.xq:1:")
        assert "XQL007" in text
        assert "(XPST0008)" in text
        assert "[error]" in text
