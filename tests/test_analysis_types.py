"""The schema-aware type & path inference pass (PR 7's tentpole).

Covers the pieces in dependency order: the occurrence/item lattices, the
whole-module inference (``infer_body_type``), the runtime admission check
the fuzz soundness oracle uses (``check_sequence``), the re-homed
XQL007/XQL008 statictype checks, the three typed lint rules XQL010-XQL012,
and the engine surfaces (``EngineConfig.lint_schema``, ``static_type`` in
explain output).
"""

import pytest

from repro.xquery import EngineConfig, XQueryEngine
from repro.xquery.analysis import analyze_source
from repro.xquery.analysis.cardinality import Card, EMPTY, ONE, OPT, PLUS, STAR
from repro.xquery.analysis.schema import awb_export_schema
from repro.xquery.analysis.types import (
    AbstractItem,
    check_sequence,
    infer_body_type,
    join_items,
    occurrence_indicator,
)
from repro.xquery.parser import parse_query


def infer(source):
    return infer_body_type(parse_query(source))


def codes(source, config=None):
    return [d.code for d in analyze_source(source, config=config)]


# -- occurrence indicators ----------------------------------------------------


@pytest.mark.parametrize(
    "card,indicator",
    [(EMPTY, "empty"), (ONE, "1"), (OPT, "?"), (STAR, "*"), (PLUS, "+"),
     (Card(2, 5), "+"), (Card(0, 3), "*")],
)
def test_occurrence_indicator(card, indicator):
    assert occurrence_indicator(card) == indicator


# -- the item lattice ---------------------------------------------------------


def test_join_items_common_atomic_supertype():
    integer = AbstractItem(kind="atomic", atomic="xs:integer")
    double = AbstractItem(kind="atomic", atomic="xs:double")
    string = AbstractItem(kind="atomic", atomic="xs:string")
    assert join_items(integer, integer) == integer
    # integer and double meet at the generic numeric/atomic level, never
    # at one of the two leaves.
    assert join_items(integer, double).atomic not in ("xs:integer", "xs:double")
    assert join_items(integer, string).kind == "atomic"
    assert join_items(integer, string).atomic is None


def test_join_items_node_vs_atomic_is_any_item():
    element = AbstractItem(kind="element", name="a")
    integer = AbstractItem(kind="atomic", atomic="xs:integer")
    assert join_items(element, integer).kind == "item"


# -- whole-body inference -----------------------------------------------------


@pytest.mark.parametrize(
    "source,described",
    [
        ("1 + 2", "xs:integer"),
        ("(1, 2, 3)", "xs:integer+"),
        ("()", "empty-sequence()"),
        ("xs:integer(())", "xs:integer?"),
        ("xs:integer(5)", "xs:integer"),
        ("text { () }", "text()?"),
        ("trace('label', 1)", "xs:integer"),
        ("1 to 5", "xs:integer+"),
        ("if (1 lt 2) then 'a' else 'b'", "xs:string"),
    ],
)
def test_infer_body_type(source, described):
    assert infer(source).describe() == described


def test_declared_function_shadows_builtin():
    # the runtime resolves declarations before builtins at any spelling;
    # the analyzer must agree (fuzz-found soundness bug).
    inferred = infer(
        "declare function local:count($x) { (1, 2, 3) };\nlocal:count(0)"
    )
    assert occurrence_indicator(inferred.card) in ("*", "+")


def test_descendant_attribute_step_is_unbounded():
    inferred = infer("(<r><b x='0'/><b x='1'/></r>)//@x")
    assert inferred.item.kind == "attribute"
    assert occurrence_indicator(inferred.card) == "*"


# -- check_sequence (the soundness oracle's admission check) ------------------


def test_check_sequence_accepts_inhabitants():
    inferred = infer("(1, 2)")
    assert check_sequence(inferred, [1, 2]) is None


def test_check_sequence_rejects_wrong_length():
    inferred = infer("1")
    message = check_sequence(inferred, [])
    assert message is not None and "below the inferred minimum" in message


def test_check_sequence_rejects_wrong_item():
    inferred = infer("'a'")
    message = check_sequence(inferred, [3])
    assert message is not None and "does not inhabit" in message


# -- re-homed statictype checks (XQL007/XQL008 still fire) --------------------


def test_undefined_variable_still_reported():
    assert "XQL007" in codes("$nope + 1") or any(
        c in ("XQL007", "XQL008") for c in codes("$nope + 1")
    )


def test_statictype_shim_reexports():
    # analysis/rules.py and older callers import from the old module path.
    from repro.xquery.statictype import StaticIssue, check_module  # noqa: F401

    issues = check_module(parse_query("unknown-fn(1, 2)"))
    assert any("unknown function" in issue.message for issue in issues)


# -- the typed rules ----------------------------------------------------------


DEAD_PATHS = [
    "declare variable $m external;\n$m/awb-model/relation/node",
    "declare variable $m external;\n$m/awb-model/node/@source",
    "declare variable $m external;\n$m/awb-model/widget",
]
ILL_TYPED = [
    '"three" + 1',
    '5 lt "five"',
    "-'oops'",
]
VACUOUS = [
    'declare variable $m external;\n$m/awb-model/node/property[@type eq "string"]',
    "declare variable $m external;\n$m/awb-model/node[@id]",
    'declare variable $m external;\n$m/awb-model/relation[@missing]',
]


@pytest.mark.parametrize("source", DEAD_PATHS)
def test_xql010_dead_paths(source):
    assert "XQL010" in codes(source)


@pytest.mark.parametrize("source", ILL_TYPED)
def test_xql011_ill_typed_operators(source):
    assert "XQL011" in codes(source)


@pytest.mark.parametrize("source", VACUOUS)
def test_xql012_vacuous_predicates(source):
    assert "XQL012" in codes(source)


def test_lint_schema_off_disables_typed_rules():
    config = EngineConfig(lint_schema="off")
    for source in DEAD_PATHS + VACUOUS:
        found = codes(source, config=config)
        assert "XQL010" not in found and "XQL012" not in found


def test_lint_schema_validation():
    with pytest.raises(ValueError):
        EngineConfig(lint_schema="relaxng")


def test_live_queries_stay_clean():
    # the via-xquery calculus templates navigate the real export; the
    # typed rules must not cry wolf on them.
    source = (
        "declare variable $model external;\n"
        "$model/awb-model/node[@type eq 'Server']/@id"
    )
    assert codes(source) == []


def test_lint_error_mode_rejects_dead_path():
    from repro.xquery.errors import XQueryStaticError

    engine = XQueryEngine(EngineConfig(lint="error"))
    with pytest.raises(XQueryStaticError):
        engine.compile("declare variable $m external;\n$m/awb-model/nodes")


# -- explain surfaces ---------------------------------------------------------


def test_explain_reports_static_type():
    engine = XQueryEngine(EngineConfig(backend="algebra"))
    query = engine.compile("(1, 2, 3)")
    explanation = query.explain()
    assert explanation["static_type"] == "xs:integer+"


def test_schema_shapes_findings_not_types():
    # the schema licenses findings but must never narrow inference: a
    # constructed <awb-model> element can violate it freely.
    schema = awb_export_schema()
    source = "<awb-model><bogus/></awb-model>/bogus"
    module = parse_query(source)
    inferred = infer_body_type(module, schema=schema)
    runtime = XQueryEngine(EngineConfig()).compile(source).run(backend="treewalk")
    assert check_sequence(inferred, list(runtime)) is None
