"""Tests for editor declarations and the rendered Omissions window."""

import pytest

from repro.awb import (
    Metamodel,
    MetamodelError,
    Model,
    load_metamodel,
    render_omissions_window,
)


class TestEditors:
    @pytest.fixture()
    def metamodel(self):
        mm = Metamodel("t")
        mm.add_node_type("Element")
        mm.add_node_type("Person", parent="Element")
        mm.add_node_type("User", parent="Person")
        mm.add_editor("AnyForm", "Element", widget="form")
        mm.add_editor("PersonForm", "Person", widget="form")
        return mm

    def test_editors_inherited_down_the_hierarchy(self, metamodel):
        names = [e.name for e in metamodel.editors_for("User")]
        assert names == ["PersonForm", "AnyForm"]  # most specific first

    def test_editor_scope(self, metamodel):
        metamodel.add_node_type("System", parent="Element")
        names = [e.name for e in metamodel.editors_for("System")]
        assert names == ["AnyForm"]

    def test_unknown_node_type_rejected(self, metamodel):
        with pytest.raises(MetamodelError):
            metamodel.add_editor("X", "Martian")

    def test_unknown_instance_type_gets_no_editors(self, metamodel):
        assert metamodel.editors_for("Martian") == []

    def test_builtin_it_metamodel_has_diagram_editors(self):
        mm = load_metamodel("it-architecture")
        widgets = {e.widget for e in mm.editors_for("SystemBeingDesigned")}
        assert "diagram" in widgets


class TestOmissionsWindow:
    def test_empty_model_suggests_system(self):
        model = Model(load_metamodel("it-architecture"))
        window = render_omissions_window(model)
        assert "Omissions" in window
        assert "SystemBeingDesigned" in window

    def test_clean_model_is_quiet(self):
        model = Model(load_metamodel("it-architecture"))
        model.create_node("SystemBeingDesigned", label="S")
        window = render_omissions_window(model)
        assert "nothing to suggest" in window

    def test_subject_shown_by_label(self):
        model = Model(load_metamodel("it-architecture"))
        model.create_node("SystemBeingDesigned", label="S")
        model.create_node("Document", label="The SCD")
        assert "[The SCD]" in render_omissions_window(model)

    def test_glass_catalog_never_mentions_system(self):
        model = Model(load_metamodel("glass-catalog"))
        model.create_node("Vase", label="V")
        window = render_omissions_window(model)
        assert "SystemBeingDesigned" not in window
        assert "price" in window
