"""Tests for the AWB metamodel: hierarchies, properties, advisories."""

import pytest

from repro.awb import Metamodel, MetamodelError, PropertyDecl, load_metamodel


@pytest.fixture()
def metamodel():
    mm = Metamodel("test")
    mm.add_node_type("Element", properties=[PropertyDecl("label")])
    mm.add_node_type("Person", parent="Element", properties=[
        PropertyDecl("firstName"), PropertyDecl("birthYear", "integer"),
    ])
    mm.add_node_type("User", parent="Person")
    mm.add_node_type("System", parent="Element")
    mm.add_relation_type("likes", endpoints=[("Person", "Person")])
    mm.add_relation_type("favors", parent="likes")
    mm.add_relation_type("uses", endpoints=[("Person", "System")])
    return mm


class TestNodeTypes:
    def test_subtype_chain(self, metamodel):
        assert metamodel.is_node_subtype("User", "Person")
        assert metamodel.is_node_subtype("User", "Element")
        assert metamodel.is_node_subtype("User", "User")
        assert not metamodel.is_node_subtype("Person", "User")

    def test_unknown_type_is_only_itself(self, metamodel):
        assert metamodel.is_node_subtype("Martian", "Martian")
        assert not metamodel.is_node_subtype("Martian", "Element")

    def test_property_inheritance(self, metamodel):
        properties = metamodel.node_type("User").all_properties()
        assert set(properties) == {"label", "firstName", "birthYear"}

    def test_nearest_declaration_wins(self, metamodel):
        metamodel.add_node_type(
            "Admin", parent="User", properties=[PropertyDecl("firstName", "html")]
        )
        assert metamodel.node_type("Admin").property_decl("firstName").type == "html"

    def test_subtype_names(self, metamodel):
        assert set(metamodel.node_subtype_names("Person")) == {"Person", "User"}

    def test_duplicate_type_rejected(self, metamodel):
        with pytest.raises(MetamodelError):
            metamodel.add_node_type("Person")

    def test_unknown_parent_rejected(self, metamodel):
        with pytest.raises(MetamodelError):
            metamodel.add_node_type("X", parent="NoSuch")

    def test_bad_property_type_rejected(self):
        with pytest.raises(ValueError):
            PropertyDecl("x", "varchar")


class TestRelationTypes:
    def test_relation_subtyping(self, metamodel):
        assert metamodel.is_relation_subtype("favors", "likes")
        assert not metamodel.is_relation_subtype("likes", "favors")

    def test_relation_subtype_names(self, metamodel):
        assert set(metamodel.relation_subtype_names("likes")) == {"likes", "favors"}

    def test_endpoints_inherited(self, metamodel):
        assert metamodel.relation_type("favors").all_endpoints() == [
            ("Person", "Person")
        ]

    def test_endpoint_allowed_with_subtypes(self, metamodel):
        assert metamodel.endpoint_allowed("likes", "User", "User")
        assert not metamodel.endpoint_allowed("uses", "System", "Person")

    def test_unknown_relation_allows_everything(self, metamodel):
        assert metamodel.endpoint_allowed("invented", "User", "System")

    def test_relation_without_endpoints_allows_everything(self, metamodel):
        metamodel.add_relation_type("related")
        assert metamodel.endpoint_allowed("related", "User", "Martian")


class TestAdvisories:
    def test_advise_collects(self, metamodel):
        metamodel.advise("exactly-one-node", "System")
        assert len(metamodel.advisories) == 1


class TestBuiltins:
    def test_it_architecture_builds(self):
        mm = load_metamodel("it-architecture")
        assert mm.is_node_subtype("Superuser", "Person")
        assert mm.is_relation_subtype("favors", "likes")
        assert any(a.kind == "exactly-one-node" for a in mm.advisories)

    def test_glass_catalog_has_no_system_advisory(self):
        # "the glass catalog doesn't have a SystemBeingDesigned node at
        # all, nor a warning about it".
        mm = load_metamodel("glass-catalog")
        assert not any(a.type == "SystemBeingDesigned" for a in mm.advisories)
        assert mm.is_node_subtype("Vase", "GlassPiece")

    def test_awb_itself_builds(self):
        mm = load_metamodel("awb-itself")
        assert mm.node_type("NodeTypeDef") is not None

    def test_unknown_metamodel(self):
        with pytest.raises(KeyError):
            load_metamodel("no-such")

    def test_fresh_instances(self):
        assert load_metamodel("glass-catalog") is not load_metamodel("glass-catalog")
