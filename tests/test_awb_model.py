"""Tests for the AWB model graph: nodes, relations, advisory philosophy."""

import pytest

from repro.awb import Model, load_metamodel


@pytest.fixture()
def model():
    return Model(load_metamodel("it-architecture"), name="t")


class TestNodes:
    def test_create_with_properties(self, model):
        node = model.create_node("User", label="Alice", birthYear=1970)
        assert node.label == "Alice"
        assert node.get("birthYear") == 1970

    def test_ids_are_sequential(self, model):
        first = model.create_node("User")
        second = model.create_node("User")
        assert (first.id, second.id) == ("N1", "N2")

    def test_label_falls_back_to_id(self, model):
        assert model.create_node("User").label == "N1"

    def test_defaults_applied(self, model):
        server = model.create_node("Server")
        assert server.get("cpuCount") == 1

    def test_ad_hoc_property_allowed(self, model):
        # "A user can add a new property to a particular node"
        node = model.create_node("Person", label="P")
        node.set("middleName", "Q")
        assert node.get("middleName") == "Q"

    def test_unknown_type_allowed_with_warning(self, model):
        node = model.create_node("Martian", label="Zork")
        assert node in model.all_nodes()
        assert any(w.kind == "unknown-node-type" for w in model.warnings)

    def test_nodes_of_type_includes_subtypes(self, model):
        model.create_node("User", label="u")
        model.create_node("Superuser", label="s")
        assert len(model.nodes_of_type("User")) == 2
        assert len(model.nodes_of_type("User", include_subtypes=False)) == 1

    def test_duplicate_id_rejected(self, model):
        model.create_node("User", node_id="N9")
        with pytest.raises(ValueError):
            model.create_node("User", node_id="N9")

    def test_is_type(self, model):
        superuser = model.create_node("Superuser")
        assert superuser.is_type("Person") and not superuser.is_type("System")


class TestRelations:
    def test_connect_and_navigate(self, model):
        alice = model.create_node("User", label="Alice")
        bob = model.create_node("User", label="Bob")
        model.connect(alice, "likes", bob)
        assert model.targets(alice, "likes") == [bob]
        assert model.sources(bob, "likes") == [alice]

    def test_multigraph_allows_parallel_edges(self, model):
        a = model.create_node("User")
        b = model.create_node("User")
        model.connect(a, "likes", b)
        model.connect(a, "likes", b)
        assert len(model.outgoing(a, "likes")) == 2

    def test_subrelations_included_by_default(self, model):
        a = model.create_node("User")
        b = model.create_node("User")
        model.connect(a, "favors", b)
        assert len(model.outgoing(a, "likes")) == 1
        assert model.outgoing(a, "likes", include_subrelations=False) == []

    def test_relation_properties(self, model):
        a = model.create_node("User")
        b = model.create_node("User")
        relation = model.connect(a, "likes", b, since=1999)
        assert relation.properties["since"] == 1999

    def test_advisory_violation_warns_but_connects(self, model):
        # "the user can make a Person use a Program"
        person = model.create_node("Person")
        program = model.create_node("Program")
        relation = model.connect(person, "uses", program)
        assert relation.id in model.relations
        assert any(
            w.kind == "advisory-endpoint-violation" for w in model.warnings
        )

    def test_unknown_relation_warns_but_connects(self, model):
        a = model.create_node("User")
        b = model.create_node("User")
        model.connect(a, "telepathicallyLinks", b)
        assert any(w.kind == "unknown-relation-type" for w in model.warnings)

    def test_foreign_node_rejected(self, model):
        other = Model(load_metamodel("it-architecture"))
        foreign = other.create_node("User")
        local = model.create_node("User")
        with pytest.raises(ValueError):
            model.connect(local, "likes", foreign)


class TestRemoval:
    def test_remove_relation(self, model):
        a = model.create_node("User")
        b = model.create_node("User")
        relation = model.connect(a, "likes", b)
        model.remove_relation(relation)
        assert model.outgoing(a) == [] and model.incoming(b) == []

    def test_remove_node_cascades(self, model):
        a = model.create_node("User")
        b = model.create_node("User")
        model.connect(a, "likes", b)
        model.connect(b, "likes", a)
        model.remove_node(b)
        assert b.id not in model.nodes
        assert model.relations == {}
        assert model.outgoing(a) == []

    def test_relation_order_preserved_after_interleaved_removal(self, model):
        hub = model.create_node("User")
        spokes = [model.create_node("User") for _ in range(5)]
        relations = [model.connect(hub, "likes", spoke) for spoke in spokes]
        model.remove_relation(relations[2])
        assert model.outgoing(hub) == [
            relations[0], relations[1], relations[3], relations[4]
        ]

    def test_hub_removal_scales(self, model):
        # 10k relations off one hub: with the old list.remove() unlink this
        # cascade was O(degree^2) and took tens of seconds; the id-indexed
        # adjacency makes it O(degree).
        import time

        hub = model.create_node("User")
        spokes = [model.create_node("User") for _ in range(10_000)]
        for spoke in spokes:
            model.connect(hub, "likes", spoke)
        started = time.perf_counter()
        model.remove_node(hub)
        elapsed = time.perf_counter() - started
        assert model.relations == {}
        assert elapsed < 1.0

    def test_stats(self, model):
        model.create_node("User")
        assert model.stats()["nodes"] == 1
