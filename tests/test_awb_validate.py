"""Tests for suggestive validation: the Omissions window."""

import pytest

from repro.awb import Model, all_omissions, check_advisories, load_metamodel


@pytest.fixture()
def model():
    return Model(load_metamodel("it-architecture"))


class TestExactlyOne:
    def test_zero_nodes_warns(self, model):
        omissions = check_advisories(model)
        assert any(o.kind == "exactly-one-node" for o in omissions)

    def test_one_node_is_quiet(self, model):
        model.create_node("SystemBeingDesigned", label="S")
        assert not any(
            o.kind == "exactly-one-node" for o in check_advisories(model)
        )

    def test_two_nodes_warn(self, model):
        model.create_node("SystemBeingDesigned")
        model.create_node("SystemBeingDesigned")
        omissions = [o for o in check_advisories(model) if o.kind == "exactly-one-node"]
        assert len(omissions) == 1 and "found 2" in omissions[0].message

    def test_never_an_error(self, model):
        # suggestive, not prescriptive: nothing raises, ever.
        model.create_node("SystemBeingDesigned")
        model.create_node("SystemBeingDesigned")
        assert isinstance(check_advisories(model), list)


class TestRequiredProperty:
    def test_missing_version_flagged(self, model):
        model.create_node("SystemBeingDesigned")
        document = model.create_node("Document", label="SCD")
        omissions = [
            o for o in check_advisories(model) if o.kind == "required-property"
        ]
        assert len(omissions) == 1
        assert omissions[0].subject_id == document.id

    def test_blank_version_flagged(self, model):
        model.create_node("SystemBeingDesigned")
        model.create_node("Document", label="SCD", version="   ")
        assert any(
            o.kind == "required-property" for o in check_advisories(model)
        )

    def test_present_version_quiet(self, model):
        model.create_node("SystemBeingDesigned")
        model.create_node("Document", label="SCD", version="1.0")
        assert not any(
            o.kind == "required-property" for o in check_advisories(model)
        )


class TestAllOmissions:
    def test_includes_model_warnings(self, model):
        model.create_node("SystemBeingDesigned")
        model.create_node("Weirdo")  # unknown type
        omissions = all_omissions(model)
        assert any(o.kind == "unknown-node-type" for o in omissions)

    def test_glass_catalog_rules(self):
        glass = Model(load_metamodel("glass-catalog"))
        glass.create_node("Vase", label="V")  # no price
        omissions = check_advisories(glass)
        assert any("price" in o.message for o in omissions)
        # and no SystemBeingDesigned complaint, ever
        assert not any("SystemBeingDesigned" in o.message for o in omissions)
