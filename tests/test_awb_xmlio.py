"""Tests for AWB model XML export/import and metamodel export."""

import pytest

from repro.awb import (
    Model,
    ModelImportError,
    export_metamodel,
    export_model,
    export_model_text,
    import_model_text,
    load_metamodel,
)
from repro.xmlio import serialize


@pytest.fixture()
def model():
    mm = load_metamodel("it-architecture")
    m = Model(mm, name="exported")
    system = m.create_node("SystemBeingDesigned", label="Core")
    alice = m.create_node(
        "User", label="Alice", birthYear=1970,
        biography="<p>Architect &amp; <b>builder</b></p>",
    )
    m.connect(system, "has", alice, since=2001)
    return m


class TestExport:
    def test_root_shape(self, model):
        root = export_model(model).document_element()
        assert root.name == "awb-model"
        assert root.get_attribute("metamodel") == "it-architecture"
        assert len(root.child_elements("node")) == 2
        assert len(root.child_elements("relation")) == 1

    def test_scalar_property_types_annotated(self, model):
        text = export_model_text(model)
        assert '<property name="birthYear" type="integer">1970</property>' in text

    def test_html_property_exports_as_markup(self, model):
        # the schema-drift behaviour: html properties become child elements.
        text = export_model_text(model)
        assert "<html-value>" in text and "<b>builder</b>" in text

    def test_relation_attributes(self, model):
        root = export_model(model).document_element()
        relation = root.child_elements("relation")[0]
        assert relation.get_attribute("source") == "N1"
        assert relation.get_attribute("target") == "N2"
        assert relation.get_attribute("type") == "has"


class TestRoundtrip:
    def test_full_roundtrip(self, model):
        text = export_model_text(model)
        rebuilt = import_model_text(text, model.metamodel)
        assert rebuilt.stats()["nodes"] == 2
        assert rebuilt.stats()["relations"] == 1
        alice = rebuilt.node("N2")
        assert alice.get("birthYear") == 1970
        assert "<b>builder</b>" in alice.get("biography")

    def test_relation_properties_roundtrip(self, model):
        rebuilt = import_model_text(export_model_text(model), model.metamodel)
        relation = next(iter(rebuilt.relations.values()))
        assert relation.properties["since"] == 2001

    def test_booleans_roundtrip(self):
        mm = load_metamodel("awb-itself")
        m = Model(mm)
        m.create_node("NodeTypeDef", label="X", abstract=True)
        rebuilt = import_model_text(export_model_text(m), mm)
        assert rebuilt.node("N1").get("abstract") is True


class TestImportErrors:
    def test_wrong_root(self):
        with pytest.raises(ModelImportError):
            import_model_text("<nope/>", load_metamodel("it-architecture"))

    def test_node_missing_id(self):
        xml = '<awb-model><node type="User"/></awb-model>'
        with pytest.raises(ModelImportError):
            import_model_text(xml, load_metamodel("it-architecture"))

    def test_dangling_relation_endpoint(self):
        xml = (
            '<awb-model><node id="N1" type="User"/>'
            '<relation id="R1" type="has" source="N1" target="N99"/></awb-model>'
        )
        with pytest.raises(ModelImportError):
            import_model_text(xml, load_metamodel("it-architecture"))


class TestMetamodelExport:
    def test_shape(self):
        root = export_metamodel(load_metamodel("it-architecture"))
        assert root.name == "metamodel"
        assert root.get_attribute("label-property") == "label"
        names = {e.get_attribute("name") for e in root.child_elements("node-type")}
        assert {"User", "Superuser", "System"} <= names

    def test_parent_links(self):
        root = export_metamodel(load_metamodel("it-architecture"))
        superuser = [
            e
            for e in root.child_elements("node-type")
            if e.get_attribute("name") == "Superuser"
        ][0]
        assert superuser.get_attribute("parent") == "User"

    def test_relation_hierarchy(self):
        root = export_metamodel(load_metamodel("it-architecture"))
        favors = [
            e
            for e in root.child_elements("relation-type")
            if e.get_attribute("name") == "favors"
        ][0]
        assert favors.get_attribute("parent") == "likes"

    def test_serializes(self):
        text = serialize(export_metamodel(load_metamodel("glass-catalog")))
        assert "node-type" in text
