"""Differential parity: every backend must match the treewalk exactly.

Neither the closure compiler (:mod:`repro.xquery.compiler`) nor the
algebra backend (:mod:`repro.xquery.algebra`) shares the treewalk's
interpreter loop, so their fidelity to the period-accurate quirks is
asserted *here*, by running the same programs under all backends and
comparing serialized results, trace output, and error codes.  The corpus
mirrors the benchmark suite: the e01 sequence-indexing rows, the e02
attribute-folding programs under every duplicate-attribute mode, the error
regimes (spec codes and Galax diagnostics), the trace-optimizer deletion
bug, and the real docgen/querycalc workloads end to end — the calculus
workloads through every implementation, including the query service cold
and warm (the warm hit must replay the cold result and its traces).

The comparison currency lives in :mod:`repro.testing.oracle`; the fuzzer
(``python -m repro.testing.fuzz``) drives the same functions over
generated programs, so a divergence found either way reproduces in both
harnesses.
"""

import pytest

from repro.awb import export_model
from repro.docgen import XQueryDocumentGenerator
from repro.querycalc import XQueryCalculusBackend, parse_query_xml
from repro.testing.oracle import (
    assert_calculus_parity,
    run_outcome as outcome,  # noqa: F401  (the shared single-backend runner)
    xquery_outcomes,
)
from repro.workloads import make_it_model, system_context_template
from repro.xmlio import serialize
from repro.xquery import EngineConfig, XQueryEngine
from repro.xquery.api import BACKENDS


def assert_parity(source, config=None, **run_kwargs):
    results = xquery_outcomes(source, config, run_kwargs)
    for backend in BACKENDS:
        assert results[backend] == results["treewalk"], (backend, source)
    assert results["treewalk"][0] != "crash", results["treewalk"]
    return results["treewalk"]


# -- expression corpus (examples + language features) -------------------------

EXPRESSIONS = [
    # from examples/quickstart.py
    "for $i in 1 to 5 return $i * $i",
    "1 = (1,2,3)",
    "(1,2) != (1,2)",
    "(1,(2,3),(),(4,(5)))",
    # arithmetic / unary / precedence
    "2 + 3 * 4 - 6 div 4",
    "-(1, 2)[1] + 7 mod 3",
    "10 idiv 3",
    # comparisons, all three styles
    "1 < 2 and 'a' le 'b' or not(true())",
    "let $a := <x/> let $b := <y/> return ($a is $a, $a is $b, $a << $b)",
    # sequences, ranges, predicates
    "(1 to 10)[. mod 2 = 0]",
    "(1 to 10)[position() > 7][last()]",
    "reverse((1 to 4))[2]",
    # FLWOR: where / order by / positional var / nested for
    "for $i at $p in ('c','a','b') order by $i descending return concat($p, $i)",
    "for $i in 1 to 3 for $j in 1 to 3 where $i < $j return $i * 10 + $j",
    "let $s := (3, 1, 2) for $x in $s order by $x return $x + 100",
    "for $x in (1, 2) let $y := $x + 1 return ($y, $y)",
    # quantified
    "some $x in (1,2,3) satisfies $x > 2",
    "every $x in (1,2,3), $y in (4,5) satisfies $x < $y",
    # conditionals / typeswitch / try-catch
    "if ((0)) then 'yes' else 'no'",
    "typeswitch (<a/>) case $e as element() return 'elem' default return 'other'",
    "try { 1 div 0 } catch { 'caught' }",
    "try { error('boom') } catch $e { $e//message/text() }",
    # casts and type tests
    "xs:integer('42') + 1",
    "'3.5' castable as xs:decimal",
    "(1, 2) instance of xs:integer+",
    "() cast as xs:integer?",
    "5 treat as xs:integer",
    # constructors: direct, computed, nested, attributes
    "<a b='{1+1}'>text{2+3}<c/></a>",
    "element {concat('d', 'iv')} {attribute class {'x'}, 'body'}",
    "document {<r><k>1</k></r>}//k/text()",
    "<out>{for $i in 1 to 3 return <n>{$i}</n>}</out>",
    "text {1, 2, 3}",
    "comment {'notes'}",
    # paths and axes over constructed trees
    "<r><a><b>1</b></a><a><b>2</b></a></r>/a/b/text()",
    "<r><a x='1'/><a x='2'/></r>/a/@x",
    "(<r><a/><b/><c/></r>)/b/following-sibling::*",
    "(<r><a><b/></a></r>)//b/ancestor::*[last()]",
    "<r><a/>mid<b/></r>/node()",
    "count(<r><a><a/></a></r>//a)",
    # set operations
    "let $r := <r><a/><b/></r> return count(($r/a, $r/b) union $r/*)",
    "let $r := <r><a/><b/></r> return ($r/* except $r/b)/name(.)",
    "let $r := <r><a/><b/></r> return ($r/* intersect $r/a)/name(.)",
    # string / aggregate builtins
    "string-join(for $i in 1 to 3 return string($i), '-')",
    "sum((1, 2, 3.5)), avg((2, 4)), min((3, 1)), max((3, 1))",
    "concat('a', 'b', 'c'), substring('hello', 2, 3), upper-case('x')",
    "distinct-values((1, 2, 1, 'a', 'a'))",
    # user functions, recursion, defaults of the function scope
    "declare function local:twice($x) { $x * 2 }; local:twice(21)",
    (
        "declare function local:down($n as xs:integer) as xs:integer* "
        "{ if ($n = 0) then () else ($n, local:down($n - 1)) }; "
        "local:down(4)"
    ),
    (
        "declare function local:even($n) { if ($n = 0) then true() else local:odd($n - 1) }; "
        "declare function local:odd($n) { if ($n = 0) then false() else local:even($n - 1) }; "
        "local:even(10)"
    ),
    # declared globals referencing each other
    "declare variable $base := 10; declare variable $top := $base * 4; $top - $base",
]


@pytest.mark.parametrize("source", EXPRESSIONS)
def test_expression_parity(source):
    assert_parity(source)


# -- e01: the sequence-indexing quirk table -----------------------------------

E01_ROWS = [
    ("1", "2", "3"),
    ("1", '(2, "2a")', "4"),
    ("1", "()", "3"),
    ('("1a","1b")', "2", "3"),
    ("1", "()", '("3a","3b")'),
    ("()", "(2)", "()"),
    ("1", 'attribute y {"why?"}', "2"),
]


@pytest.mark.parametrize("x,y,z", E01_ROWS)
def test_e01_sequence_indexing_parity(x, y, z):
    prefix = f"let $x := {x} let $y := {y} let $z := {z} return "
    assert_parity(prefix + "($x, $y, $z)[2]")
    assert_parity(prefix + "<el>{$x}{$y}{$z}</el>")


# -- e02: attribute folding under every duplicate mode ------------------------

E02_SOURCES = [
    "let $x := attribute troubles {1} return <el> {$x} </el>",
    (
        "let $a := attribute a {1} let $b := attribute a {2} "
        "let $c := attribute b {3} return <el> {$a}{$b}{$c} </el>"
    ),
    'let $x := attribute troubles {1} return <el> "doom" {$x} </el>',
]


@pytest.mark.parametrize("source", E02_SOURCES)
@pytest.mark.parametrize("mode", ["last", "first", "keep", "error"])
def test_e02_attribute_folding_parity(source, mode):
    assert_parity(source, EngineConfig(duplicate_attribute_mode=mode))


# -- the error corpus: identical classes, codes, and messages -----------------

ERROR_SOURCES = [
    "$missing",  # XPST0008
    ".",  # XPDY0002: absent context item
    "(1,2) + 3",  # XPTY0004 from the arithmetic operator
    "1 + <a>x</a>",  # promotion failure
    "-'text'",  # unary type error
    "(1,2) eq 3",  # value comparison cardinality
    "('a','b') is <x/>",  # node comparison on non-singletons
    "1/child::a",  # XPTY0019: step over an atomic
    "<a>{2}</a>/(1, <b/>)",  # XPTY0018: mixed step result
    "(1, 2) to 3",  # 'to' cardinality
    "let $x := attribute a {1} return <el>x{$x}</el>",  # XQTY0024
    "xs:integer('nope')",  # FORG0001
    "xs:integer(1, 2)",  # XPST0017: constructor arity
    "unknown:fn(1)",  # XPST0017
    "if (('x', 'y')) then 1 else 2",  # FORG0006 from EBV
    "1 div 0",  # FOAR0001
    "error('QQ')",  # FOER0000 user error
    "let $a := attribute a {1} return document { $a }",  # attr in document
    "5 treat as xs:string",  # XPDY0050
    "() cast as xs:integer",  # empty cast without '?'
    (
        "declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)"
    ),  # FOER0000 recursion guard
    (
        "declare function local:typed($x as xs:integer) { $x }; local:typed('a')"
    ),  # XPTY0004 argument type check
]


@pytest.mark.parametrize("source", ERROR_SOURCES)
def test_error_parity(source):
    result = assert_parity(source)
    assert result[0] == "error", source


@pytest.mark.parametrize("source", ["$missing", "$glx"])
def test_galax_diagnostics_parity(source):
    result = assert_parity(source, EngineConfig(galax_diagnostics=True))
    assert result[3] == "Internal_Error: Variable '$glx:dot' not found."


def test_recursion_limit_parity():
    source = "declare function local:f($n) { if ($n = 0) then 0 else local:f($n - 1) }; local:f(50)"
    ok = assert_parity(source, EngineConfig(max_recursion_depth=100))
    assert ok[0] == "ok"
    failed = assert_parity(source, EngineConfig(max_recursion_depth=10))
    assert failed[0] == "error" and failed[2] == "FOER0000"


# -- trace semantics and the trace-deletion optimizer bug ---------------------

TRACE_SOURCE = "let $d := trace('probe', 9) return trace('live', 1)"


def test_trace_parity():
    result = assert_parity(TRACE_SOURCE, EngineConfig(optimize=False))
    assert result[2] == ("probe 9", "live 1")


def test_trace_deletion_parity():
    # the buggy dead-code pass deletes the dead let's trace identically
    # under both backends (it runs on the shared AST, but parity proves the
    # closure compiler honours the post-optimizer tree).
    result = assert_parity(
        TRACE_SOURCE, EngineConfig(optimize=True, trace_is_dead_code=True)
    )
    assert "probe 9" not in result[2]


# -- external variables and host coercion -------------------------------------

def test_external_variable_parity():
    source = (
        "declare variable $xs external; declare variable $n external; "
        "sum($xs) * $n"
    )
    assert_parity(source, variables={"xs": [1, 2, 3], "n": 2})
    assert_parity(source, variables={"xs": (1, (2, 3)), "n": 2})


def test_context_item_parity():
    from repro.xmlio import parse_document

    doc = parse_document("<r><v>1</v><v>2</v></r>")
    assert_parity("sum(/r/v)", context_item=doc)
    assert_parity("//v[2]/text()", context_item=doc)


# -- end to end: the paper's workloads under both backends --------------------

def _docgen_fingerprint(backend):
    model = make_it_model(scale=3)
    generator = XQueryDocumentGenerator(model, config=EngineConfig(backend=backend))
    result = generator.generate(system_context_template())
    return (
        serialize(result.document),
        [repr(p) for p in result.problems],
        [repr(entry) for entry in result.toc],
        result.visited_node_ids,
    )


def test_docgen_end_to_end_parity():
    treewalk = _docgen_fingerprint("treewalk")
    for backend in BACKENDS[1:]:
        assert _docgen_fingerprint(backend) == treewalk, backend


def test_querycalc_end_to_end_parity():
    model = make_it_model(scale=6)
    query = parse_query_xml(
        '<query><start type="User"/><follow relation="uses"/>'
        '<collect sort-by="label"/></query>'
    )
    runs = {
        backend: XQueryCalculusBackend(
            model, engine=XQueryEngine(EngineConfig(backend=backend))
        ).run(query)
        for backend in BACKENDS
    }
    for backend in BACKENDS[1:]:
        assert runs[backend] == runs["treewalk"], backend


CALCULUS_PARITY_QUERIES = [
    # fleet-wide parity: native, via-XQuery on both backends, and the
    # service cold + warm (the warm path must serve from the result cache).
    '<query><start type="User"/><follow relation="uses"/>'
    '<collect sort-by="label"/></query>',
    '<query><start all="true"/><collect sort-by="label" order="descending"'
    ' distinct="false"/></query>',
    '<query trace="parity-probe"><start type="Server"/>'
    '<follow relation="runs" direction="backward"/><collect/></query>',
    '<query><start type="User"/><filter-property name="label" op="contains"'
    ' value="user"/><collect sort-by="label"/></query>',
]


@pytest.mark.parametrize("xml", CALCULUS_PARITY_QUERIES)
def test_querycalc_service_parity(xml):
    model = make_it_model(scale=5)
    outcomes = assert_calculus_parity(parse_query_xml(xml), model)
    cold, warm = outcomes["service-cold"], outcomes["service-warm"]
    assert cold[0] == "ok" and warm[0] == "ok"
    assert warm[3], "second identical request must hit the result cache"
    assert warm[2] == cold[2], "warm hit must replay the cold traces"


def test_querycalc_service_trace_replay():
    # the traced query records fn:trace output cold; the warm cache hit
    # must replay the identical messages without re-running the program.
    model = make_it_model(scale=4)
    query = parse_query_xml(
        '<query trace="replayed"><start type="User"/><collect/></query>'
    )
    outcomes = assert_calculus_parity(query, model)
    cold = outcomes["service-cold"]
    assert cold[2], "traced query must record trace output on the cold run"
    assert outcomes["service-warm"][2] == cold[2]


def test_exported_model_query_parity():
    # query a real exported AWB model through paths, predicates, and axes.
    root = export_model(make_it_model(scale=4))
    for source in [
        "count($model//object)",
        "for $o in $model//object[@type='User'] return string($o/@id)",
        "$model//object[value[@name='label']]/value[@name='label']/text()",
    ]:
        assert_parity(
            "declare variable $model external; " + source,
            variables={"model": root},
        )
