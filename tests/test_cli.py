"""Tests for the command-line entry points."""

import os

import pytest

from repro.awb import export_model_text
from repro.docgen.__main__ import main as docgen_main
from repro.workloads import make_it_model, simple_list_template
from repro.xquery.__main__ import main as xquery_main


@pytest.fixture()
def model_file(tmp_path):
    path = tmp_path / "model.xml"
    path.write_text(export_model_text(make_it_model(scale=3)), encoding="utf-8")
    return str(path)


@pytest.fixture()
def template_file(tmp_path):
    path = tmp_path / "template.xml"
    path.write_text(simple_list_template("User"), encoding="utf-8")
    return str(path)


class TestXQueryCli:
    def test_inline_query(self, capsys):
        assert xquery_main(["1 + 1"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_query_from_file(self, tmp_path, capsys):
        query = tmp_path / "q.xq"
        query.write_text("count((1,2,3))", encoding="utf-8")
        assert xquery_main(["-f", str(query)]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_doc_binding(self, tmp_path, capsys):
        doc = tmp_path / "d.xml"
        doc.write_text("<r><v>7</v></r>", encoding="utf-8")
        assert xquery_main(["--doc", f"data={doc}", 'doc("data")/r/v/text()']) == 0
        assert capsys.readouterr().out.strip() == "7"

    def test_var_binding(self, capsys):
        assert xquery_main(["--var", "name=world", "concat('hi ', $name)"]) == 0
        assert capsys.readouterr().out.strip() == "hi world"

    def test_context_item(self, tmp_path, capsys):
        doc = tmp_path / "c.xml"
        doc.write_text("<r><x>ok</x></r>", encoding="utf-8")
        assert xquery_main(["--context", str(doc), "string(/r/x)"]) == 0
        assert capsys.readouterr().out.strip() == "ok"

    def test_error_exit_code(self, capsys):
        assert xquery_main(["$missing"]) == 1
        assert "missing" in capsys.readouterr().err

    def test_galax_mode(self, capsys):
        assert xquery_main(["--galax", "$missing"]) == 1
        assert "glx:dot" in capsys.readouterr().err

    def test_trace_flag(self, capsys):
        assert xquery_main(["--trace", "--no-optimize", "trace('v', 9)"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "9"
        assert "trace: v 9" in captured.err

    def test_buggy_dce_flag(self, capsys):
        code = xquery_main(
            ["--trace", "--buggy-dce", "let $d := trace('v', 9) return 1"]
        )
        assert code == 0
        assert "trace:" not in capsys.readouterr().err

    def test_no_query_is_usage_error(self, capsys):
        assert xquery_main([]) == 2


class TestDocgenCli:
    def test_native_generation(self, model_file, template_file, capsys):
        code = docgen_main(
            ["--model", model_file, "--template", template_file, "--impl", "native"]
        )
        assert code == 0
        assert "<ul>" in capsys.readouterr().out

    def test_xquery_generation(self, model_file, template_file, capsys):
        code = docgen_main(
            ["--model", model_file, "--template", template_file, "--impl", "xquery"]
        )
        assert code == 0
        assert "<ul>" in capsys.readouterr().out

    def test_output_file(self, model_file, template_file, tmp_path, capsys):
        out = tmp_path / "doc.html"
        code = docgen_main(
            [
                "--model", model_file,
                "--template", template_file,
                "-o", str(out),
                "--stats",
            ]
        )
        assert code == 0
        assert os.path.exists(out)
        assert "time=" in capsys.readouterr().err

    def test_problem_exit_code(self, model_file, tmp_path, capsys):
        bad_template = tmp_path / "bad.xml"
        bad_template.write_text("<html><label/></html>", encoding="utf-8")
        code = docgen_main(
            ["--model", model_file, "--template", str(bad_template)]
        )
        assert code == 1
        assert "label" in capsys.readouterr().err


class TestQueryCalcCli:
    @pytest.fixture()
    def query_file(self, tmp_path):
        path = tmp_path / "query.xml"
        path.write_text(
            '<query><start type="User"/><collect sort-by="label"/></query>',
            encoding="utf-8",
        )
        return str(path)

    def test_native_backend(self, model_file, query_file, capsys):
        from repro.querycalc.__main__ import main as calc_main

        assert calc_main(["--model", model_file, "--query", query_file]) == 0
        out = capsys.readouterr().out
        assert "User" in out and "\t" in out

    def test_xquery_backend_agrees(self, model_file, query_file, capsys):
        from repro.querycalc.__main__ import main as calc_main

        calc_main(["--model", model_file, "--query", query_file])
        native_out = capsys.readouterr().out
        calc_main(
            ["--model", model_file, "--query", query_file, "--backend", "xquery"]
        )
        xquery_out = capsys.readouterr().out
        assert native_out == xquery_out

    def test_show_compiled_and_time(self, model_file, query_file, capsys):
        from repro.querycalc.__main__ import main as calc_main

        calc_main(
            [
                "--model", model_file,
                "--query", query_file,
                "--backend", "xquery",
                "--show-compiled",
                "--time",
            ]
        )
        err = capsys.readouterr().err
        assert "declare variable $model external" in err
        assert "xquery backend" in err
