"""The inverted index: phrase semantics + the maintenance property test.

The load-bearing property: after any history of writes — including
update-language scripts taking the incremental model→export→index path —
the maintained index's canonical snapshot equals a from-scratch rebuild
over the store's current texts.  That is the invariant that lets writes
skip corpus rebuilds forever.
"""

import random

import pytest

from repro.collections import DocumentStore, InvertedIndex, count_phrase, tokenize
from repro.testing.models import (
    FT_WORDS,
    random_document_store,
    random_phrase,
    random_update_script,
)


def test_tokenize_casefolds_and_offsets():
    triples = tokenize("Alpha, BETA čaj")
    assert [t for t, _, _ in triples] == ["alpha", "beta", "čaj"]
    text = "Alpha, BETA čaj"
    for token, start, end in triples:
        assert text[start:end].casefold() == token


def test_single_token_and_phrase_search():
    index = InvertedIndex.rebuild(
        [
            ("a.xml", "alpha beta gamma alpha"),
            ("b.xml", "beta alpha beta alpha beta"),
            ("c.xml", "gamma delta"),
        ]
    )
    assert index.search("alpha") == {"a.xml": 2, "b.xml": 2}
    assert index.search("alpha beta") == {"a.xml": 1, "b.xml": 2}
    # overlapping occurrences all count: tokens 0-2 and 2-4 both match.
    assert index.search("beta alpha beta") == {"b.xml": 2}
    assert index.search("missing") == {}
    assert index.search("") == {}
    assert index.document_frequency("beta") == 2
    assert index.document_frequency("BETA") == 2  # casefolded lookup


def test_phrase_counts_match_brute_force_on_random_text():
    rng = random.Random(5)
    for _ in range(200):
        text = " ".join(rng.choice(FT_WORDS[:4]) for _ in range(rng.randrange(0, 15)))
        phrase = random_phrase(rng)
        index = InvertedIndex.rebuild([("d.xml", text)])
        expected = count_phrase(text, phrase)
        assert index.search(phrase).get("d.xml", 0) == expected, (text, phrase)


def test_add_replaces_and_remove_is_o_doc():
    index = InvertedIndex()
    index.add("a.xml", "alpha beta")
    index.add("b.xml", "alpha gamma")
    index.add("a.xml", "delta only")  # replace: old postings must vanish
    assert index.search("beta") == {}
    assert index.search("delta") == {"a.xml": 1}
    index.remove("b.xml")
    assert index.search("alpha") == {}
    assert index.doc_count == 1
    index.remove("never-there.xml")  # no-op, not an error
    assert index.doc_count == 1


def test_snapshot_is_order_independent():
    forward = InvertedIndex()
    forward.add("a.xml", "alpha beta")
    forward.add("b.xml", "beta gamma")
    backward = InvertedIndex()
    backward.add("b.xml", "beta gamma")
    backward.add("a.xml", "alpha beta")
    assert forward.snapshot() == backward.snapshot()


def _rebuilt(store: DocumentStore) -> InvertedIndex:
    return InvertedIndex.rebuild(
        (uri, store.resolve(uri).string_value()) for uri in store.uris()
    )


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_incremental_index_equals_rebuild_after_random_updates(seed):
    """The tentpole property: random update scripts through the PR 9
    incremental pipeline leave the maintained index identical to a
    from-scratch rebuild — and never trigger a corpus rebuild."""
    rng = random.Random(seed)
    store = random_document_store(seed, docs=14)
    model_uris = [uri for uri in store.uris() if uri.startswith("models/")]
    assert model_uris, "the generated store must carry model-backed docs"
    docs = len(store)
    for step in range(30):
        roll = rng.random()
        ops_before = store.index.maintenance_ops
        if roll < 0.45:
            # the incremental pipeline: script → patched export → re-index
            uri = rng.choice(model_uris)
            store.apply_update(uri, random_update_script(rng, store.model_of(uri)))
        elif roll < 0.75:
            words = " ".join(rng.choice(FT_WORDS) for _ in range(rng.randrange(1, 9)))
            store.put_text(f"docs/gen{rng.randrange(0, 6)}.xml", f"<d>{words}</d>")
        elif len(store) > len(model_uris):
            victim = rng.choice([u for u in store.uris() if u not in model_uris])
            store.remove(victim)
        else:
            continue
        # each write maintains O(1) documents' postings, never the corpus:
        # a replace is remove+add (2 ops), a delete or fresh add is 1.
        assert store.index.maintenance_ops - ops_before <= 2
        assert store.index.snapshot() == _rebuilt(store).snapshot(), f"step {step}"
    assert docs  # the loop really ran against a populated store


def test_update_script_changes_are_searchable_immediately():
    store = random_document_store(3, docs=10)
    uri = next(u for u in store.uris() if u.startswith("models/"))
    model = store.model_of(uri)
    # the inner spaces keep "zzyzx" an isolated token even though the
    # export's string-value concatenates adjacent text runs.
    store.apply_update(uri, 'insert node Document with (label "pad zzyzx pad");')
    assert "zzyzx" in store.resolve(uri).string_value()
    assert store.search("models/", "zzyzx") == [(uri, 1)]
    assert model.nodes  # still the live model behind the document
