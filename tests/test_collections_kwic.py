"""KWIC snippet extraction: the edge cases the eXist-db shape implies.

A snippet exists exactly when ``ft:search`` would count an occurrence, so
these tests double as the occurrence semantics spec: matches at the
document boundaries keep empty (un-ellipsized) sides, overlapping and
adjacent matches each get their own snippet, offsets are character
offsets so multi-byte text never splits, and zero hits mean zero
snippets — not an error.
"""

from repro.collections.kwic import CHARS_KWIC, CHARS_SUMMARY, kwic_snippets
from repro.collections.fulltext import count_phrase


def test_match_at_document_start():
    snippets = kwic_snippets("alpha beta follows after", "alpha beta", width=10)
    assert snippets == ["«alpha beta» follows a…"]


def test_match_at_document_end():
    snippets = kwic_snippets("it all ends with alpha beta", "alpha beta", width=10)
    assert snippets == ["…ends with «alpha beta»"]


def test_match_is_whole_document():
    assert kwic_snippets("alpha", "alpha") == ["«alpha»"]


def test_short_sides_are_not_ellipsized():
    # both sides fit inside the width: no ellipsis anywhere.
    assert kwic_snippets("a alpha z", "alpha", width=10) == ["a «alpha» z"]


def test_overlapping_matches_each_get_a_snippet():
    # "a a a" contains "a a" twice (overlapping occurrences all count).
    snippets = kwic_snippets("a a a", "a a", width=5)
    assert len(snippets) == 2
    assert snippets[0] == "«a a» a"
    assert snippets[1] == "a «a a»"
    assert count_phrase("a a a", "a a") == 2


def test_adjacent_matches():
    snippets = kwic_snippets("alpha beta alpha beta", "alpha beta", width=6)
    assert len(snippets) == 2
    assert snippets[0].startswith("«alpha beta»")
    assert snippets[1].endswith("«alpha beta»")


def test_multi_token_phrase_spans_original_separators():
    # whatever separated the tokens in the document stays inside « ».
    snippets = kwic_snippets("x alpha,  beta y", "alpha beta", width=3)
    assert snippets == ["x «alpha,  beta» y"]


def test_multibyte_characters_do_not_split():
    text = "京都 čaj füße 京都 čaj"
    snippets = kwic_snippets(text, "čaj", width=4)
    assert len(snippets) == 2
    for snippet in snippets:
        assert "«čaj»" in snippet
    # casefolded matching still finds the multi-byte token.
    assert kwic_snippets("das FÜSSE wort", "füße", width=5) == ["das «FÜSSE» wort"]


def test_zero_hit_queries_yield_no_snippets():
    assert kwic_snippets("alpha beta", "gamma") == []
    assert kwic_snippets("alpha beta", "") == []
    assert kwic_snippets("alpha beta", " ,;") == []  # token-free phrase
    assert kwic_snippets("", "alpha") == []


def test_width_truncation_and_defaults():
    text = "x" * 100 + " alpha " + "y" * 100
    (snippet,) = kwic_snippets(text, "alpha")
    # default width is eXist's CHARS_KWIC on each side, plus the two
    # ellipses and the delimited match.
    assert CHARS_KWIC == 40 and CHARS_SUMMARY == 120
    assert snippet == "…" + "x" * 39 + " " + "«alpha»" + " " + "y" * 39 + "…"


def test_case_insensitive_matching_preserves_original_text():
    (snippet,) = kwic_snippets("say Alpha BETA now", "alpha beta", width=5)
    assert snippet == "say «Alpha BETA» now"
