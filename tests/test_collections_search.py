"""Full-text builtins across every backend, indexed and brute-force.

The conformance pin: ``fn:doc``/``fn:collection``/``ft:*`` answer
byte-identically on treewalk, closures, and algebra, with the inverted
index on or off — plus the algebra-only surface (the ``FullTextScan``
operator and its catalog-backed selectivity) and a fixed-seed mini fuzz
campaign over the collection productions.
"""

import pytest

from repro.collections import DocumentStore
from repro.testing.fuzz import run_campaign
from repro.xquery import XQueryEngine
from repro.xquery.algebra.stats import StatisticsCatalog
from repro.xquery.api import BACKENDS, serialize_result
from repro.xquery.errors import XQueryDynamicError


@pytest.fixture()
def store():
    store = DocumentStore()
    store.put_text("docs/a.xml", "<doc><p>alpha beta gamma</p> <p>alpha beta</p></doc>")
    store.put_text("docs/b.xml", "<doc>beta alpha beta kappa</doc>")
    store.put_text("notes/c.xml", "<note>alpha beta at the start</note>")
    store.put_text("docs/empty.xml", "<doc>omega only</doc>")
    return store


def all_backend_runs(source, store):
    """Serialized results for every (backend, index-mode) combination."""
    engine = XQueryEngine()
    compiled = engine.compile(source)
    outputs = {}
    for use_index in (True, False):
        store.use_index = use_index
        for backend in BACKENDS:
            key = f"{backend}-{'indexed' if use_index else 'scan'}"
            outputs[key] = serialize_result(
                compiled.run(backend=backend, collections=store)
            )
    store.use_index = True
    return outputs


@pytest.mark.parametrize(
    "source",
    [
        'for $d in ft:search("docs/", "alpha beta") return'
        ' <hit uri="{ft:uri($d)}" score="{ft:score($d, "alpha beta")}"/>',
        'count(ft:search("alpha"))',
        'for $d in fn:collection("docs/") return element m'
        " { attribute uri { ft:uri($d) } }",
        'count(fn:collection())',
        'for $d in ft:search("", "alpha beta") return'
        ' for $s in ft:kwic($d, "alpha beta", 12) return <s>{$s}</s>',
        'string(fn:doc("notes/c.xml"))',
        'fn:doc-available("docs/a.xml"), fn:doc-available("nope.xml")',
    ],
)
def test_backends_and_index_modes_agree(source, store):
    outputs = all_backend_runs(source, store)
    assert len(set(outputs.values())) == 1, outputs


def test_search_results_ordered_by_score_then_uri(store):
    got = serialize_result(
        XQueryEngine().evaluate(
            'for $d in ft:search("docs/", "alpha beta") return ft:uri($d)',
            collections=store,
        )
    )
    # docs/a.xml scores 2, docs/b.xml scores 1; empty.xml never appears.
    assert got == "docs/a.xml docs/b.xml"


def test_missing_doc_is_fodc0002_in_every_backend(store):
    engine = XQueryEngine()
    compiled = engine.compile('fn:doc("missing.xml")')
    for backend in BACKENDS:
        with pytest.raises(XQueryDynamicError) as caught:
            compiled.run(backend=backend, collections=store)
        assert caught.value.code == "FODC0002"


def test_no_store_in_context_is_fodc0002():
    engine = XQueryEngine()
    for source in ('fn:collection()', 'ft:search("x")'):
        with pytest.raises(XQueryDynamicError) as caught:
            engine.evaluate(source)
        assert caught.value.code == "FODC0002"


def test_unknown_collection_is_fodc0002_everywhere(store):
    compiled = XQueryEngine().compile('fn:collection("never/")')
    for backend in BACKENDS:
        with pytest.raises(XQueryDynamicError) as caught:
            compiled.run(backend=backend, collections=store)
        assert caught.value.code == "FODC0002"


def test_explain_shows_full_text_scan_with_catalog_estimate(store):
    stats = StatisticsCatalog()
    stats.set_fulltext(store.fulltext_stats())
    compiled = XQueryEngine().compile(
        'for $d in ft:search("docs/", "alpha beta") return ft:uri($d)'
    )
    text = compiled.explain(statistics=stats)["text"]
    assert "FullTextScan[docs/ ~ 'alpha beta']" in text
    # min document frequency of the phrase tokens, clamped by the
    # collection's member count: 3 docs under docs/ hold "alpha".
    assert "~3 rows" in text


def test_fulltext_estimate_semantics(store):
    stats = StatisticsCatalog()
    stats.set_fulltext(store.fulltext_stats())
    assert stats.fulltext_estimate("docs/", "alpha beta") == 3.0
    assert stats.fulltext_estimate("docs/", "nonexistent-token") == 0.0
    assert stats.fulltext_estimate("docs/", "") == 0.0
    # an unknown collection still gets the whole-store df bound.
    assert stats.fulltext_estimate("never/", "alpha") == 3.0
    # without any catalog food at all: the same prior, not a crash.
    assert StatisticsCatalog().fulltext_estimate("docs/", "alpha") == pytest.approx(8.0)


def test_unindexed_fallback_plan_for_dynamic_args(store):
    # a non-literal collection argument still lowers to FullTextScan
    # (collection=None renders as '?'), and still runs correctly.
    engine = XQueryEngine()
    source = 'for $c in ("docs/", "notes/") return count(ft:search($c, "alpha"))'
    compiled = engine.compile(source)
    for backend in BACKENDS:
        got = serialize_result(compiled.run(backend=backend, collections=store))
        assert got == "2 1"


def test_mini_collection_fuzz_campaign_is_clean():
    """A fixed-seed differential campaign over the collection productions;
    nothing is allowlisted, so any divergence fails."""
    stats = run_campaign(20040522, 40, kinds=("collection",), serving=False)
    assert stats.by_kind.get("collection") == 40
    assert stats.unallowlisted == [], [d.describe() for d in stats.divergences]
    assert stats.divergences == []  # no allowlisted ones either
