"""The search service tier: routing proofs, generation-keyed cache,
scatter/gather byte-identity, and structured errors across the pipe.

The cache invariant under test: keys carry the *collection generation*
(document generation for uri-addressed reads), so a write to ``docs/``
cold-starts exactly the ``docs/`` answers while ``notes/`` stays warm —
no sweep, no global flush.
"""

import pytest

from repro.collections import (
    DocumentStore,
    SearchRequest,
    SearchService,
    doc_shard,
    route_request,
)
from repro.querycalc.service.errors import RemoteQueryError, classify_error
from repro.testing.models import random_document_store
from repro.xquery.errors import XQueryDynamicError


def make_store(docs=8):
    store = DocumentStore()
    for index in range(docs):
        prefix = "docs/" if index % 2 == 0 else "notes/"
        words = ["alpha beta", "beta gamma", "alpha beta alpha beta"][index % 3]
        store.put_text(f"{prefix}d{index}.xml", f"<doc>{words} w{index}</doc>")
    return store


SEARCH = SearchRequest(kind="search", collection="docs/", phrase="alpha beta")
NOTES = SearchRequest(kind="search", collection="notes/", phrase="beta gamma")


# -- routing proofs ------------------------------------------------------------


def test_route_proofs():
    doc = SearchRequest(kind="doc", uri="docs/d0.xml")
    one = route_request(doc, 1)
    assert (one.kind, one.shard, one.reason) == ("single", 0, "one-shard-tier")
    many = route_request(doc, 4)
    assert many.kind == "single"
    assert many.shard == doc_shard("docs/d0.xml", 4)
    assert "crc32" in many.reason and "% 4" in many.reason
    scatter = route_request(SEARCH, 4)
    assert scatter.kind == "scatter"
    assert "search-over-collection" in scatter.reason


def test_doc_requests_prove_single_shard():
    with SearchService(make_store(), shards=3, mode="thread") as service:
        result = service.run(SearchRequest(kind="doc", uri="docs/d0.xml"))
        assert result.route.kind == "single"
        assert service.metrics["single"] == 1 and service.metrics["scatter"] == 0
        service.run(SEARCH)
        assert service.metrics["scatter"] == 1


# -- the generation-keyed result cache -----------------------------------------


def test_warm_hit_replays_cold_text():
    with SearchService(make_store(), shards=1) as service:
        cold = service.run(SEARCH)
        warm = service.run(SEARCH)
        assert not cold.cached and warm.cached
        assert warm.text == cold.text
        assert warm.generation == cold.generation


def test_write_to_one_collection_keeps_others_warm():
    with SearchService(make_store(), shards=1) as service:
        service.run(SEARCH)
        service.run(NOTES)
        service.put_text("docs/new.xml", "<doc>alpha beta fresh</doc>")
        # the touched collection misses (its generation moved)...
        after = service.run(SEARCH)
        assert not after.cached
        assert "docs/new.xml" in after.text
        # ...the untouched collection still hits its old generation key.
        assert service.run(NOTES).cached


def test_doc_request_keys_on_document_generation():
    with SearchService(make_store(), shards=1) as service:
        doc = SearchRequest(kind="doc", uri="docs/d0.xml")
        service.run(doc)
        # a write to a *different* document in the same collection does
        # not disturb the uri-addressed entry.
        service.put_text("docs/other.xml", "<doc>gamma</doc>")
        assert service.run(doc).cached
        service.put_text("docs/d0.xml", "<doc>rewritten alpha</doc>")
        fresh = service.run(doc)
        assert not fresh.cached and "rewritten" in fresh.text


# -- scatter/gather byte-identity ----------------------------------------------


@pytest.mark.parametrize("mode", ["thread", "process"])
@pytest.mark.parametrize("shards", [1, 3])
def test_sharded_answers_are_byte_identical_to_brute_force(mode, shards):
    store = random_document_store(41, docs=12)
    requests = [
        SearchRequest(kind="search", collection="", phrase="alpha"),
        SearchRequest(kind="search", collection="docs/", phrase="beta"),
        SearchRequest(kind="search", collection="notes/", phrase="京都", limit=2),
        SearchRequest(kind="kwic", collection="", phrase="gamma", width=12),
        SearchRequest(kind="collection", collection="models/"),
        SearchRequest(kind="doc", uri=store.uris()[0]),
    ]
    with SearchService(store, shards=shards, mode=mode) as service:
        for request in requests:
            served = service.run(request).text
            fresh = service.evaluate_fresh(request, use_index=False)
            assert served == fresh, (mode, shards, request.key())


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_writes_reach_replicas_incrementally(mode):
    store = make_store()
    with SearchService(store, shards=2, mode=mode) as service:
        before = service.run(SEARCH).text
        service.put_text("docs/zz.xml", "<doc>alpha beta alpha beta alpha beta</doc>")
        after = service.run(SEARCH)
        assert not after.cached
        assert after.text != before
        # the new top-scoring document leads the merged ranking.
        assert after.text.index("docs/zz.xml") < after.text.index("docs/d0.xml")
        assert after.text == service.evaluate_fresh(SEARCH, use_index=False)
        service.delete("docs/zz.xml")
        assert service.run(SEARCH).text == before


def test_model_backed_update_through_service():
    store = random_document_store(13, docs=10)
    uri = next(u for u in store.uris() if u.startswith("models/"))
    request = SearchRequest(kind="search", collection="models/", phrase="zzyzx")
    with SearchService(store, shards=2, mode="process") as service:
        assert service.run(request).text == ""
        service.apply_update(uri, 'insert node Document with (label "pad zzyzx pad");')
        after = service.run(request)
        assert uri in after.text
        assert after.text == service.evaluate_fresh(request, use_index=False)


# -- structured errors across the pipe -----------------------------------------


def test_missing_doc_is_fodc0002_in_thread_mode():
    with SearchService(make_store(), shards=1) as service:
        with pytest.raises(XQueryDynamicError) as caught:
            service.run(SearchRequest(kind="doc", uri="missing.xml"))
        assert caught.value.code == "FODC0002"
        assert service.metrics["errors"] == 1


def test_fodc0002_crosses_the_worker_pipe_structured():
    """A worker's FODC0002 must arrive as a RemoteQueryError that the
    taxonomy classifies identically to the in-process error: the PR 4
    structured-error contract, now for document retrieval."""
    with SearchService(make_store(), shards=2, mode="process") as service:
        with pytest.raises(RemoteQueryError) as caught:
            service.run(SearchRequest(kind="doc", uri="missing.xml"))
        error = classify_error(caught.value)
        assert error.kind == "dynamic"
        assert error.code == "FODC0002"
        assert caught.value.remote_exception == "XQueryDynamicError"
        # the tier survives the error: the next request still answers.
        assert service.run(SEARCH).text


def test_unknown_collection_crosses_the_pipe_too():
    with SearchService(make_store(), shards=2, mode="process") as service:
        with pytest.raises(RemoteQueryError) as caught:
            service.run(SearchRequest(kind="collection", collection="never/"))
        assert classify_error(caught.value).code == "FODC0002"


# -- request validation and loadgen surface ------------------------------------


def test_request_validation():
    with pytest.raises(ValueError):
        SearchRequest(kind="bogus")
    assert 'ft:search' in SEARCH.source()
    assert SEARCH.key() != NOTES.key()


def test_search_loadgen_smoke():
    from repro.serving.loadgen import run_search_load, search_parity_sweep

    store = random_document_store(99, docs=16)
    with SearchService(store, shards=2, mode="thread") as service:
        report = run_search_load(service, clients=4, duration=0.5, seed=99)
        assert report["requests"] > 0
        assert report["availability"] == 1.0
        assert search_parity_sweep(service, 99, count=8) == 0


# -- new collections propagate tier-wide ---------------------------------------


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_write_creating_new_collection_is_visible_on_every_shard(mode):
    """A write that *creates* a collection must register its prefix on all
    replicas, not just the owner shard — otherwise every scattered read
    over the new collection raises FODC0002 from the non-owner shards."""
    with SearchService(make_store(), shards=2, mode=mode) as service:
        service.put_text("brand/sub/new.xml", "<doc>alpha fresh</doc>")
        for request in [
            SearchRequest(kind="search", collection="brand/", phrase="alpha"),
            SearchRequest(kind="collection", collection="brand/"),
            SearchRequest(kind="kwic", collection="brand/sub/", phrase="fresh"),
        ]:
            served = service.run(request)
            assert served.route.kind == "scatter"
            assert "brand/sub/new.xml" in served.text
            assert served.text == service.evaluate_fresh(request, use_index=False)


# -- worker handle survives a timeout ------------------------------------------


class _ScriptedConn:
    """A pipe stand-in with a scripted reply queue."""

    def __init__(self):
        self.sent = []
        self.replies = []

    def send(self, message):
        self.sent.append(message)

    def poll(self, timeout=None):
        return bool(self.replies)

    def recv(self):
        return self.replies.pop(0)


def _bare_handle():
    import itertools
    import threading

    from repro.collections.service import _WorkerHandle

    handle = _WorkerHandle.__new__(_WorkerHandle)
    handle.shard = 0
    handle._lock = threading.Lock()
    handle._req_ids = itertools.count()
    handle._poisoned = False
    handle.conn = _ScriptedConn()
    return handle


def test_worker_handle_drains_late_reply_after_timeout():
    handle = _bare_handle()
    with pytest.raises(RuntimeError, match="deadline"):
        handle.request("ping", {}, timeout=0.01)
    # the worker recovers and its late answer to request 0 lands on the
    # pipe; the next request drains it instead of wedging on a reply-id
    # mismatch forever.
    handle.conn.replies = [("ok", 0, {"late": True}), ("ok", 1, {"fresh": True})]
    assert handle.request("ping", {}) == {"fresh": True}


def test_worker_handle_poisons_on_protocol_violation():
    handle = _bare_handle()
    handle.conn.replies = [("ok", 99, {})]
    with pytest.raises(RuntimeError, match="answered"):
        handle.request("ping", {})
    with pytest.raises(RuntimeError, match="broke protocol"):
        handle.request("ping", {})


# -- reads do not serialize on the service lock --------------------------------


def test_reads_execute_outside_the_service_lock():
    """While one read is deep in evaluation, the service lock must be
    free: stats() (which takes it) completes instead of queueing behind
    the scatter — the shared-nothing-readers property the load harness
    measures."""
    import threading

    with SearchService(make_store(), shards=2, mode="thread") as service:
        started, release = threading.Event(), threading.Event()
        original = service._execute

        def slow(request, shard_store, statistics=None):
            started.set()
            assert release.wait(5.0)
            return original(request, shard_store, statistics)

        service._execute = slow
        reader = threading.Thread(target=service.run, args=(SEARCH,))
        reader.start()
        try:
            assert started.wait(5.0)
            snapshot = service.stats()  # needs the service lock
            assert snapshot["metrics"]["requests"] == 1
        finally:
            release.set()
            reader.join(5.0)
        assert not reader.is_alive()
        assert service.metrics["executed"] == 1


def test_read_overlapping_a_write_skips_the_cache_insert():
    """An evaluation that raced a write may have seen a half-replicated
    state; its text is served but never cached."""
    import threading

    with SearchService(make_store(), shards=2, mode="thread") as service:
        # a write uri owned by shard 1, so it does not need the replica
        # lock the blocked reader holds (shard 0 scatters first).
        write_uri = next(
            f"notes/w{i}.xml" for i in range(64)
            if doc_shard(f"notes/w{i}.xml", 2) == 1
        )
        started, release = threading.Event(), threading.Event()
        original = service._execute
        first = threading.Event()

        def slow(request, shard_store, statistics=None):
            if not first.is_set():
                first.set()
                started.set()
                assert release.wait(5.0)
            return original(request, shard_store, statistics)

        service._execute = slow
        reader = threading.Thread(target=service.run, args=(SEARCH,))
        reader.start()
        try:
            assert started.wait(5.0)
            service.put_text(write_uri, "<doc>unrelated</doc>")
        finally:
            release.set()
            reader.join(5.0)
        assert not reader.is_alive()
        # the write touched notes/ only, so SEARCH's docs/ generation is
        # unchanged — but the raced run must not have been cached.
        second = service.run(SEARCH)
        assert not second.cached
        assert service.run(SEARCH).cached  # quiescent run caches again
