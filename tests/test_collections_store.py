"""The document store: addressing, generations, persistence, FODC0002.

Every failure mode here must surface as a *structured* ``FODC0002``
dynamic error — the PR 4 taxonomy classifies it as ``kind="dynamic"`` —
so the service tier (and its worker pipe) can relay it without losing
the code.
"""

import pytest

from repro.collections import DocumentStore
from repro.collections.store import collection_prefixes, normalize_collection
from repro.querycalc.service.errors import classify_error
from repro.xquery.errors import XQueryDynamicError


def make_store():
    store = DocumentStore()
    store.put_text("docs/a.xml", "<doc>alpha beta</doc>")
    store.put_text("docs/deep/b.xml", "<doc>beta gamma</doc>")
    store.put_text("notes/c.xml", "<note>delta</note>")
    return store


def test_normalize_and_prefixes():
    assert normalize_collection("") == ""
    assert normalize_collection("/") == ""
    assert normalize_collection("docs") == "docs/"
    assert normalize_collection("docs/") == "docs/"
    assert collection_prefixes("a/b/c.xml") == ["", "a/", "a/b/"]
    assert collection_prefixes("flat.xml") == [""]


def test_membership_and_collections():
    store = make_store()
    assert "docs/a.xml" in store and len(store) == 3
    assert store.collection_uris("docs/") == ["docs/a.xml", "docs/deep/b.xml"]
    assert store.collection_uris("docs/deep/") == ["docs/deep/b.xml"]
    assert store.collection_uris("") == sorted(store.uris())
    assert store.uri_of(store.resolve("notes/c.xml")) == "notes/c.xml"


def test_missing_document_is_structured_fodc0002():
    store = make_store()
    with pytest.raises(XQueryDynamicError) as caught:
        store.resolve("missing.xml")
    assert caught.value.code == "FODC0002"
    error = classify_error(caught.value)
    assert error.kind == "dynamic" and error.code == "FODC0002"


def test_unparseable_document_is_structured_fodc0002():
    store = make_store()
    with pytest.raises(XQueryDynamicError) as caught:
        store.put_text("docs/bad.xml", "<doc>never closed")
    assert caught.value.code == "FODC0002"
    assert "not parseable" in str(caught.value)
    assert classify_error(caught.value).kind == "dynamic"
    assert "docs/bad.xml" not in store  # the failed write left no trace


def test_unknown_collection_is_fodc0002_but_emptied_collection_is_not():
    store = make_store()
    with pytest.raises(XQueryDynamicError) as caught:
        store.collection_uris("never/")
    assert caught.value.code == "FODC0002"
    store.remove("notes/c.xml")
    # the collection was known; deleting its last member empties it.
    assert store.collection_uris("notes/") == []


def test_remove_missing_and_foreign_node_are_fodc0002():
    store = make_store()
    with pytest.raises(XQueryDynamicError) as caught:
        store.remove("missing.xml")
    assert caught.value.code == "FODC0002"
    foreign = DocumentStore().put_text("x.xml", "<x/>")
    with pytest.raises(XQueryDynamicError) as caught:
        store.uri_of(foreign)
    assert caught.value.code == "FODC0002"


def test_generations_bump_ancestors_only():
    store = make_store()
    docs_gen = store.collection_generation("docs/")
    notes_gen = store.collection_generation("notes/")
    root_gen = store.collection_generation("")
    store.put_text("docs/deep/new.xml", "<doc>omega</doc>")
    # the written path and every ancestor move...
    assert store.collection_generation("docs/deep/") > docs_gen
    assert store.collection_generation("docs/") > docs_gen
    assert store.collection_generation("") > root_gen
    # ...while the unrelated collection's generation holds still (this is
    # what keeps its cached results warm across the write).
    assert store.collection_generation("notes/") == notes_gen
    assert store.document_generation("docs/deep/new.xml") == store.generation


def test_save_open_roundtrip(tmp_path):
    store = make_store()
    directory = str(tmp_path / "corpus")
    store.save(directory)
    loaded = DocumentStore.open(directory)
    assert loaded.uris() == store.uris()
    assert loaded.known_collections() == store.known_collections()
    assert loaded.generation >= store.generation
    for uri in store.uris():
        assert loaded.text_of(uri) == store.text_of(uri)
    assert loaded.index.snapshot() == store.index.snapshot()


def test_open_without_manifest_scans_xml_files(tmp_path):
    directory = tmp_path / "bare"
    (directory / "docs").mkdir(parents=True)
    (directory / "docs" / "a.xml").write_text("<doc>alpha</doc>", encoding="utf-8")
    loaded = DocumentStore.open(str(directory))
    assert loaded.uris() == ["docs/a.xml"]
    assert loaded.search("", "alpha") == [("docs/a.xml", 1)]


def test_open_with_unparseable_file_is_fodc0002(tmp_path):
    directory = tmp_path / "broken"
    directory.mkdir()
    (directory / "bad.xml").write_text("<doc>", encoding="utf-8")
    with pytest.raises(XQueryDynamicError) as caught:
        DocumentStore.open(str(directory))
    assert caught.value.code == "FODC0002"
    assert "bad.xml" in str(caught.value)


def test_subset_keeps_collections_known():
    store = make_store()
    shard = store.subset(["docs/a.xml"])
    assert shard.uris() == ["docs/a.xml"]
    # a collection with no members on this shard answers empty, not
    # FODC0002 — scatter must not flicker errors on partial shards.
    assert shard.collection_uris("notes/") == []
    assert shard.search("notes/", "delta") == []


def test_search_indexed_equals_brute_force():
    store = make_store()
    store.put_text("docs/two.xml", "<doc>alpha beta alpha beta</doc>")
    indexed = store.search("", "alpha beta")
    store.use_index = False
    brute = store.search("", "alpha beta")
    store.use_index = True
    assert indexed == brute == [("docs/two.xml", 2), ("docs/a.xml", 1)]


# -- uri validation ------------------------------------------------------------


@pytest.mark.parametrize(
    "uri",
    [
        "",
        "/abs.xml",
        "docs/",
        "..",
        "../escape.xml",
        "docs/../escape.xml",
        "docs//double.xml",
        "docs/./dot.xml",
        "docs\\win.xml",
        "manifest.json",
    ],
)
def test_unstorable_uri_is_rejected_at_put_time(uri):
    store = make_store()
    with pytest.raises(XQueryDynamicError) as caught:
        store.put_text(uri, "<doc>evil</doc>")
    assert caught.value.code == "FODC0002"
    assert "not storable" in str(caught.value)
    assert uri not in store


def test_traversal_uri_cannot_escape_save_directory(tmp_path):
    store = DocumentStore()
    with pytest.raises(XQueryDynamicError):
        store.put_text("../outside.xml", "<doc>escape</doc>")
    store.put_text("docs/safe.xml", "<doc>fine</doc>")
    target = tmp_path / "store"
    store.save(str(target))
    assert not (tmp_path / "outside.xml").exists()
    # nested manifest-named documents are fine; only the top-level store
    # name is reserved.
    store.put_text("docs/manifest.json.xml", "<doc>ok</doc>")


# -- incremental statistics ----------------------------------------------------


def test_fulltext_stats_are_live_views_not_rebuilds():
    store = make_store()
    stats = store.fulltext_stats()
    assert stats["doc_frequency"].get("alpha", 0) == 1
    assert stats["collection_docs"]["docs/"] == 2
    # a later write is visible through the *same* stats payload: the
    # views are backed by incrementally-maintained state, not a snapshot
    # materialized per write.
    store.put_text("docs/new.xml", "<doc>alpha alpha</doc>")
    assert stats["doc_frequency"].get("alpha", 0) == 2
    assert stats["collection_docs"]["docs/"] == 3
    store.remove("docs/a.xml")
    assert stats["doc_frequency"].get("alpha", 0) == 1
    assert stats["collection_docs"]["docs/"] == 2


def test_collection_counts_match_recount_after_mutations():
    store = make_store()
    store.put_text("docs/deep/deeper/x.xml", "<doc>x</doc>")
    store.put_text("docs/a.xml", "<doc>replaced, not added</doc>")
    store.remove("notes/c.xml")
    counts = store.fulltext_stats()["collection_docs"]
    for prefix in store.known_collections():
        expected = sum(1 for uri in store.uris() if uri.startswith(prefix))
        assert counts[prefix] == expected, prefix


def test_register_collections_makes_empty_collections_known():
    store = make_store()
    store.register_collections(["brand/", "brand/sub/"])
    assert store.collection_uris("brand/") == []
    assert store.collection_uris("brand/sub/") == []
    assert store.fulltext_stats()["collection_docs"]["brand/"] == 0
