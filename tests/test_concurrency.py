"""Concurrency stress: one engine / one service shared by many threads.

The compile LRU (lookup, insert, eviction, counters) and the lazy closure
build are the shared mutable state; these tests hammer them from 8
threads and assert no corruption — every thread sees correct results and
the cache counters stay consistent.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.querycalc import QueryService, parse_query_xml, run_query
from repro.workloads import make_it_model
from repro.xquery import EngineConfig, XQueryEngine

THREADS = 8
QUERIES_PER_THREAD = 100


def _sources():
    # enough distinct sources to churn a small LRU, each with a known answer.
    return [(f"sum(1 to {n})", n * (n + 1) // 2) for n in range(1, 26)]


class TestEngineThreadSafety:
    def test_8_threads_x_100_queries_one_engine(self):
        # a small cache forces constant hit/miss/eviction interleaving.
        engine = XQueryEngine(EngineConfig(compile_cache_size=8))
        sources = _sources()
        failures = []
        barrier = threading.Barrier(THREADS)

        def worker(thread_index):
            barrier.wait()  # maximize interleaving
            for i in range(QUERIES_PER_THREAD):
                source, expected = sources[(thread_index + i) % len(sources)]
                result = engine.evaluate(source)
                if result != [expected]:
                    failures.append((source, result))

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        info = engine.cache_info()
        assert info["hits"] + info["misses"] == THREADS * QUERIES_PER_THREAD
        assert 0 < info["currsize"] <= 8

    def test_concurrent_closures_build_shares_one_program(self):
        engine = XQueryEngine(EngineConfig(backend="closures"))
        compiled = engine.compile("for $i in 1 to 5 return $i * $i")
        programs = []
        barrier = threading.Barrier(THREADS)

        def build():
            barrier.wait()
            programs.append(compiled.closures)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for _ in range(THREADS):
                pool.submit(build)
        assert len(programs) == THREADS
        assert all(program is programs[0] for program in programs)

    def test_concurrent_runs_of_one_compiled_query(self):
        engine = XQueryEngine(EngineConfig(backend="closures"))
        compiled = engine.compile("sum(for $i in $v return $i * $i)")
        results = []

        def run(n):
            value = list(range(n + 1))
            results.append(
                (n, compiled.run(variables={"v": value}), sum(i * i for i in value))
            )

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for n in range(50):
                pool.submit(run, n)
        assert len(results) == 50
        assert all(result == [expected] for _, result, expected in results)


class TestServiceThreadSafety:
    def test_concurrent_service_runs_match_native(self):
        model = make_it_model(scale=6)
        service = QueryService(model)
        sources = [
            '<query><start type="User"/><collect sort-by="label"/></query>',
            '<query><start type="User"/><follow relation="likes"/><collect/></query>',
            '<query><start all="true"/><filter-type type="Program"/><collect/></query>',
            '<query><start type="Server"/><follow relation="runs"/><collect/></query>',
        ]
        queries = [parse_query_xml(source) for source in sources]
        expected = [[n.id for n in run_query(query, model)] for query in queries]
        failures = []

        def worker(thread_index):
            for i in range(25):
                index = (thread_index + i) % len(queries)
                got = [n.id for n in service.run(queries[index])]
                if got != expected[index]:
                    failures.append((index, got))

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for index in range(THREADS):
                pool.submit(worker, index)
        assert not failures
        metrics = service.metrics()
        assert metrics["queries"] == THREADS * 25
        # each distinct plan was executed at most a handful of times even
        # under racing first-misses; the rest were cache hits.
        assert metrics["executed"] <= len(queries) * THREADS
        assert metrics["hits"] >= metrics["queries"] - metrics["executed"]
