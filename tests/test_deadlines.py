"""Engine-level wall-clock deadlines (XQDY_TIMEOUT) in both backends.

The robustness layer's promise is that a runaway query is cut off at the
next pipeline-stage boundary rather than hanging its worker thread.  The
workload here is the calculus's own nemesis: a cross join whose FLWOR
touches enough tuples that deadline checks fire many times per
millisecond, so a small budget is exceeded almost immediately.
"""

import time

import pytest

from repro.xquery import EngineConfig, XQueryEngine
from repro.xquery.errors import XQueryError, XQueryTimeoutError

#: a cross join plus a predicate: slow enough to blow a tiny budget, with
#: checks at the clause, tuple, and path-step boundaries along the way.
SLOW_QUERY = """
for $i in 1 to 300
for $j in 1 to 300
where ($i * $j) mod 7 = 0
return $i + $j
"""

FAST_QUERY = "for $i in 1 to 10 return $i * $i"

BACKENDS = ("treewalk", "closures")


@pytest.fixture(params=BACKENDS)
def engine(request):
    return XQueryEngine(EngineConfig(backend=request.param))


class TestTimeouts:
    def test_slow_query_times_out(self, engine):
        compiled = engine.compile(SLOW_QUERY)
        with pytest.raises(XQueryTimeoutError) as excinfo:
            compiled.run(timeout=0.01)
        assert excinfo.value.code == "XQDY_TIMEOUT"

    def test_timeout_error_is_a_spec_error(self, engine):
        compiled = engine.compile(SLOW_QUERY)
        with pytest.raises(XQueryError):
            compiled.run(timeout=0.01)

    def test_overrun_is_bounded(self, engine):
        # the acceptance bound is 2x the budget; engine-side checks are
        # much tighter than that for a tuple-at-a-time workload.
        budget = 0.05
        compiled = engine.compile(SLOW_QUERY)
        started = time.monotonic()
        with pytest.raises(XQueryTimeoutError):
            compiled.run(timeout=budget)
        assert time.monotonic() - started < 2 * budget

    def test_ample_timeout_completes_normally(self, engine):
        compiled = engine.compile(FAST_QUERY)
        assert compiled.run(timeout=60.0) == [i * i for i in range(1, 11)]

    def test_no_timeout_is_unlimited(self, engine):
        compiled = engine.compile(FAST_QUERY)
        assert compiled.run() == [i * i for i in range(1, 11)]

    def test_absolute_deadline_accepted(self, engine):
        compiled = engine.compile(SLOW_QUERY)
        with pytest.raises(XQueryTimeoutError):
            compiled.run(deadline=time.monotonic() + 0.01)

    def test_timeout_caps_a_later_deadline(self, engine):
        # when both are given, the tighter one wins
        compiled = engine.compile(SLOW_QUERY)
        started = time.monotonic()
        with pytest.raises(XQueryTimeoutError):
            compiled.run(timeout=0.02, deadline=time.monotonic() + 60.0)
        assert time.monotonic() - started < 1.0

    def test_user_function_recursion_times_out(self, engine):
        source = """
        declare function local:spin($n) {
          if ($n = 0) then 0 else local:spin($n - 1) + local:spin($n - 1)
        };
        local:spin(24)
        """
        compiled = engine.compile(source)
        with pytest.raises(XQueryTimeoutError):
            compiled.run(timeout=0.02)

    def test_already_expired_deadline_fails_fast(self, engine):
        compiled = engine.compile(SLOW_QUERY)
        started = time.monotonic()
        with pytest.raises(XQueryTimeoutError):
            compiled.run(deadline=time.monotonic() - 1.0)
        assert time.monotonic() - started < 0.5

    def test_engine_evaluate_accepts_timeout(self, engine):
        with pytest.raises(XQueryTimeoutError):
            engine.evaluate(SLOW_QUERY, timeout=0.01)
        assert engine.evaluate(FAST_QUERY, timeout=60.0) == [
            i * i for i in range(1, 11)
        ]
