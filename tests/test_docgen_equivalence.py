"""Integration: both generator implementations must agree.

"In a few weeks we had pretty much reproduced the power of the XQuery
code" — the rewrite was behaviourally equivalent.  Here we hold both
implementations to that bar across the template corpus.
"""

import pytest

from repro.docgen import NativeDocumentGenerator, XQueryDocumentGenerator
from repro.workloads import (
    error_prone_template,
    glass_catalog_template,
    make_glass_catalog,
    make_it_model,
    simple_list_template,
    system_context_template,
    table_template,
    toc_heavy_template,
)
from repro.xmlio import serialize


@pytest.fixture(scope="module")
def it_model():
    return make_it_model(scale=6)


@pytest.fixture(scope="module")
def glass_model():
    return make_glass_catalog(pieces=8)


def generate_both(model, template):
    native = NativeDocumentGenerator(model).generate(template)
    functional = XQueryDocumentGenerator(model).generate(template)
    return native, functional


def normalized(document):
    return " ".join(serialize(document).split())


CASES = [
    ("simple_list", lambda: simple_list_template("User")),
    ("table", lambda: table_template("User", "Program", "uses")),
    ("toc_heavy", lambda: toc_heavy_template(4)),
    ("system_context", system_context_template),
]


@pytest.mark.parametrize("name,template_factory", CASES)
def test_documents_equivalent(it_model, name, template_factory):
    native, functional = generate_both(it_model, template_factory())
    assert normalized(native.document) == normalized(functional.document)


@pytest.mark.parametrize("name,template_factory", CASES)
def test_side_streams_equivalent(it_model, name, template_factory):
    native, functional = generate_both(it_model, template_factory())
    assert [(e.level, e.text) for e in native.toc] == [
        (e.level, e.text) for e in functional.toc
    ]
    assert sorted(native.visited_node_ids) == sorted(functional.visited_node_ids)
    assert len(native.problems) == len(functional.problems)


def test_glass_catalog_equivalent(glass_model):
    native, functional = generate_both(glass_model, glass_catalog_template())
    assert normalized(native.document) == normalized(functional.document)


def test_error_prone_template_same_problem_count(it_model):
    native, functional = generate_both(it_model, error_prone_template())
    native_errors = [p for p in native.problems if p.severity == "error"]
    functional_errors = [p for p in functional.problems if p.severity == "error"]
    assert len(native_errors) == len(functional_errors)
    assert len(native_errors) >= 3

    native_warnings = [p for p in native.problems if p.severity == "warning"]
    functional_warnings = [p for p in functional.problems if p.severity == "warning"]
    assert len(native_warnings) == len(functional_warnings)


def test_error_directives_flagged_identically(it_model):
    native, functional = generate_both(it_model, error_prone_template())
    assert sorted(p.directive for p in native.problems) == sorted(
        p.directive for p in functional.problems
    )
