"""Tests for the Java-style document generator."""

import pytest

from repro.awb import Model, load_metamodel
from repro.docgen import GenTrouble, NativeDocumentGenerator
from repro.docgen.native import (
    GenState,
    build_relation_table,
    replace_phrase,
    required_attribute,
    required_child,
)
from repro.xdm import ElementNode, TextNode
from repro.xmlio import parse_element, serialize


@pytest.fixture()
def model():
    m = Model(load_metamodel("it-architecture"))
    m.create_node("SystemBeingDesigned", label="Sys")
    alice = m.create_node("User", label="Alice", birthYear=1970)
    bob = m.create_node("Superuser", label="Bob")
    ledger = m.create_node("Program", label="LedgerD")
    m.connect(alice, "uses", ledger)
    m.connect(alice, "likes", bob)
    return m


def generate(model, template):
    return NativeDocumentGenerator(model).generate(template)


class TestPassthrough:
    def test_html_copied(self, model):
        result = generate(model, "<html><p class='x'>text</p></html>")
        assert serialize(result.document) == '<html><p class="x">text</p></html>'

    def test_template_comments_dropped(self, model):
        result = generate(model, "<html><!-- note --></html>")
        assert serialize(result.document) == "<html/>"


class TestFor:
    def test_iterates_sorted(self, model):
        result = generate(
            model, '<html><for nodes="all.User" sort="label"><i><label/></i></for></html>'
        )
        assert serialize(result.document) == "<html><i>Alice</i><i>Bob</i></html>"

    def test_superuser_is_a_user(self, model):
        result = generate(model, '<html><for nodes="all.User"><label/> </for></html>')
        assert "Bob" in result.document.string_value()

    def test_follow_spec(self, model):
        template = (
            '<html><for nodes="all.User" sort="label">'
            '<for nodes="follow.uses"><label/></for></for></html>'
        )
        result = generate(model, template)
        assert result.document.string_value() == "LedgerD"

    def test_followback_spec(self, model):
        template = (
            '<html><for nodes="all.Program">'
            '<for nodes="followback.uses"><label/></for></for></html>'
        )
        result = generate(model, template)
        assert result.document.string_value() == "Alice"

    def test_visits_recorded(self, model):
        result = generate(model, '<html><for nodes="all.User"><label/></for></html>')
        assert len(result.visited_node_ids) == 2

    def test_embedded_query(self, model):
        template = (
            "<html><for>"
            '<query><start type="User"/><collect sort-by="label"/></query>'
            "<b><label/></b></for></html>"
        )
        result = generate(model, template)
        assert serialize(result.document) == "<html><b>Alice</b><b>Bob</b></html>"

    def test_bad_spec_reports_problem(self, model):
        result = generate(model, '<html><for nodes="bogus"><label/></for></html>')
        assert any(p.severity == "error" for p in result.problems)
        assert "generation-problem" in serialize(result.document)


class TestIf:
    TEMPLATE = (
        '<html><for nodes="all.User" sort="label">'
        "<if><test><focus-is-type type=\"Superuser\"/></test>"
        "<then><b><label/></b></then><else><label/></else></if>"
        "</for></html>"
    )

    def test_then_else(self, model):
        result = generate(model, self.TEMPLATE)
        assert serialize(result.document) == "<html>Alice<b>Bob</b></html>"

    def test_missing_else_is_fine(self, model):
        template = (
            '<html><for nodes="all.User" sort="label">'
            '<if><test><focus-is-type type="Superuser"/></test>'
            "<then><label/></then></if></for></html>"
        )
        assert generate(model, template).document.string_value() == "Bob"

    def test_not_and_or(self, model):
        template = (
            '<html><for nodes="all.User" sort="label">'
            "<if><test><and>"
            '<has-property name="birthYear"/>'
            '<not><focus-is-type type="Superuser"/></not>'
            "</and></test><then><label/></then></if></for></html>"
        )
        assert generate(model, template).document.string_value() == "Alice"

    def test_property_equals(self, model):
        template = (
            '<html><for nodes="all.User">'
            '<if><test><property-equals name="label" value="Alice"/></test>'
            "<then>yes</then><else>no</else></if></for></html>"
        )
        assert "yes" in generate(model, template).document.string_value()

    def test_has_relation(self, model):
        template = (
            '<html><for nodes="all.User" sort="label">'
            '<if><test><has-relation relation="uses"/></test>'
            "<then><label/></then></if></for></html>"
        )
        assert generate(model, template).document.string_value() == "Alice"

    def test_missing_test_is_gentrouble(self, model):
        result = generate(model, "<html><if><then>x</then></if></html>")
        assert any("test" in p.message for p in result.problems)


class TestLeafDirectives:
    def test_label_without_focus_problem(self, model):
        result = generate(model, "<html><label/></html>")
        assert any(p.severity == "error" for p in result.problems)

    def test_property_value(self, model):
        template = (
            '<html><for nodes="all.User" sort="label">'
            '<property-value name="birthYear" default="?"/> </for></html>'
        )
        assert generate(model, template).document.string_value() == "1970 ? "

    def test_property_value_missing_warns(self, model):
        template = (
            '<html><for nodes="all.Program">'
            '<property-value name="nope"/></for></html>'
        )
        result = generate(model, template)
        assert any(p.severity == "warning" for p in result.problems)

    def test_html_property_embeds_markup(self, model):
        node = model.nodes_of_type("User")[0]
        node.set("biography", "plain <b>bold</b>")
        template = (
            f'<html><for nodes="all.User"><if><test>'
            f'<has-property name="biography"/></test><then>'
            f'<property-value name="biography"/></then></if></for></html>'
        )
        assert "<b>bold</b>" in serialize(generate(model, template).document)

    def test_focus_id(self, model):
        template = '<html><for nodes="all.SystemBeingDesigned"><focus-id/></for></html>'
        assert generate(model, template).document.string_value() == "N1"


class TestSectionsAndToc:
    TEMPLATE = (
        "<html><table-of-contents/>"
        "<section><heading>One</heading>"
        "<section><heading>Two</heading><p>deep</p></section>"
        "</section></html>"
    )

    def test_heading_levels_nest(self, model):
        text = serialize(generate(model, self.TEMPLATE).document)
        assert "<h1" in text and "<h2" in text

    def test_toc_entries(self, model):
        result = generate(model, self.TEMPLATE)
        assert [(e.level, e.text) for e in result.toc] == [(1, "One"), (2, "Two")]

    def test_toc_rendered_with_anchors(self, model):
        text = serialize(generate(model, self.TEMPLATE).document)
        assert 'href="#sec-1"' in text and 'id="sec-1"' in text

    def test_missing_heading_reports(self, model):
        result = generate(model, "<html><section><p/></section></html>")
        assert any("heading" in p.message for p in result.problems)


class TestOmissions:
    def test_unvisited_nodes_listed(self, model):
        template = (
            '<html><for nodes="all.Superuser"><label/></for>'
            '<table-of-omissions types="User"/></html>'
        )
        text = serialize(generate(model, template).document)
        assert "Alice" in text.split("table-of-omissions")[1]

    def test_all_visited_says_none(self, model):
        template = (
            '<html><for nodes="all.User"><label/></for>'
            '<table-of-omissions types="User"/></html>'
        )
        assert "No omissions." in serialize(generate(model, template).document)


class TestTables:
    def test_relation_table(self, model):
        template = '<html><table rows="all.User" cols="all.Program" relation="uses"/></html>'
        text = serialize(generate(model, template).document)
        assert "row\\col" in text and "✓" in text

    def test_skeleton_shape(self, model):
        users = sorted(model.nodes_of_type("User"), key=lambda n: n.label)
        programs = model.nodes_of_type("Program")
        table = build_relation_table(users, programs, "uses", model)
        rows = table.child_elements("tr")
        assert len(rows) == 3  # header + 2 users
        assert all(len(r.child_elements("td")) == 2 for r in rows)

    def test_mark_cell_positions(self, model):
        users = sorted(model.nodes_of_type("User"), key=lambda n: n.label)
        programs = model.nodes_of_type("Program")
        table = build_relation_table(users, programs, "uses", model, mark="X")
        alice_row = table.child_elements("tr")[1]
        assert alice_row.child_elements("td")[1].string_value() == "X"
        bob_row = table.child_elements("tr")[2]
        assert bob_row.child_elements("td")[1].string_value() == ""

    def test_missing_attr_reports(self, model):
        result = generate(model, '<html><table rows="all.User" relation="r"/></html>')
        assert any("cols" in p.message for p in result.problems)


class TestReplacePhrase:
    def test_phrase_in_text_spliced(self, model):
        template = (
            "<html><p>before MARKER after</p>"
            '<replace-phrase phrase="MARKER"><b>table</b></replace-phrase></html>'
        )
        text = serialize(generate(model, template).document)
        assert "<p>before <b>table</b> after</p>" in text

    def test_unfound_phrase_warns(self, model):
        template = '<html><replace-phrase phrase="GHOST"><b/></replace-phrase></html>'
        result = generate(model, template)
        assert any("never found" in p.message for p in result.problems)

    def test_replace_phrase_unit(self):
        root = parse_element("<d><p>x MARK y</p></d>")
        count = replace_phrase(root, "MARK", [ElementNode("hr")])
        assert count == 1
        assert serialize(root) == "<d><p>x <hr/> y</p></d>"

    def test_phrase_at_edges(self):
        root = parse_element("<d><p>MARK</p></d>")
        replace_phrase(root, "MARK", [TextNode("gone")])
        assert root.string_value() == "gone"


class TestUtilities:
    def test_required_attribute_throws_with_context(self, model):
        state = GenState(model)
        state.focus = model.nodes_of_type("User")[0]
        element = ElementNode("for")
        with pytest.raises(GenTrouble) as info:
            required_attribute(element, "nodes", state)
        assert "nodes" in str(info.value) and "Alice" in str(info.value)

    def test_required_child_ok(self, model):
        state = GenState(model)
        parent = parse_element("<if><test/></if>")
        assert required_child(parent, "test", state).name == "test"

    def test_gentrouble_describe(self):
        trouble = GenTrouble("boom", template_element=ElementNode("for"))
        assert "boom" in str(trouble) and "<for>" in str(trouble)


class TestModelCheck:
    def test_reports_advisory_violations(self, model):
        # remove the SystemBeingDesigned to trip the exactly-one advisory.
        sbd = model.nodes_of_type("SystemBeingDesigned")[0]
        model.remove_node(sbd)
        model.create_node("Document", label="unversioned")
        result = generate(model, "<html><model-check/></html>")
        kinds = [p.message for p in result.problems]
        assert any("exactly one SystemBeingDesigned" in m for m in kinds)
        assert any("version information" in m for m in kinds)
        assert all(p.severity == "warning" for p in result.problems)
        assert all(p.directive == "model-check" for p in result.problems)

    def test_produces_no_document_output(self, model):
        result = generate(model, "<html><model-check/></html>")
        assert serialize(result.document) == "<html/>"

    def test_clean_model_is_quiet(self, model):
        result = generate(model, "<html><model-check/></html>")
        assert result.problems == []
