"""The two XQuery error regimes must behave identically.

The exceptions-regime sources (modules_trycatch/) are the counterfactual:
the same generator written as if lesson 4 had been heeded.  Everything
observable must match the 2004 error-value sources.
"""

import pytest

from repro.docgen import NativeDocumentGenerator, XQueryDocumentGenerator
from repro.docgen.xquery_impl import (
    LIBRARY_MODULES,
    LIBRARY_MODULES_TC,
    assemble_main_program,
    read_module,
)
from repro.workloads import (
    error_prone_template,
    make_it_model,
    system_context_template,
    toc_heavy_template,
)
from repro.xmlio import serialize
from repro.xquery import parse_query


@pytest.fixture(scope="module")
def model():
    return make_it_model(scale=5)


class TestAssembly:
    def test_both_programs_parse(self):
        for regime in ("values", "exceptions"):
            module = parse_query(assemble_main_program(regime))
            assert module.body is not None

    def test_unknown_regime_rejected(self, model):
        with pytest.raises(ValueError):
            XQueryDocumentGenerator(model, error_regime="hope")
        with pytest.raises(ValueError):
            assemble_main_program("hope")

    def test_tc_modules_use_no_error_values(self):
        for name in LIBRARY_MODULES_TC:
            source = read_module(name)
            assert "is-error" not in source
            assert "mk-error" not in source

    def test_values_modules_use_no_trycatch(self):
        for name in LIBRARY_MODULES:
            source = read_module(name)
            assert "try {" not in source and "catch" not in source


class TestBehaviouralEquivalence:
    TEMPLATES = [
        system_context_template,
        lambda: toc_heavy_template(3),
        error_prone_template,
    ]

    @pytest.mark.parametrize("template_factory", TEMPLATES)
    def test_documents_identical(self, model, template_factory):
        template = template_factory()
        values = XQueryDocumentGenerator(model).generate(template)
        exceptions = XQueryDocumentGenerator(
            model, error_regime="exceptions"
        ).generate(template)
        assert serialize(values.document) == serialize(exceptions.document)

    @pytest.mark.parametrize("template_factory", TEMPLATES)
    def test_side_streams_identical(self, model, template_factory):
        template = template_factory()
        values = XQueryDocumentGenerator(model).generate(template)
        exceptions = XQueryDocumentGenerator(
            model, error_regime="exceptions"
        ).generate(template)
        assert [(e.level, e.text) for e in values.toc] == [
            (e.level, e.text) for e in exceptions.toc
        ]
        assert values.visited_node_ids == exceptions.visited_node_ids
        assert sorted(p.directive for p in values.problems) == sorted(
            p.directive for p in exceptions.problems
        )
        assert sorted(p.severity for p in values.problems) == sorted(
            p.severity for p in exceptions.problems
        )

    def test_exceptions_regime_matches_native_too(self, model):
        template = error_prone_template()
        exceptions = XQueryDocumentGenerator(
            model, error_regime="exceptions"
        ).generate(template)
        native = NativeDocumentGenerator(model).generate(template)
        assert sorted(p.directive for p in exceptions.problems) == sorted(
            p.directive for p in native.problems
        )

    def test_metrics_report_regime(self, model):
        result = XQueryDocumentGenerator(
            model, error_regime="exceptions"
        ).generate("<html><p/></html>")
        assert result.metrics["error_regime"] == "exceptions"


class TestCodeShape:
    def test_exceptions_sources_are_smaller(self):
        from repro.workloads.loc import count_xquery_loc

        values_loc = sum(
            count_xquery_loc(read_module(name)) for name in LIBRARY_MODULES
        )
        exceptions_loc = sum(
            count_xquery_loc(read_module(name)) for name in LIBRARY_MODULES_TC
        )
        # the ladders were real code: the rewrite sheds a decent share.
        assert exceptions_loc < values_loc * 0.9


class TestGalaxDiagnosticsMode:
    def test_docgen_behaves_identically_under_galax_diagnostics(self, model):
        """The 2004 diagnostics mode changes messages, never behaviour."""
        from repro.workloads import system_context_template
        from repro.xquery import EngineConfig

        template = system_context_template()
        normal = XQueryDocumentGenerator(model).generate(template)
        galax = XQueryDocumentGenerator(
            model, config=EngineConfig(galax_diagnostics=True)
        ).generate(template)
        assert serialize(normal.document) == serialize(galax.document)
        assert len(normal.problems) == len(galax.problems)

    def test_buggy_optimizer_does_not_change_documents(self, model):
        """The trace-eating optimizer only eats traces, not results."""
        from repro.workloads import system_context_template
        from repro.xquery import EngineConfig

        template = system_context_template()
        normal = XQueryDocumentGenerator(model).generate(template)
        buggy = XQueryDocumentGenerator(
            model, config=EngineConfig(optimize=True, trace_is_dead_code=True)
        ).generate(template)
        assert serialize(normal.document) == serialize(buggy.document)
