"""Unit tests for the shared template-language module."""

import pytest

from repro.docgen.template import (
    DIRECTIVE_TAGS,
    GenerationResult,
    Problem,
    TemplateError,
    TocEntry,
    is_directive,
    load_template,
    parse_node_spec,
)
from repro.xdm import ElementNode, TextNode


class TestNodeSpecs:
    def test_all_spec(self):
        assert parse_node_spec("all.User") == ("all", "User")

    def test_follow_spec(self):
        assert parse_node_spec("follow.uses") == ("follow", "uses")

    def test_followback_spec(self):
        assert parse_node_spec("followback.has") == ("followback", "has")

    def test_dotted_type_names_keep_tail(self):
        # only the first dot splits: types may not contain dots, but the
        # relation part is taken verbatim.
        assert parse_node_spec("follow.ns.rel") == ("follow", "ns.rel")

    def test_missing_dot_rejected(self):
        with pytest.raises(TemplateError):
            parse_node_spec("allUsers")

    def test_unknown_kind_rejected(self):
        with pytest.raises(TemplateError):
            parse_node_spec("sideways.uses")

    def test_empty_argument_rejected(self):
        with pytest.raises(TemplateError):
            parse_node_spec("all.")


class TestLoadTemplate:
    def test_parses_text(self):
        root = load_template("<html><p>x</p></html>")
        assert root.name == "html"

    def test_passes_elements_through(self):
        node = ElementNode("html")
        assert load_template(node) is node

    def test_whitespace_preserved(self):
        root = load_template("<html>\n  <p/>\n</html>")
        assert any(isinstance(child, TextNode) for child in root.children)


class TestDirectiveRecognition:
    def test_known_directives(self):
        for tag in ("for", "if", "label", "table-of-contents", "replace-phrase"):
            assert tag in DIRECTIVE_TAGS
            assert is_directive(ElementNode(tag))

    def test_html_is_not_a_directive(self):
        for tag in ("p", "div", "table-x", "ol"):
            assert not is_directive(ElementNode(tag))

    def test_text_is_not_a_directive(self):
        assert not is_directive(TextNode("for"))


class TestResultTypes:
    def test_problem_rendering(self):
        problem = Problem("boom", severity="error", node_id="N1", directive="for")
        text = str(problem)
        assert "boom" in text and "N1" in text and "for" in text

    def test_result_ok_flag(self):
        document = ElementNode("html")
        good = GenerationResult(document=document)
        assert good.ok
        warned = GenerationResult(
            document=document, problems=[Problem("m", severity="warning")]
        )
        assert warned.ok
        failed = GenerationResult(
            document=document, problems=[Problem("m", severity="error")]
        )
        assert not failed.ok

    def test_toc_entry_fields(self):
        entry = TocEntry(level=2, text="Heading", anchor="sec-3")
        assert (entry.level, entry.text, entry.anchor) == (2, "Heading", "sec-3")
