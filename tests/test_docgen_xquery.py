"""Tests for the XQuery implementation of the document generator."""

import pytest

from repro.awb import Model, load_metamodel
from repro.docgen import XQueryDocumentGenerator
from repro.docgen.xquery_impl import assemble_main_program, read_module
from repro.xmlio import serialize
from repro.xquery import parse_query


@pytest.fixture(scope="module")
def model():
    m = Model(load_metamodel("it-architecture"))
    m.create_node("SystemBeingDesigned", label="Sys")
    alice = m.create_node("User", label="Alice", birthYear=1970)
    bob = m.create_node("Superuser", label="Bob")
    ledger = m.create_node("Program", label="LedgerD")
    m.connect(alice, "uses", ledger)
    m.connect(alice, "likes", bob)
    return m


@pytest.fixture(scope="module")
def generator(model):
    return XQueryDocumentGenerator(model)


class TestProgramAssembly:
    def test_main_program_parses(self):
        module = parse_query(assemble_main_program())
        assert len(module.functions) > 20
        assert len(module.variables) == 3  # model, metamodel, template

    def test_phase_programs_parse(self):
        for name in (
            "phase_omissions.xq",
            "phase_toc.xq",
            "phase_replace.xq",
            "phase_strip.xq",
        ):
            module = parse_query(read_module(name))
            assert module.body is not None, name


class TestGeneration:
    def test_passthrough(self, generator):
        result = generator.generate("<html><p class='x'>hi</p></html>")
        assert serialize(result.document) == '<html><p class="x">hi</p></html>'

    def test_for_with_if(self, generator):
        template = (
            '<html><for nodes="all.User" sort="label">'
            '<if><test><focus-is-type type="Superuser"/></test>'
            "<then><b><label/></b></then><else><label/></else></if>"
            "</for></html>"
        )
        result = generator.generate(template)
        assert serialize(result.document) == "<html>Alice<b>Bob</b></html>"

    def test_follow_spec(self, generator):
        template = (
            '<html><for nodes="all.User" sort="label">'
            '<for nodes="follow.uses"><label/></for></for></html>'
        )
        assert generator.generate(template).document.string_value() == "LedgerD"

    def test_property_value_with_default(self, generator):
        template = (
            '<html><for nodes="all.Superuser">'
            '<property-value name="birthYear" default="?"/></for></html>'
        )
        assert generator.generate(template).document.string_value() == "?"

    def test_sections_and_toc(self, generator):
        template = (
            "<html><table-of-contents/>"
            "<section><heading>One</heading>"
            "<section><heading>Two</heading><p>x</p></section></section></html>"
        )
        result = generator.generate(template)
        text = serialize(result.document)
        assert [(e.level, e.text) for e in result.toc] == [(1, "One"), (2, "Two")]
        assert 'href="#sec-1"' in text and 'id="sec-2"' in text
        assert "INTERNAL-DATA" not in text

    def test_omissions(self, generator):
        template = (
            '<html><for nodes="all.Superuser"><label/></for>'
            '<table-of-omissions types="User"/></html>'
        )
        text = serialize(generator.generate(template).document)
        assert "Alice" in text and "data-node-id" in text

    def test_relation_table(self, generator):
        template = (
            '<html><table rows="all.User" cols="all.Program" relation="uses"/></html>'
        )
        text = serialize(generator.generate(template).document)
        assert "row\\col" in text and "✓" in text

    def test_replace_phrase(self, generator):
        template = (
            "<html><p>pre MARKER post</p>"
            '<replace-phrase phrase="MARKER"><b>t</b></replace-phrase></html>'
        )
        text = serialize(generator.generate(template).document)
        assert "<p>pre <b>t</b> post</p>" in text

    def test_query_directive(self, generator):
        template = (
            "<html><query>"
            '<start type="User"/><collect sort-by="label" order="descending"/>'
            "</query></html>"
        )
        text = serialize(generator.generate(template).document)
        assert text.index("Bob") < text.index("Alice")

    def test_problems_stream(self, generator):
        result = generator.generate("<html><label/></html>")
        assert len(result.problems) == 1
        assert result.problems[0].severity == "error"
        assert result.problems[0].directive == "label"

    def test_five_phases_measured(self, generator):
        result = generator.generate("<html><p/></html>")
        assert result.metrics["phases"] == 5
        assert len(result.metrics["bytes_per_phase"]) == 5
        assert result.metrics["bytes_copied_total"] > 0

    def test_visited_tracked(self, generator):
        template = '<html><for nodes="all.User"><label/></for></html>'
        assert len(generator.generate(template).visited_node_ids) == 2

    def test_internal_data_always_stripped(self, generator):
        template = (
            '<html><for nodes="all.User"><label/></for>'
            "<section><heading>H</heading><p/></section></html>"
        )
        text = serialize(generator.generate(template).document)
        assert "INTERNAL-DATA" not in text
        assert "VISITED" not in text


class TestHtmlProperties:
    def test_html_property_embeds_markup(self):
        from repro.awb import Model, load_metamodel

        model = Model(load_metamodel("it-architecture"))
        model.create_node(
            "User",
            label="Writer",
            biography="plain <b>bold</b> tail",
        )
        template = (
            '<html><for nodes="all.User">'
            '<property-value name="biography"/></for></html>'
        )
        for regime in ("values", "exceptions"):
            generator = XQueryDocumentGenerator(model, error_regime=regime)
            text = serialize(generator.generate(template).document)
            assert "<b>bold</b>" in text, regime

    def test_missing_html_wrapper_falls_back_to_text(self):
        from repro.awb import Model, load_metamodel

        model = Model(load_metamodel("it-architecture"))
        node = model.create_node("User", label="U")
        node.set("note", "just text")  # ad-hoc string property
        template = (
            '<html><for nodes="all.User">'
            '<property-value name="note"/></for></html>'
        )
        result = XQueryDocumentGenerator(model).generate(template)
        assert result.document.string_value() == "just text"


class TestExportInvalidation:
    def test_model_changes_need_invalidate(self):
        model = Model(load_metamodel("it-architecture"))
        model.create_node("User", label="Alice")
        generator = XQueryDocumentGenerator(model)
        template = '<html><for nodes="all.User"><label/></for></html>'
        assert generator.generate(template).document.string_value() == "Alice"

        model.create_node("User", label="Bob")
        # the cached export is stale until invalidated...
        assert generator.generate(template).document.string_value() == "Alice"
        generator.invalidate_export()
        assert generator.generate(template).document.string_value() == "AliceBob"
