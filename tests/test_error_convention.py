"""The paper's footnote 1: the error-value convention is unsound.

"For one thing (of general applicability), a function might legitimately
return an <error> tag as a value — e.g., a function computing the first
element of a list."  And: "if the function were saying what went wrong,
and including the error-causing information as data, and the
error-causing information were attributes with the same name, then they'd
be attributes of the <data> tag ... and one of them would get lost."

Both failure modes, demonstrated on the engine.
"""

from repro.xquery import XQueryEngine

engine = XQueryEngine()

FIRST_OF_LIST = """
declare function local:is-error($v) {
  count($v) eq 1 and $v instance of element(error)
};
declare function local:first($list) {
  if (empty($list))
  then <error><message>the list was empty</message></error>
  else $list[1]
};
"""


class TestFootnoteOne:
    def test_convention_works_for_innocent_values(self):
        result = engine.evaluate(
            FIRST_OF_LIST + "local:is-error(local:first((<a/>, <b/>)))"
        )
        assert result == [False]

    def test_convention_detects_real_failure(self):
        result = engine.evaluate(
            FIRST_OF_LIST + "local:is-error(local:first(()))"
        )
        assert result == [True]

    def test_legitimate_error_element_is_misclassified(self):
        # the unsoundness: the list's first element *is* an <error> tag,
        # and the caller cannot tell it from a failure.
        source = FIRST_OF_LIST + (
            "local:is-error(local:first((<error><message>I am data, "
            "not a failure</message></error>, <b/>)))"
        )
        assert engine.evaluate(source) == [True]  # false positive!

    def test_trycatch_regime_has_no_false_positive(self):
        # with throwing errors the same value passes through untouched.
        source = """
        declare function local:first($list) {
          if (empty($list)) then error("the list was empty") else $list[1]
        };
        try {
          name(local:first((<error><message>data</message></error>, <b/>)))
        } catch { "failure" }
        """
        assert engine.evaluate(source) == ["error"]  # the element, intact


class TestFootnoteOneAttributeLoss:
    def test_error_causing_attributes_collide_in_data(self):
        # two same-named attribute nodes packed as <data>'s children fold
        # into the data element, and one is lost.
        source = """
        let $a1 := attribute name {"first"}
        let $a2 := attribute name {"second"}
        let $report := <error><data>{$a1}{$a2}</data></error>
        return count($report/data/@name)
        """
        assert engine.evaluate(source) == [1]  # one of them got lost

    def test_what_was_lost(self):
        source = """
        let $a1 := attribute name {"first"}
        let $a2 := attribute name {"second"}
        return string(<error><data>{$a1}{$a2}</data></error>/data/@name)
        """
        # under the default last-wins policy, "first" is the one lost.
        assert engine.evaluate(source) == ["second"]
