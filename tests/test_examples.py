"""Smoke tests: every shipped example must run clean.

Examples are documentation that executes; this keeps them from rotting.
"""

import io
import os
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    ("quickstart.py", ["== 1. XQuery engine ==", "1 = (1,2,3)", "troubles"]),
    ("glass_catalog.py", ["catalogue model", "Unpriced", "Maker"]),
    ("debugging_story.py", ["bisection found step 17", "the probe vanished"]),
    ("data_interchange.py", ["re-imported", "match: True"]),
    ("workbench_tour.py", ["suggestive", "Omissions", "retargeted to itself"]),
    ("it_architecture_docgen.py", ["slowdown", "visited sets agree : True"]),
    ("query_calculus_demo.py", ["backends agree", "preposterously"]),
]


@pytest.mark.parametrize("script,markers", EXAMPLES)
def test_example_runs_and_mentions(script, markers):
    path = os.path.join(EXAMPLES_DIR, script)
    saved_argv = sys.argv
    sys.argv = [path]
    buffer = io.StringIO()
    try:
        with redirect_stdout(buffer):
            runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = saved_argv
    output = buffer.getvalue()
    for marker in markers:
        assert marker.lower() in output.lower(), (script, marker)
