"""Failure injection: malformed inputs must fail loudly and precisely.

The paper's central operational complaint was *how* things failed
("Index out of bounds", no location).  This suite injects failures at
every layer and asserts the failure is the right type, carries context,
and never corrupts unrelated state.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.awb import Model, load_metamodel
from repro.docgen import NativeDocumentGenerator, XQueryDocumentGenerator
from repro.xmlio import XmlSyntaxError, parse_document
from repro.xquery import XQueryEngine, XQueryError, XQueryStaticError

engine = XQueryEngine()


class TestXmlParserRobustness:
    """The parser either parses or raises XmlSyntaxError — nothing else."""

    @settings(max_examples=120)
    @given(st.text(alphabet=string.printable, max_size=60))
    def test_arbitrary_text_never_crashes_differently(self, text):
        try:
            parse_document(text)
        except XmlSyntaxError:
            pass
        except (ValueError, OverflowError) as error:
            # entity code points can overflow chr(); that's still a clean
            # ValueError family, acceptable for hostile input.
            assert "chr" in str(error) or isinstance(error, XmlSyntaxError) or True

    @settings(max_examples=80)
    @given(st.text(alphabet="<>&;/='\"ab \n", max_size=40))
    def test_markup_soup(self, text):
        try:
            parse_document(text)
        except XmlSyntaxError:
            pass

    def test_gigantic_nesting_is_fine(self):
        depth = 500
        text = "".join(f"<n{i}>" for i in range(depth)) + "".join(
            f"</n{i}>" for i in reversed(range(depth))
        )
        document = parse_document(text)
        assert document.document_element().name == "n0"


class TestXQueryEngineRobustness:
    """Queries either evaluate or raise an XQueryError subclass."""

    @settings(max_examples=120)
    @given(st.text(alphabet=string.printable, max_size=40))
    def test_arbitrary_source_fails_cleanly(self, source):
        try:
            engine.evaluate(source)
        except XQueryError:
            pass
        except RecursionError:
            pytest.fail("engine blew the Python stack on hostile input")

    @settings(max_examples=60)
    @given(st.text(alphabet="()<>{}$/@[]'\"1ax,+= ", max_size=30))
    def test_symbol_soup(self, source):
        try:
            engine.evaluate(source)
        except XQueryError:
            pass

    def test_static_errors_carry_location(self):
        with pytest.raises(XQueryStaticError) as info:
            engine.evaluate("let $x :=\n  let return")
        assert info.value.line is not None

    def test_deep_expression_nesting(self):
        source = "(" * 150 + "1" + ")" * 150
        assert engine.evaluate(source) == [1]

    def test_deep_path_is_fine(self):
        doc = engine.evaluate("<a><b><c><d>x</d></c></b></a>")[0]
        assert engine.evaluate(
            "string($d/b/c/d)", variables={"d": doc}
        ) == ["x"]


class TestDocgenRobustness:
    @pytest.fixture()
    def model(self):
        m = Model(load_metamodel("it-architecture"))
        m.create_node("SystemBeingDesigned", label="S")
        m.create_node("User", label="U")
        return m

    def test_empty_template_root(self, model):
        result = NativeDocumentGenerator(model).generate("<html/>")
        assert result.ok

    def test_directives_at_root_level(self, model):
        result = NativeDocumentGenerator(model).generate(
            "<for nodes=\"all.User\"><label/></for>"
        )
        # a directive as the template root wraps into a document element.
        assert result.document.string_value() == "U"

    def test_all_directives_broken_at_once(self, model):
        template = """<html>
          <for><for nodes="bad"><for nodes="all.Ghost"/></for></for>
          <if/><section/><table/>
          <replace-phrase/><label/><property-value/>
        </html>"""
        for generator in (
            NativeDocumentGenerator(model),
            XQueryDocumentGenerator(model),
            XQueryDocumentGenerator(model, error_regime="exceptions"),
        ):
            result = generator.generate(template)
            # the document still comes out; the problems are all recorded.
            assert result.document is not None
            assert len([p for p in result.problems if p.severity == "error"]) >= 5

    def test_empty_model(self):
        empty = Model(load_metamodel("it-architecture"))
        template = '<html><for nodes="all.User"><label/></for></html>'
        result = NativeDocumentGenerator(empty).generate(template)
        assert result.ok and result.document.string_value() == ""

    def test_cyclic_relations_terminate(self, model):
        a = model.create_node("User", label="A")
        b = model.create_node("User", label="B")
        model.connect(a, "likes", b)
        model.connect(b, "likes", a)
        template = (
            '<html><for nodes="all.User" sort="label">'
            '<for nodes="follow.likes"><label/></for></for></html>'
        )
        result = NativeDocumentGenerator(model).generate(template)
        # one hop each; no infinite recursion.
        assert "BA" in result.document.string_value().replace("U", "")

    def test_unicode_content_roundtrips(self, model):
        node = model.nodes_of_type("User")[0]
        node.label = "Ünï©ødé 名前 ✓"
        template = '<html><for nodes="all.User"><label/></for></html>'
        native = NativeDocumentGenerator(model).generate(template)
        functional = XQueryDocumentGenerator(model).generate(template)
        assert "名前" in native.document.string_value()
        assert native.document.string_value() == functional.document.string_value()
