"""The fuzzing harness tests itself: determinism, shrinking, oracles.

The harness is load-bearing (the ``fuzz-smoke`` CI job gates on it), so
its own machinery gets the same treatment as the engines: seeds must
reproduce campaigns bit-for-bit, the shrinker must actually reduce, the
metamorphic rewrites must actually preserve semantics, and the corpus
format must round-trip.
"""

import random

from repro.querycalc.ast import Collect, FilterProperty, Query, Start
from repro.testing.corpus import load_corpus, write_xquery_case
from repro.testing.fuzz import (
    graft_trigger,
    injected_interesting,
    run_campaign,
)
from repro.testing.generator import GenExpr, ProgramGenerator, atom
from repro.testing.metamorphic import METAMORPHIC_RULES, metamorphic_pair
from repro.testing.models import random_calculus_query, random_model
from repro.testing.oracle import (
    CalculusOracle,
    apply_allowlist,
    compare_sources,
    divergence_from,
    xquery_outcomes,
)
from repro.testing.shrinker import shrink_program, shrink_text


# -- generator ----------------------------------------------------------------


def test_generator_is_deterministic():
    render = lambda seed: [  # noqa: E731
        ProgramGenerator(random.Random(seed)).program().render() for _ in range(20)
    ]
    assert render(9) == render(9)
    assert render(9) != render(10)


def test_generated_programs_compile(fuzz_seed):
    generator = ProgramGenerator(random.Random(fuzz_seed))
    for _ in range(100):
        outcomes = xquery_outcomes(generator.program().render())
        for outcome in outcomes.values():
            assert outcome[0] != "crash", outcome


def test_generator_coverage_fills_up():
    coverage = {}
    generator = ProgramGenerator(random.Random(3), coverage=coverage)
    for _ in range(400):
        generator.program()
    hit = sum(1 for name in ProgramGenerator.PRODUCTIONS if coverage.get(name))
    assert hit >= 0.9 * len(ProgramGenerator.PRODUCTIONS), sorted(
        name for name in ProgramGenerator.PRODUCTIONS if not coverage.get(name)
    )


def test_genexpr_structural_operations():
    tree = GenExpr("seq", ["(", atom("1"), ", ", atom("2"), ")"])
    assert tree.render() == "(1, 2)"
    paths = [path for path, _ in tree.walk()]
    assert paths == [(), (1,), (3,)]
    assert tree.replace((3,), atom("9")).render() == "(1, 9)"
    assert tree.without_part((), 3).render() == "(1, )"  # raw part drop;
    # dangling-separator candidates self-reject because they no longer compile.


# -- metamorphic rewrites ------------------------------------------------------


def test_metamorphic_rules_preserve_semantics(fuzz_seed):
    rng = random.Random(fuzz_seed)
    generator = ProgramGenerator(rng)
    seen = set()
    for _ in range(120):
        original, rewritten, rule = metamorphic_pair(rng, generator)
        seen.add(rule)
        divergence = compare_sources(original, rewritten, detail=f"rule={rule}")
        assert divergence is None, divergence and divergence.describe()
    assert seen == set(METAMORPHIC_RULES)


# -- oracles -------------------------------------------------------------------


def test_crash_outcome_is_always_a_divergence():
    outcomes = {
        "treewalk": ("crash", "ValueError", "boom"),
        "closures": ("crash", "ValueError", "boom"),
    }
    divergence = divergence_from("max(<x>et</x>)", outcomes, "xquery-pair")
    assert divergence is not None and not divergence.allowlisted
    assert "engine-crash" in divergence.detail


def test_allowlist_licenses_html_property_divergence():
    model = random_model(5, html_properties=True)
    query = Query(
        start=Start(all_nodes=True),
        steps=[FilterProperty(name="description", op="contains", value="<p>")],
        collect=Collect(sort_by=None, descending=False, distinct=True),
    )
    divergence = CalculusOracle(model).compare(query)
    assert divergence is not None
    assert divergence.allowlisted == "html-property-filter"


def test_apply_allowlist_leaves_real_divergences_alone():
    divergence = divergence_from(
        "probe",
        {"a": ("ok", "1", ()), "b": ("ok", "2", ())},
        "xquery-pair",
    )
    assert apply_allowlist(divergence).allowlisted is None


def test_calculus_oracle_randomized(fuzz_seed):
    rng = random.Random(fuzz_seed)
    model = random_model(fuzz_seed)
    oracle = CalculusOracle(model)
    for _ in range(40):
        divergence = oracle.compare(random_calculus_query(rng, model))
        assert divergence is None or divergence.allowlisted, divergence.describe()


# -- shrinker ------------------------------------------------------------------


def test_shrinker_reduces_injected_divergence_to_five_lines(fuzz_seed):
    # the acceptance criterion: graft a trigger expression deep into a big
    # generated program, pretend one backend miscompiles it, and the
    # shrinker must dig it back out as a <=5-line reproducer.
    generator = ProgramGenerator(random.Random(fuzz_seed), max_fuel=18)
    program = graft_trigger(generator.program(), "7 idiv 2")
    is_interesting = injected_interesting()
    assert is_interesting(program.render())
    shrunk = shrink_program(program, is_interesting)
    source = shrunk.render()
    assert is_interesting(source)
    assert "idiv" in source
    assert len(source.splitlines()) <= 5, source
    assert len(source) < len(program.render())


def test_shrink_text_ddmin():
    source = "\n".join(f"line {i}" for i in range(20)) + "\nTRIGGER\nline 20"
    shrunk = shrink_text(source, lambda s: "TRIGGER" in s)
    assert "TRIGGER" in shrunk
    assert len(shrunk) <= len("TRIGGER") + 2


# -- campaigns and the CLI -----------------------------------------------------


def test_campaign_is_deterministic(fuzz_seed):
    def snapshot():
        payload = run_campaign(fuzz_seed, budget=50).to_json()
        payload.pop("elapsed_seconds")
        return payload

    assert snapshot() == snapshot()


def test_campaign_counts_and_coverage(fuzz_seed):
    stats = run_campaign(fuzz_seed, budget=120)
    assert stats.programs == 120
    assert sum(stats.by_kind.values()) == 120
    assert stats.productions_hit > 0
    assert not stats.unallowlisted


def test_cli_check_gate(tmp_path, fuzz_seed):
    from repro.testing import fuzz as fuzz_cli

    json_path = tmp_path / "stats.json"
    code = fuzz_cli.main(
        [
            "--seed",
            str(fuzz_seed),
            "--budget",
            "40",
            "--check",
            "--json",
            str(json_path),
        ]
    )
    assert code == 0
    assert json_path.exists()


# -- corpus format -------------------------------------------------------------


def test_corpus_roundtrip(tmp_path):
    directory = str(tmp_path)
    write_xquery_case(
        directory,
        "roundtrip",
        "1 + 1",
        config={"duplicate_attribute_mode": "keep"},
        note="format round-trip",
        seed=7,
        generator_version=1,
    )
    (case,) = load_corpus(directory)
    assert case.name == "roundtrip.xq"
    assert case.kind == "xquery"
    assert case.source == "1 + 1"
    assert case.engine_config().duplicate_attribute_mode == "keep"
    assert case.note == "format round-trip"
    assert case.seed == 7 and case.generator_version == 1
    assert case.allow is None
