"""Replay the pinned fuzz corpus: lottery wins become regression tests.

Every file under ``tests/corpus/fuzz/`` is a minimal reproducer for a
divergence the differential fuzzer once found (or a licensed quirk it
keeps finding on purpose).  Replaying them asserts the fixed bugs stay
fixed and the allowlisted quirks stay allowlisted — with the *same* rule
that licensed them, so an allowlist edit cannot silently absorb a real
regression.

A short fixed-seed campaign also runs here, so plain ``pytest`` exercises
the generator/oracle pipeline end to end on every machine.
"""

import os

import pytest

from repro.testing.corpus import load_corpus, parse_corpus_query
from repro.testing.models import random_model
from repro.testing.oracle import (
    CalculusOracle,
    compare_xquery,
    type_soundness_divergence,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus", "fuzz")
CASES = load_corpus(CORPUS_DIR)


def test_corpus_is_present():
    kinds = {case.kind for case in CASES}
    assert len(CASES) >= 6, "the pinned corpus went missing"
    assert kinds == {"xquery", "calculus"}


@pytest.mark.parametrize("case", CASES, ids=[case.name for case in CASES])
def test_corpus_provenance(case):
    # every pinned case must say where it came from and what it pinned.
    assert case.note, f"{case.name}: missing provenance note"
    if case.kind == "xquery":
        assert case.seed is not None and case.generator_version is not None, (
            f"{case.name}: missing seed/generator-version provenance"
        )


@pytest.mark.parametrize(
    "case",
    [case for case in CASES if case.kind == "xquery"],
    ids=[case.name for case in CASES if case.kind == "xquery"],
)
def test_replay_xquery_case(case):
    divergence = compare_xquery(case.source, case.engine_config())
    if case.allow:
        assert divergence is None or divergence.allowlisted == case.allow, (
            divergence and divergence.describe()
        )
    else:
        assert divergence is None, divergence and divergence.describe()
    # every xquery pin also replays through the type-soundness oracle, so
    # pins for fixed analyzer bugs stay fixed (and pair pins get the
    # static/runtime check for free).
    soundness = type_soundness_divergence(case.source, case.engine_config())
    if not case.allow:
        assert soundness is None, soundness and soundness.describe()


@pytest.mark.parametrize(
    "case",
    [case for case in CASES if case.kind == "calculus"],
    ids=[case.name for case in CASES if case.kind == "calculus"],
)
def test_replay_calculus_case(case):
    model = random_model(
        case.model_seed, size=case.model_size, html_properties=case.model_html
    )
    divergence = CalculusOracle(model).compare(parse_corpus_query(case))
    if case.allow:
        assert divergence is not None, (
            f"{case.name}: the licensed quirk stopped diverging — either the "
            "quirk was (wrongly) fixed or the reproducer no longer triggers it"
        )
        assert divergence.allowlisted == case.allow, divergence.describe()
    else:
        assert divergence is None, divergence and divergence.describe()


def test_mini_campaign_is_clean(fuzz_seed):
    from repro.testing.fuzz import run_campaign

    stats = run_campaign(fuzz_seed, budget=80)
    assert stats.programs == 80
    assert not stats.unallowlisted, "\n\n".join(
        divergence.describe() for divergence in stats.unallowlisted
    )
