"""Dirty-tracking and incremental export correctness.

The load-bearing invariant: after ANY sequence of model mutations, the
incrementally maintained export document serializes byte-identically to a
fresh full :func:`export_model`.  The hypothesis suite drives random
mutation programs at it; the unit tests pin the individual event kinds
and the edge cases (remove-then-readd reorders, property deletes, html
properties, dangling writes).
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.awb import IncrementalExporter, Model, export_model, load_metamodel
from repro.workloads import make_it_model
from repro.xmlio import serialize


def full_text(model):
    return serialize(export_model(model), indent=True)


def incremental_text(exporter):
    return serialize(exporter.export(), indent=True)


@pytest.fixture()
def model():
    return make_it_model(scale=4)


@pytest.fixture()
def exporter(model):
    exporter = IncrementalExporter(model)
    exporter.export()  # establish the baseline document
    return exporter


class TestMutationEvents:
    def test_model_generation_bumps_on_every_mutation(self, model):
        generation = model.generation
        node = model.create_node("User", label="new")
        assert model.generation > generation
        generation = model.generation
        node.set("firstName", "Zed")
        assert model.generation > generation
        generation = model.generation
        node.properties["adHoc"] = "direct dict write"
        assert model.generation > generation
        generation = model.generation
        model.remove_node(node)
        assert model.generation > generation

    def test_listener_sees_property_bag_writes(self, model):
        events = []
        model.add_listener(lambda kind, entity_id: events.append((kind, entity_id)))
        node = model.create_node("User", node_id="NX")
        assert ("node-added", "NX") in events
        events.clear()
        node.properties["x"] = 1
        del node.properties["x"]
        node.properties.update(y=2)
        node.properties.pop("y")
        node.label = "via label setter"
        assert events and all(kind == "node-changed" for kind, _ in events)
        assert len(events) == 5

    def test_relation_set_and_listener(self, model):
        events = []
        model.add_listener(lambda kind, entity_id: events.append((kind, entity_id)))
        users = model.nodes_of_type("User")
        relation = model.connect(users[0], "likes", users[1])
        assert ("relation-added", relation.id) in events
        relation.set("since", 2004)
        assert ("relation-changed", relation.id) in events
        assert relation.get("since") == 2004

    def test_remove_listener(self, model):
        events = []
        listener = lambda kind, entity_id: events.append(kind)
        model.add_listener(listener)
        model.remove_listener(listener)
        model.create_node("User")
        assert events == []


class TestIncrementalExport:
    def test_clean_export_is_reused(self, exporter):
        assert exporter.export() is exporter.export()

    def test_invalidate_forces_new_document(self, exporter):
        first = exporter.export()
        exporter.invalidate()
        assert exporter.export() is not first
        assert exporter.stats()["full_exports"] == 2

    def test_property_change_patches_one_subtree(self, model, exporter):
        model.nodes_of_type("User")[0].set("firstName", "Renamed")
        assert incremental_text(exporter) == full_text(model)
        stats = exporter.stats()
        assert stats["full_exports"] == 1
        assert stats["subtree_exports"] == 1

    def test_node_add_and_remove(self, model, exporter):
        added = model.create_node("User", label="fresh", birthYear=1980)
        assert incremental_text(exporter) == full_text(model)
        model.remove_node(added)
        assert incremental_text(exporter) == full_text(model)

    def test_relation_add_change_remove(self, model, exporter):
        users = model.nodes_of_type("User")
        relation = model.connect(users[0], "likes", users[-1], since=1999)
        assert incremental_text(exporter) == full_text(model)
        relation.set("since", 2004)
        assert incremental_text(exporter) == full_text(model)
        model.remove_relation(relation)
        assert incremental_text(exporter) == full_text(model)

    def test_remove_node_cascades_relations(self, model, exporter):
        # removing a node drops every relation touching it, in one batch.
        victim = model.nodes_of_type("User")[0]
        assert model.outgoing(victim) or model.incoming(victim)
        model.remove_node(victim)
        assert incremental_text(exporter) == full_text(model)

    def test_readded_id_moves_to_end_of_node_block(self, model, exporter):
        victim = model.nodes_of_type("Program")[0]
        node_id = victim.id
        model.remove_node(victim)
        model.create_node("Program", label="reborn", node_id=node_id)
        assert incremental_text(exporter) == full_text(model)

    def test_property_delete_and_reset_moves_to_end(self, model, exporter):
        node = model.nodes_of_type("User")[0]
        node.set("extra", "x")
        exporter.export()
        del node.properties["label"]
        node.set("label", "back-at-the-end")
        assert incremental_text(exporter) == full_text(model)

    def test_html_property_subtree(self, model, exporter):
        node = model.nodes_of_type("Document")[0]
        node.set("biography", "<p>rich <b>text</b></p>")
        assert incremental_text(exporter) == full_text(model)

    def test_model_rename_is_picked_up(self, model, exporter):
        model.name = "renamed-model"
        model.create_node("User", label="trigger")  # any mutation applies it
        assert incremental_text(exporter) == full_text(model)

    def test_dangling_write_after_removal_is_harmless(self, model, exporter):
        victim = model.nodes_of_type("User")[0]
        model.remove_node(victim)
        victim.properties["ghost"] = "write to a removed node"
        assert incremental_text(exporter) == full_text(model)

    def test_detach_stops_tracking(self, model, exporter):
        exporter.detach()
        before = incremental_text(exporter)
        model.create_node("User", label="unseen")
        assert incremental_text(exporter) == before


# -- the property: random mutation programs keep exports byte-identical --------


NODE_TYPES = ["User", "Superuser", "Program", "Server", "Document"]
PROPERTY_NAMES = ["label", "firstName", "version", "note"]

mutation_ops = st.sampled_from(
    ["add-node", "remove-node", "set-property", "delete-property",
     "add-relation", "remove-relation", "set-relation-property"]
)

word = st.text(alphabet=string.ascii_letters + string.digits, min_size=0, max_size=8)


class TestIncrementalExportProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_random_mutations_keep_export_identical(self, data):
        model = Model(load_metamodel("it-architecture"))
        exporter = IncrementalExporter(model)
        # seed a few nodes so early ops have something to chew on
        for index in range(data.draw(st.integers(min_value=0, max_value=4))):
            model.create_node(
                data.draw(st.sampled_from(NODE_TYPES)), label=f"seed-{index}"
            )
        exporter.export()

        steps = data.draw(st.integers(min_value=1, max_value=12))
        for _ in range(steps):
            op = data.draw(mutation_ops)
            nodes = list(model.nodes.values())
            relations = list(model.relations.values())
            if op == "add-node":
                model.create_node(
                    data.draw(st.sampled_from(NODE_TYPES)),
                    label=data.draw(word),
                )
            elif op == "remove-node" and nodes:
                model.remove_node(data.draw(st.sampled_from(nodes)))
            elif op == "set-property" and nodes:
                data.draw(st.sampled_from(nodes)).set(
                    data.draw(st.sampled_from(PROPERTY_NAMES)), data.draw(word)
                )
            elif op == "delete-property" and nodes:
                node = data.draw(st.sampled_from(nodes))
                if node.properties:
                    del node.properties[
                        data.draw(st.sampled_from(sorted(node.properties)))
                    ]
            elif op == "add-relation" and nodes:
                model.connect(
                    data.draw(st.sampled_from(nodes)),
                    data.draw(st.sampled_from(["likes", "uses", "has", "runs"])),
                    data.draw(st.sampled_from(nodes)),
                )
            elif op == "remove-relation" and relations:
                model.remove_relation(data.draw(st.sampled_from(relations)))
            elif op == "set-relation-property" and relations:
                data.draw(st.sampled_from(relations)).set(
                    "since", data.draw(st.integers(min_value=1990, max_value=2005))
                )
            # interleave exports at random points: the exporter must cope
            # with both batched and step-by-step application.
            if data.draw(st.booleans()):
                assert incremental_text(exporter) == full_text(model)
        assert incremental_text(exporter) == full_text(model)


# -- update-language-driven programs (the write path queries actually take) ----


class TestUpdateScriptDrivenExport:
    """The same byte-identity invariant, but driven through the update
    sublanguage — the path :meth:`QueryService.apply_update` takes — with
    delete-heavy and insert-then-delete-interleaved shapes the raw random
    mutation suite reaches only rarely."""

    def test_delete_heavy_sequence(self, model, exporter):
        from repro.xquery.updates import apply_script

        for index, user in enumerate(list(model.nodes_of_type("User"))):
            apply_script(f"delete node {user.id}", model)
            if index % 2:  # batched and step-by-step application both
                assert incremental_text(exporter) == full_text(model)
        for document in list(model.nodes_of_type("Document")):
            apply_script(f"delete node {document.id}", model)
        assert incremental_text(exporter) == full_text(model)

    def test_insert_delete_interleaved_in_one_script(self, model, exporter):
        from repro.xquery.updates import apply_script

        apply_script(
            'insert node User id T1 with (label "transient");'
            " insert relation likes from T1 to N2;"
            ' replace value of T1.label with "still transient";'
            " delete node T1;"
            ' insert node Server id T2 with (label "survivor")',
            model,
        )
        text = incremental_text(exporter)
        assert text == full_text(model)
        assert "transient" not in text and "survivor" in text

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scripts=st.integers(min_value=1, max_value=6),
    )
    def test_random_update_scripts_keep_export_identical(self, seed, scripts):
        import random

        from repro.testing.models import random_model, random_update_script
        from repro.xquery.updates import apply_script

        model = random_model(seed, size=10)
        exporter = IncrementalExporter(model)
        exporter.export()
        rng = random.Random(seed * 7 + 1)
        for index in range(scripts):
            apply_script(random_update_script(rng, model), model)
            if index % 2:
                assert incremental_text(exporter) == full_text(model)
        assert incremental_text(exporter) == full_text(model)


# -- the subtree-delta log feeding statistics maintenance ----------------------


class TestDeltaLog:
    def test_property_write_yields_a_replace_pair(self, model, exporter):
        cursor = exporter.delta_cursor()
        node = model.nodes_of_type("User")[0]
        node.set("label", "patched")
        exporter.export()
        [(old, new)] = exporter.delta_since(cursor)
        assert old.get_attribute("id") == new.get_attribute("id") == node.id
        assert old is not new

    def test_cursor_taken_midstream_sees_only_the_suffix(self, model, exporter):
        model.create_node("User", label="first")
        exporter.export()
        cursor = exporter.delta_cursor()
        second = model.create_node("Server", label="second")
        exporter.export()
        delta = exporter.delta_since(cursor)
        assert [pair[1].get_attribute("id") for pair in delta] == [second.id]

    def test_log_cap_overflow_breaks_the_epoch(self, model, exporter):
        from repro.awb.xml_io import _DELTA_LOG_CAP

        cursor = exporter.delta_cursor()
        for index in range(_DELTA_LOG_CAP + 10):
            model.create_node("User", label=f"bulk-{index}")
        exporter.export()
        assert exporter.delta_since(cursor) is None
        assert exporter.delta_since(exporter.delta_cursor()) == []

    def test_model_rename_breaks_the_epoch(self, model, exporter):
        cursor = exporter.delta_cursor()
        model.name = "renamed-model"
        model.create_node("User", label="trigger")
        exporter.export()
        assert exporter.delta_since(cursor) is None

    def test_full_rebuild_breaks_the_epoch(self, model, exporter):
        cursor = exporter.delta_cursor()
        exporter.invalidate()
        exporter.export()
        assert exporter.delta_since(cursor) is None
