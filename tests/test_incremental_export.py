"""Dirty-tracking and incremental export correctness.

The load-bearing invariant: after ANY sequence of model mutations, the
incrementally maintained export document serializes byte-identically to a
fresh full :func:`export_model`.  The hypothesis suite drives random
mutation programs at it; the unit tests pin the individual event kinds
and the edge cases (remove-then-readd reorders, property deletes, html
properties, dangling writes).
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.awb import IncrementalExporter, Model, export_model, load_metamodel
from repro.workloads import make_it_model
from repro.xmlio import serialize


def full_text(model):
    return serialize(export_model(model), indent=True)


def incremental_text(exporter):
    return serialize(exporter.export(), indent=True)


@pytest.fixture()
def model():
    return make_it_model(scale=4)


@pytest.fixture()
def exporter(model):
    exporter = IncrementalExporter(model)
    exporter.export()  # establish the baseline document
    return exporter


class TestMutationEvents:
    def test_model_generation_bumps_on_every_mutation(self, model):
        generation = model.generation
        node = model.create_node("User", label="new")
        assert model.generation > generation
        generation = model.generation
        node.set("firstName", "Zed")
        assert model.generation > generation
        generation = model.generation
        node.properties["adHoc"] = "direct dict write"
        assert model.generation > generation
        generation = model.generation
        model.remove_node(node)
        assert model.generation > generation

    def test_listener_sees_property_bag_writes(self, model):
        events = []
        model.add_listener(lambda kind, entity_id: events.append((kind, entity_id)))
        node = model.create_node("User", node_id="NX")
        assert ("node-added", "NX") in events
        events.clear()
        node.properties["x"] = 1
        del node.properties["x"]
        node.properties.update(y=2)
        node.properties.pop("y")
        node.label = "via label setter"
        assert events and all(kind == "node-changed" for kind, _ in events)
        assert len(events) == 5

    def test_relation_set_and_listener(self, model):
        events = []
        model.add_listener(lambda kind, entity_id: events.append((kind, entity_id)))
        users = model.nodes_of_type("User")
        relation = model.connect(users[0], "likes", users[1])
        assert ("relation-added", relation.id) in events
        relation.set("since", 2004)
        assert ("relation-changed", relation.id) in events
        assert relation.get("since") == 2004

    def test_remove_listener(self, model):
        events = []
        listener = lambda kind, entity_id: events.append(kind)
        model.add_listener(listener)
        model.remove_listener(listener)
        model.create_node("User")
        assert events == []


class TestIncrementalExport:
    def test_clean_export_is_reused(self, exporter):
        assert exporter.export() is exporter.export()

    def test_invalidate_forces_new_document(self, exporter):
        first = exporter.export()
        exporter.invalidate()
        assert exporter.export() is not first
        assert exporter.stats()["full_exports"] == 2

    def test_property_change_patches_one_subtree(self, model, exporter):
        model.nodes_of_type("User")[0].set("firstName", "Renamed")
        assert incremental_text(exporter) == full_text(model)
        stats = exporter.stats()
        assert stats["full_exports"] == 1
        assert stats["subtree_exports"] == 1

    def test_node_add_and_remove(self, model, exporter):
        added = model.create_node("User", label="fresh", birthYear=1980)
        assert incremental_text(exporter) == full_text(model)
        model.remove_node(added)
        assert incremental_text(exporter) == full_text(model)

    def test_relation_add_change_remove(self, model, exporter):
        users = model.nodes_of_type("User")
        relation = model.connect(users[0], "likes", users[-1], since=1999)
        assert incremental_text(exporter) == full_text(model)
        relation.set("since", 2004)
        assert incremental_text(exporter) == full_text(model)
        model.remove_relation(relation)
        assert incremental_text(exporter) == full_text(model)

    def test_remove_node_cascades_relations(self, model, exporter):
        # removing a node drops every relation touching it, in one batch.
        victim = model.nodes_of_type("User")[0]
        assert model.outgoing(victim) or model.incoming(victim)
        model.remove_node(victim)
        assert incremental_text(exporter) == full_text(model)

    def test_readded_id_moves_to_end_of_node_block(self, model, exporter):
        victim = model.nodes_of_type("Program")[0]
        node_id = victim.id
        model.remove_node(victim)
        model.create_node("Program", label="reborn", node_id=node_id)
        assert incremental_text(exporter) == full_text(model)

    def test_property_delete_and_reset_moves_to_end(self, model, exporter):
        node = model.nodes_of_type("User")[0]
        node.set("extra", "x")
        exporter.export()
        del node.properties["label"]
        node.set("label", "back-at-the-end")
        assert incremental_text(exporter) == full_text(model)

    def test_html_property_subtree(self, model, exporter):
        node = model.nodes_of_type("Document")[0]
        node.set("biography", "<p>rich <b>text</b></p>")
        assert incremental_text(exporter) == full_text(model)

    def test_model_rename_is_picked_up(self, model, exporter):
        model.name = "renamed-model"
        model.create_node("User", label="trigger")  # any mutation applies it
        assert incremental_text(exporter) == full_text(model)

    def test_dangling_write_after_removal_is_harmless(self, model, exporter):
        victim = model.nodes_of_type("User")[0]
        model.remove_node(victim)
        victim.properties["ghost"] = "write to a removed node"
        assert incremental_text(exporter) == full_text(model)

    def test_detach_stops_tracking(self, model, exporter):
        exporter.detach()
        before = incremental_text(exporter)
        model.create_node("User", label="unseen")
        assert incremental_text(exporter) == before


# -- the property: random mutation programs keep exports byte-identical --------


NODE_TYPES = ["User", "Superuser", "Program", "Server", "Document"]
PROPERTY_NAMES = ["label", "firstName", "version", "note"]

mutation_ops = st.sampled_from(
    ["add-node", "remove-node", "set-property", "delete-property",
     "add-relation", "remove-relation", "set-relation-property"]
)

word = st.text(alphabet=string.ascii_letters + string.digits, min_size=0, max_size=8)


class TestIncrementalExportProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_random_mutations_keep_export_identical(self, data):
        model = Model(load_metamodel("it-architecture"))
        exporter = IncrementalExporter(model)
        # seed a few nodes so early ops have something to chew on
        for index in range(data.draw(st.integers(min_value=0, max_value=4))):
            model.create_node(
                data.draw(st.sampled_from(NODE_TYPES)), label=f"seed-{index}"
            )
        exporter.export()

        steps = data.draw(st.integers(min_value=1, max_value=12))
        for _ in range(steps):
            op = data.draw(mutation_ops)
            nodes = list(model.nodes.values())
            relations = list(model.relations.values())
            if op == "add-node":
                model.create_node(
                    data.draw(st.sampled_from(NODE_TYPES)),
                    label=data.draw(word),
                )
            elif op == "remove-node" and nodes:
                model.remove_node(data.draw(st.sampled_from(nodes)))
            elif op == "set-property" and nodes:
                data.draw(st.sampled_from(nodes)).set(
                    data.draw(st.sampled_from(PROPERTY_NAMES)), data.draw(word)
                )
            elif op == "delete-property" and nodes:
                node = data.draw(st.sampled_from(nodes))
                if node.properties:
                    del node.properties[
                        data.draw(st.sampled_from(sorted(node.properties)))
                    ]
            elif op == "add-relation" and nodes:
                model.connect(
                    data.draw(st.sampled_from(nodes)),
                    data.draw(st.sampled_from(["likes", "uses", "has", "runs"])),
                    data.draw(st.sampled_from(nodes)),
                )
            elif op == "remove-relation" and relations:
                model.remove_relation(data.draw(st.sampled_from(relations)))
            elif op == "set-relation-property" and relations:
                data.draw(st.sampled_from(relations)).set(
                    "since", data.draw(st.integers(min_value=1990, max_value=2005))
                )
            # interleave exports at random points: the exporter must cope
            # with both batched and step-by-step application.
            if data.draw(st.booleans()):
                assert incremental_text(exporter) == full_text(model)
        assert incremental_text(exporter) == full_text(model)
