"""The ``python -m repro.xquery.lint`` front end: exit codes and formats."""

import json

import pytest

from repro.xquery.lint import main


@pytest.fixture
def dirty_query(tmp_path):
    path = tmp_path / "dirty.xq"
    path.write_text('let $d := trace("x", 1) return $nope\n', encoding="utf-8")
    return str(path)


@pytest.fixture
def clean_query(tmp_path):
    path = tmp_path / "clean.xq"
    path.write_text("for $i in 1 to 3 return $i * $i\n", encoding="utf-8")
    return str(path)


class TestFileMode:
    def test_clean_file_exits_zero(self, clean_query, capsys):
        assert main([clean_query]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one_and_are_printed(self, dirty_query, capsys):
        assert main([dirty_query]) == 1
        out = capsys.readouterr().out
        assert "XQL001" in out
        assert "XQL007" in out
        assert dirty_query in out

    def test_json_output_is_parseable(self, dirty_query, capsys):
        assert main(["--json", dirty_query]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["code"] for entry in payload} == {"XQL001", "XQL007"}
        assert all(entry["line"] == 1 for entry in payload)

    def test_select_limits_rules(self, dirty_query, capsys):
        assert main(["--select", "XQL001", dirty_query]) == 1
        out = capsys.readouterr().out
        assert "XQL001" in out
        assert "XQL007" not in out

    def test_ignore_drops_rules(self, dirty_query, capsys):
        main(["--ignore", "XQL001,XQL007", dirty_query])
        assert "XQL00" not in capsys.readouterr().out

    def test_fail_on_error_tolerates_warnings(self, tmp_path):
        path = tmp_path / "warn-only.xq"
        path.write_text('let $d := trace("x", 1) return 2\n', encoding="utf-8")
        assert main([str(path)]) == 1
        assert main(["--fail-on", "error", str(path)]) == 0

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["/no/such/file.xq"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_rules_catalog(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for code in ("XQL001", "XQL004", "XQL008"):
            assert code in out


class TestCorpusMode:
    def test_corpus_matches_committed_baseline(self, capsys):
        # the repo invariant CI enforces: no findings beyond the baseline
        assert main(["--corpus"]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_write_then_check_roundtrip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        assert main(["--corpus", "--write-baseline", "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["--corpus", "--baseline", str(baseline)]) == 0

    def test_empty_baseline_fails_when_corpus_has_findings(self, tmp_path, capsys):
        baseline = tmp_path / "empty.txt"
        baseline.write_text("# nothing accepted\n", encoding="utf-8")
        code = main(["--corpus", "--baseline", str(baseline)])
        out = capsys.readouterr().out
        # the shipped corpus deliberately keeps some 2004 idioms, so an
        # empty baseline must trip the gate
        assert code == 1
        assert "new" in out

    def test_stale_entries_are_reported_but_not_fatal(self, tmp_path, capsys):
        baseline = tmp_path / "stale.txt"
        main(["--corpus", "--write-baseline", "--baseline", str(baseline)])
        with open(baseline, "a", encoding="utf-8") as handle:
            handle.write("gone.xq:1:1:XQL001\n")
        capsys.readouterr()
        assert main(["--corpus", "--baseline", str(baseline)]) == 0
        assert "no longer produced" in capsys.readouterr().out
