"""Linting the repo's own .xq corpus: units, baseline, invariants."""

from repro.xquery.analysis import (
    corpus_units,
    diff_against_baseline,
    format_baseline,
    lint_corpus,
    lint_unit,
    load_baseline,
)
from repro.xquery.analysis.corpus import baseline_key


class TestCorpusUnits:
    def test_both_docgen_regimes_are_covered(self):
        labels = [unit.label for unit in corpus_units()]
        assert "docgen:main(values)" in labels
        assert "docgen:main(exceptions)" in labels

    def test_standalone_phases_are_covered(self):
        labels = [unit.label for unit in corpus_units()]
        for phase in ("phase_omissions", "phase_toc", "phase_replace", "phase_strip"):
            assert f"docgen:{phase}.xq" in labels

    def test_example_queries_are_covered(self):
        labels = [unit.label for unit in corpus_units()]
        assert any(label.startswith("examples/xq/") for label in labels)

    def test_no_unit_fails_to_parse(self):
        for unit in corpus_units():
            diagnostics = lint_unit(unit)
            assert not any(d.code == "XQL000" for d in diagnostics), unit.label


class TestBaselineGate:
    def test_corpus_produces_no_findings_beyond_baseline(self):
        fresh, _stale = diff_against_baseline(lint_corpus())
        assert fresh == [], [d.render() for d in fresh]

    def test_baseline_has_no_stale_entries(self):
        _fresh, stale = diff_against_baseline(lint_corpus())
        assert stale == set()

    def test_committed_baseline_loads(self):
        accepted = load_baseline()
        # the shipped corpus keeps a few 2004 idioms on purpose
        assert accepted
        assert all(entry.count(":") >= 3 for entry in accepted)

    def test_examples_are_completely_clean(self):
        # example queries are the showcase: not even baselined findings
        for unit in corpus_units():
            if unit.label.startswith("examples/xq/"):
                assert lint_unit(unit) == [], unit.label

    def test_format_load_roundtrip(self, tmp_path):
        findings = lint_corpus()
        path = tmp_path / "baseline.txt"
        path.write_text(format_baseline(findings), encoding="utf-8")
        accepted = load_baseline(str(path))
        assert accepted == {baseline_key(d) for d in findings}

    def test_new_finding_would_trip_the_gate(self, tmp_path):
        from repro.xquery.analysis import Diagnostic

        findings = lint_corpus()
        path = tmp_path / "baseline.txt"
        path.write_text(format_baseline(findings), encoding="utf-8")
        intruder = Diagnostic(
            code="XQL001", severity="warning", message="seeded",
            line=1, column=1, source="intruder.xq",
        )
        fresh, _ = diff_against_baseline(findings + [intruder], str(path))
        assert [d.source for d in fresh] == ["intruder.xq"]
