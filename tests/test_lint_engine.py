"""EngineConfig(lint=...) wiring, backend parity, and position threading."""

import warnings

import pytest

from repro.xquery import (
    EngineConfig,
    LintWarning,
    XQueryEngine,
    XQueryStaticError,
    parse_query,
)
from repro.xquery.statictype import check_module

DEAD_TRACE = 'let $x := 6 * 7 let $dummy := trace("x=", $x) return $x'


class TestLintModes:
    def test_off_by_default(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail the test
            query = XQueryEngine().compile(DEAD_TRACE)
        assert query.diagnostics == []

    def test_warn_mode_emits_lint_warnings(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            query = XQueryEngine(EngineConfig(lint="warn")).compile(DEAD_TRACE)
        lint = [w for w in caught if issubclass(w.category, LintWarning)]
        assert len(lint) == 1
        assert "XQL001" in str(lint[0].message)
        assert [d.code for d in query.diagnostics] == ["XQL001"]

    def test_warn_mode_still_compiles_and_runs(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            query = XQueryEngine(EngineConfig(lint="warn")).compile(DEAD_TRACE)
        assert query.run() == [42]

    def test_error_mode_raises_static_error(self):
        engine = XQueryEngine(EngineConfig(lint="error"))
        with pytest.raises(XQueryStaticError, match="XQL001"):
            engine.compile(DEAD_TRACE)

    def test_error_mode_accepts_clean_queries(self):
        engine = XQueryEngine(EngineConfig(lint="error"))
        assert engine.evaluate("1 + 1") == [2]

    def test_info_findings_do_not_warn_or_raise(self):
        # an unused let is only informational
        source = "let $unused := 1 return 42"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            query = XQueryEngine(EngineConfig(lint="error")).compile(source)
        assert [d.severity for d in query.diagnostics] == ["info"]

    def test_invalid_lint_value_is_rejected(self):
        with pytest.raises(ValueError, match="lint"):
            EngineConfig(lint="loud")

    def test_lint_runs_before_the_optimizer_deletes_the_evidence(self):
        # with the buggy dead-code pass on, the optimizer removes the
        # trace binding — the linter must still see (and escalate) it
        config = EngineConfig(lint="warn", optimize=True, trace_is_dead_code=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            query = XQueryEngine(config).compile(DEAD_TRACE)
        assert query.optimizer_stats.traces_removed == 1
        (diagnostic,) = query.diagnostics
        assert diagnostic.code == "XQL001"
        assert diagnostic.severity == "error"


class TestBackendParity:
    PROGRAMS = (
        DEAD_TRACE,
        "(1, 2)[3]",
        '<a x="1">{ attribute x { 2 } }</a>',
        "declare function local:orphan($x) { $x }; 42",
        "let $x := 1 let $x := 2 return $x",
    )

    def test_both_backends_emit_identical_diagnostics(self):
        for source in self.PROGRAMS:
            per_backend = {}
            for backend in ("treewalk", "closures"):
                config = EngineConfig(lint="warn", backend=backend)
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    query = XQueryEngine(config).compile(source)
                per_backend[backend] = [
                    (d.code, d.severity, d.line, d.column, d.message)
                    for d in query.diagnostics
                ]
            assert per_backend["treewalk"] == per_backend["closures"], source


class TestPositionThreading:
    """The satellite fix: AST nodes carry real lexer positions."""

    def test_let_and_for_clauses_are_stamped(self):
        module = parse_query("for $i in 1 to 3\nlet $d := $i\nreturn $d")
        for_clause, let_clause = module.body.clauses
        assert (for_clause.line, for_clause.column) == (1, 5)
        assert (let_clause.line, let_clause.column) == (2, 5)

    def test_where_clause_is_stamped(self):
        module = parse_query("for $i in 1 to 3\nwhere $i gt 1\nreturn $i")
        where = module.body.clauses[1]
        assert (where.line, where.column) == (2, 1)

    def test_params_are_stamped(self):
        module = parse_query(
            "declare function local:f($alpha,\n  $beta) { $alpha };\n1"
        )
        alpha, beta = module.functions[0].params
        assert (alpha.line, alpha.column) == (1, 26)
        assert (beta.line, beta.column) == (2, 3)

    def test_nested_direct_elements_are_stamped(self):
        module = parse_query("<a>\n  <b/>\n</a>")
        inner = [p for p in module.body.content if hasattr(p, "name")]
        assert (inner[0].line, inner[0].column) == (2, 3)

    def test_static_issue_locations_are_no_longer_zero(self):
        (issue,) = check_module(parse_query("let $a := 1\nreturn $nope"))
        assert issue.code == "XPST0008"
        assert (issue.line, issue.column) == (2, 8)

    def test_all_linted_nodes_carry_positions(self):
        # every diagnostic against a multi-line program has a real span
        from repro.xquery.analysis import analyze_source

        source = (
            'declare function local:orphan($x) { $x };\n'
            'let $d := trace("t", 1)\n'
            "return $nope"
        )
        diagnostics = analyze_source(source)
        assert diagnostics
        assert all(d.line > 0 and d.column > 0 for d in diagnostics)
