"""Tests for the lessons audit and the workload generators."""

from repro.littlelang import (
    LESSONS,
    lesson_by_slug,
    profile_java_style_host,
    profile_xquery_2004,
    render_scorecard,
    scorecard_rows,
)
from repro.workloads import (
    count_ladder_lines,
    inventory,
    make_glass_catalog,
    make_it_model,
    make_awb_self_model,
    make_values,
    native_chain,
    nested_input,
    xquery_chain_program,
)
from repro.workloads.loc import count_python_loc, count_xquery_loc


class TestLessons:
    def test_seven_lessons(self):
        assert len(LESSONS) == 7
        assert [lesson.number for lesson in LESSONS] == list(range(1, 8))

    def test_lookup(self):
        assert lesson_by_slug("exceptions").number == 4

    def test_xquery_scores_two(self):
        # the paper credits XQuery with control structures and focus only.
        profile = profile_xquery_2004()
        assert profile.score() == 2
        satisfied = {v.lesson.slug for v in profile.audit() if v.satisfied}
        assert satisfied == {"control-structures", "focus"}

    def test_host_scores_six(self):
        profile = profile_java_style_host()
        assert profile.score() == 6
        missed = {v.lesson.slug for v in profile.audit() if not v.satisfied}
        assert missed == {"focus"}

    def test_scorecard_renders(self):
        text = render_scorecard([profile_xquery_2004(), profile_java_style_host()])
        assert "2/7" in text and "6/7" in text

    def test_scorecard_rows_shape(self):
        rows = scorecard_rows([profile_xquery_2004()])
        assert len(rows) == 7 and all(len(row) == 2 for row in rows)


class TestModelGenerators:
    def test_it_model_deterministic(self):
        first = make_it_model(scale=6, seed=1)
        second = make_it_model(scale=6, seed=1)
        assert first.stats() == second.stats()

    def test_it_model_scales(self):
        small = make_it_model(scale=4)
        large = make_it_model(scale=16)
        assert large.stats()["nodes"] > small.stats()["nodes"]

    def test_it_model_has_exactly_one_sbd(self):
        model = make_it_model(scale=8)
        assert len(model.nodes_of_type("SystemBeingDesigned")) == 1

    def test_it_model_has_version_omissions(self):
        from repro.awb import check_advisories

        model = make_it_model(scale=12)
        assert any(o.kind == "required-property" for o in check_advisories(model))

    def test_glass_catalog(self):
        model = make_glass_catalog(pieces=9)
        assert len(model.nodes_of_type("GlassPiece")) == 9

    def test_awb_self_model(self):
        model = make_awb_self_model()
        assert model.nodes_of_type("NodeTypeDef")


class TestErrorChains:
    def test_nested_input_depth(self):
        root = nested_input(5)
        assert native_chain(root, 5) == "c5"

    def test_broken_chain_raises(self):
        import pytest

        from repro.docgen import GenTrouble

        root = nested_input(5, break_at=3)
        with pytest.raises(GenTrouble, match="c3"):
            native_chain(root, 5)

    def test_xquery_chain_runs(self):
        from repro.xquery import XQueryEngine

        program = xquery_chain_program(4)
        result = XQueryEngine().evaluate(
            program, variables={"input": nested_input(4)}
        )
        assert result[0].name == "done"

    def test_xquery_chain_reports_error_value(self):
        from repro.xquery import XQueryEngine

        program = xquery_chain_program(4)
        result = XQueryEngine().evaluate(
            program, variables={"input": nested_input(4, break_at=2)}
        )
        assert result[0].name == "failed"

    def test_ladder_grows_linearly(self):
        lines8, useful8 = count_ladder_lines(8)
        lines16, useful16 = count_ladder_lines(16)
        # roughly half a dozen lines per call vs one useful line.
        assert lines8 / useful8 > 3
        assert lines16 - lines8 >= 8 * 4


class TestSetValuesAndLoc:
    def test_make_values_has_duplicates(self):
        values = make_values(20, duplicate_every=5)
        assert len(values) == 20 and len(set(values)) < 20

    def test_python_loc_ignores_comments_and_docstrings(self):
        text = '"""Doc.\n\nstring."""\n# comment\nx = 1\n\ny = 2\n'
        assert count_python_loc(text) == 2

    def test_xquery_loc_ignores_comments(self):
        text = "(: comment :)\nlet $x := 1 (: inline :)\nreturn $x\n"
        assert count_xquery_loc(text) == 2

    def test_xquery_loc_nested_comment(self):
        text = "(: outer (: inner :) still comment :)\n1\n"
        assert count_xquery_loc(text) == 1

    def test_inventory_walks_modules(self):
        from repro.docgen.xquery_impl import MODULES_DIR

        files = inventory([MODULES_DIR])
        assert any(path.endswith("util.xq") for path in files)
        assert all(loc > 0 for loc in files.values())
