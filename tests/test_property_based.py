"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.awb import Model, export_model_text, import_model_text, load_metamodel
from repro.xdm import (
    ElementNode,
    TextNode,
    general_compare,
    sequence,
    sort_document_order,
)
from repro.xmlio import parse_element, serialize
from repro.xquery import XQueryEngine

# -- strategies ---------------------------------------------------------------

atoms = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet=string.ascii_letters, max_size=6),
    st.booleans(),
)

nested_values = st.recursive(
    atoms, lambda children: st.lists(children, max_size=4), max_leaves=20
)

xml_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)

xml_text = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'.,!-", max_size=20
)


@st.composite
def xml_trees(draw, depth=3):
    name = draw(xml_names)
    node = ElementNode(name)
    for attr_name in draw(st.lists(xml_names, max_size=3, unique=True)):
        node.set_attribute(attr_name, draw(xml_text))
    if depth > 0:
        for child in draw(st.lists(st.just(None), max_size=3)):
            del child
    count = draw(st.integers(min_value=0, max_value=3)) if depth > 0 else 0
    for _ in range(count):
        if draw(st.booleans()):
            node.append(draw(xml_trees(depth=depth - 1)))
        else:
            text = draw(xml_text)
            if text:
                node.append(TextNode(text))
    return node


# -- sequence flattening laws ------------------------------------------------------


class TestFlatteningLaws:
    @given(nested_values)
    def test_flattening_is_idempotent(self, value):
        flat = sequence(value)
        assert sequence(flat) == flat

    @given(nested_values, nested_values)
    def test_concatenation_associates(self, left, right):
        assert sequence(left, right) == sequence(left) + sequence(right)

    @given(st.lists(atoms, max_size=8))
    def test_atoms_preserved_in_order(self, values):
        assert sequence(values) == list(values)

    @given(nested_values)
    def test_no_nested_lists_survive(self, value):
        assert all(not isinstance(item, list) for item in sequence(value))


# -- general comparison laws -----------------------------------------------------------


class TestGeneralCompareLaws:
    @given(st.lists(st.integers(), max_size=6), st.lists(st.integers(), max_size=6))
    def test_equals_is_symmetric(self, left, right):
        assert general_compare("=", left, right) == general_compare("=", right, left)

    @given(st.lists(st.integers(), min_size=1, max_size=6))
    def test_nonempty_equals_itself(self, values):
        assert general_compare("=", values, values)

    @given(st.lists(st.integers(), max_size=6))
    def test_empty_never_compares(self, values):
        assert not general_compare("=", [], values)

    @given(st.lists(st.integers(), max_size=5), st.integers())
    def test_membership_semantics(self, haystack, needle):
        assert general_compare("=", haystack, [needle]) == (needle in haystack)


# -- XML roundtrip ------------------------------------------------------------------------


class TestXmlRoundtrip:
    @settings(max_examples=60)
    @given(xml_trees())
    def test_parse_serialize_roundtrip(self, tree):
        text = serialize(tree)
        reparsed = parse_element(text, keep_whitespace_text=True)
        assert serialize(reparsed) == text

    @settings(max_examples=40)
    @given(xml_trees())
    def test_string_value_survives_roundtrip(self, tree):
        reparsed = parse_element(serialize(tree), keep_whitespace_text=True)
        assert reparsed.string_value() == tree.string_value()


# -- document order is a total order per tree -----------------------------------------------


class TestDocumentOrderLaws:
    @settings(max_examples=40)
    @given(xml_trees())
    def test_sort_is_deterministic_permutation(self, tree):
        nodes = list(tree.descendants_or_self())
        ordered = sort_document_order(list(reversed(nodes)))
        assert ordered == nodes

    @settings(max_examples=40)
    @given(xml_trees())
    def test_sorting_twice_is_stable(self, tree):
        nodes = list(tree.descendants_or_self())
        once = sort_document_order(nodes)
        assert sort_document_order(once) == once


# -- engine-level properties -------------------------------------------------------------------


engine = XQueryEngine()


class TestEngineProperties:
    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=8))
    def test_count_matches_python(self, values):
        assert engine.evaluate("count($v)", variables={"v": values}) == [len(values)]

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=8))
    def test_reverse_matches_python(self, values):
        assert engine.evaluate("reverse($v)", variables={"v": values}) == list(
            reversed(values)
        )

    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=8))
    def test_sum_matches_python(self, values):
        assert engine.evaluate("sum($v)", variables={"v": values}) == [sum(values)]

    @given(
        st.lists(
            st.text(alphabet=string.ascii_lowercase, max_size=4),
            min_size=1,
            max_size=6,
        )
    )
    def test_order_by_sorts(self, words):
        result = engine.evaluate(
            "for $w in $v order by $w return $w", variables={"v": words}
        )
        assert result == sorted(words)

    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
    def test_range_length(self, start, end):
        result = engine.evaluate(f"count({start} to {end})")
        assert result == [max(0, end - start + 1)]

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=10))
    def test_distinct_values_like_ordered_set(self, values):
        result = engine.evaluate("distinct-values($v)", variables={"v": values})
        assert result == list(dict.fromkeys(values))


# -- AWB export/import is lossless --------------------------------------------------------------


class TestModelRoundtripLaws:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["User", "Superuser", "Program", "Server"]),
                st.text(alphabet=string.ascii_letters, min_size=1, max_size=8),
            ),
            min_size=1,
            max_size=8,
        ),
        st.data(),
    )
    def test_roundtrip_preserves_everything(self, node_specs, data):
        metamodel = load_metamodel("it-architecture")
        model = Model(metamodel)
        nodes = [
            model.create_node(type_name, label=label)
            for type_name, label in node_specs
        ]
        edge_count = data.draw(st.integers(min_value=0, max_value=6))
        for _ in range(edge_count):
            source = data.draw(st.sampled_from(nodes))
            target = data.draw(st.sampled_from(nodes))
            model.connect(source, "likes", target)
        rebuilt = import_model_text(export_model_text(model), metamodel)
        assert rebuilt.stats()["nodes"] == model.stats()["nodes"]
        assert rebuilt.stats()["relations"] == model.stats()["relations"]
        for node in nodes:
            assert rebuilt.node(node.id).label == node.label
            assert rebuilt.node(node.id).type_name == node.type_name
