"""More property-based tests: sequence-function laws and backend agreement."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.awb import Model, load_metamodel
from repro.querycalc import XQueryCalculusBackend, parse_query_xml, run_query
from repro.xquery import XQueryEngine

engine = XQueryEngine()

ints = st.lists(st.integers(min_value=-50, max_value=50), max_size=8)


class TestSequenceFunctionLaws:
    @given(ints, st.integers(min_value=-2, max_value=12))
    def test_remove_insert_roundtrip(self, values, position):
        """insert-before(remove(s,p), p, s[p]) == s for valid positions."""
        if 1 <= position <= len(values):
            result = engine.evaluate(
                "insert-before(remove($s, $p), $p, $s[$p])",
                variables={"s": values, "p": position},
            )
            assert result == values

    @given(ints, st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=10))
    def test_subsequence_matches_python_slicing(self, values, start, length):
        result = engine.evaluate(
            "subsequence($s, $start, $len)",
            variables={"s": values, "start": start, "len": length},
        )
        begin = max(1, start) - 1
        end = max(begin, start + length - 1)
        assert result == values[begin:end]

    @given(ints)
    def test_reverse_is_involution(self, values):
        assert engine.evaluate(
            "reverse(reverse($s))", variables={"s": values}
        ) == values

    @given(ints, st.integers(min_value=-50, max_value=50))
    def test_index_of_finds_all_occurrences(self, values, needle):
        result = engine.evaluate(
            "index-of($s, $n)", variables={"s": values, "n": needle}
        )
        assert result == [i + 1 for i, v in enumerate(values) if v == needle]

    @given(st.lists(st.text(alphabet=string.ascii_lowercase, max_size=4), max_size=6),
           st.text(alphabet="-/, ", min_size=1, max_size=2))
    def test_string_join_tokenize_inverse(self, words, separator):
        """tokenize(string-join(w, sep), sep) == w when words lack sep.

        Excluded edge: a joined result of "" tokenizes to the empty
        sequence by spec, so an all-empty word list cannot round-trip.
        """
        if any(separator in word for word in words) or not words:
            return
        if separator.join(words) == "":
            return
        import re

        result = engine.evaluate(
            "tokenize(string-join($w, $sep), $pattern)",
            variables={"w": words, "sep": separator, "pattern": re.escape(separator)},
        )
        assert result == words

    @given(ints)
    def test_count_after_distinct_leq_count(self, values):
        distinct = engine.evaluate(
            "count(distinct-values($s))", variables={"s": values}
        )[0]
        assert distinct <= len(values)

    @given(ints, ints)
    def test_union_of_comma_is_concat_length(self, left, right):
        result = engine.evaluate(
            "count(($a, $b))", variables={"a": left, "b": right}
        )
        assert result == [len(left) + len(right)]


class TestFlworLaws:
    @given(ints)
    def test_for_identity(self, values):
        assert engine.evaluate(
            "for $x in $s return $x", variables={"s": values}
        ) == values

    @given(ints)
    def test_where_true_is_identity(self, values):
        assert engine.evaluate(
            "for $x in $s where true() return $x", variables={"s": values}
        ) == values

    @given(ints)
    def test_order_by_is_sorted_and_permutation(self, values):
        result = engine.evaluate(
            "for $x in $s order by $x return $x", variables={"s": values}
        )
        assert result == sorted(values)

    @given(ints, ints)
    def test_nested_for_is_product(self, left, right):
        result = engine.evaluate(
            "count(for $a in $l for $b in $r return 1)",
            variables={"l": left, "r": right},
        )
        assert result == [len(left) * len(right)]


@st.composite
def random_models(draw):
    """Small random AWB graphs over the IT metamodel."""
    model = Model(load_metamodel("it-architecture"))
    type_names = ["User", "Superuser", "Program", "Server", "Document"]
    count = draw(st.integers(min_value=2, max_value=7))
    nodes = []
    for index in range(count):
        type_name = draw(st.sampled_from(type_names))
        nodes.append(
            model.create_node(type_name, label=f"n{index:02d}")
        )
    relation_names = ["likes", "favors", "uses", "has", "runs"]
    edge_count = draw(st.integers(min_value=0, max_value=10))
    for _ in range(edge_count):
        source = draw(st.sampled_from(nodes))
        target = draw(st.sampled_from(nodes))
        model.connect(source, draw(st.sampled_from(relation_names)), target)
    return model


CALC_QUERIES = [
    '<query><start type="User"/><follow relation="likes"/>'
    '<collect sort-by="label"/></query>',
    '<query><start all="true"/><filter-type type="Person"/>'
    '<collect sort-by="label" order="descending"/></query>',
    '<query><start type="Person"/><follow relation="uses"/>'
    '<follow relation="runs" direction="backward"/><collect/></query>',
]


class TestBackendAgreementProperty:
    """The two calculus interpreters agree on arbitrary graphs —
    the invariant whose violation would have justified keeping two
    implementations."""

    @settings(max_examples=15, deadline=None)
    @given(random_models(), st.sampled_from(CALC_QUERIES))
    def test_backends_agree_on_random_graphs(self, model, query_source):
        query = parse_query_xml(query_source)
        native_ids = [node.id for node in run_query(query, model)]
        backend = XQueryCalculusBackend(model)
        xquery_ids = [node.id for node in backend.run(query)]
        assert native_ids == xquery_ids
