"""The query service: caching, invalidation, batching, metrics, CLI."""

import pytest

from repro.awb import export_model_text
from repro.querycalc import (
    QueryService,
    XQueryCalculusBackend,
    normalize_query,
    parse_query_xml,
    run_query,
)
from repro.querycalc.service import PlanCache, QueryPlan, ResultCache
from repro.querycalc.service.service import _percentile
from repro.workloads import make_it_model

LIKES_USES = """
    <query>
      <start type="User"/>
      <follow relation="likes"/>
      <follow relation="uses" target-type="Program"/>
      <collect sort-by="label"/>
    </query>
"""

ALL_USERS = '<query><start type="User"/><collect sort-by="label"/></query>'

QUERIES = [
    LIKES_USES,
    ALL_USERS,
    '<query><start all="true"/><filter-type type="Program"/><collect/></query>',
    '<query><start type="User"/>'
    '<filter-property name="birthYear" op="ge" value="1970"/>'
    '<collect order="descending"/></query>',
]


@pytest.fixture()
def model():
    return make_it_model(scale=6)


@pytest.fixture()
def service(model):
    return QueryService(model)


def ids(nodes):
    return [node.id for node in nodes]


class TestNormalization:
    def test_equal_queries_share_a_key(self):
        assert normalize_query(parse_query_xml(LIKES_USES)) == normalize_query(
            parse_query_xml(LIKES_USES)
        )

    def test_different_queries_differ(self):
        keys = {normalize_query(parse_query_xml(source)) for source in QUERIES}
        assert len(keys) == len(QUERIES)

    def test_key_is_readable(self):
        key = normalize_query(parse_query_xml(LIKES_USES))
        assert key.startswith("start(type='User')|follow('likes'")


class TestQueryServiceCorrectness:
    @pytest.mark.parametrize("source", QUERIES)
    def test_matches_native_interpreter(self, model, service, source):
        query = parse_query_xml(source)
        assert ids(service.run(query)) == ids(run_query(query, model))

    @pytest.mark.parametrize("source", QUERIES)
    def test_native_backend_service_matches_too(self, model, source):
        service = QueryService(model, backend="native")
        query = parse_query_xml(source)
        assert ids(service.run(query)) == ids(run_query(query, model))

    def test_warm_run_is_a_cache_hit_with_same_results(self, model, service):
        query = parse_query_xml(LIKES_USES)
        first = service.run(query)
        second = service.run(query)
        assert ids(first) == ids(second)
        metrics = service.metrics()
        assert metrics["queries"] == 2
        assert metrics["executed"] == 1
        assert metrics["hits"] == 1

    def test_mutation_invalidates_results(self, model, service):
        query = parse_query_xml(ALL_USERS)
        before = ids(service.run(query))
        added = model.create_node("User", label="AAA-first")
        after = ids(service.run(query))
        assert added.id in after and added.id not in before
        assert after == ids(run_query(parse_query_xml(ALL_USERS), model))

    def test_node_removal_invalidates_results(self, model, service):
        query = parse_query_xml(ALL_USERS)
        victim = model.nodes_of_type("User", include_subtypes=False)[0]
        assert victim.id in ids(service.run(query))
        model.remove_node(victim)
        assert victim.id not in ids(service.run(query))

    def test_property_mutation_invalidates_results(self, model, service):
        source = (
            '<query><start type="User"/>'
            '<filter-property name="firstName" op="eq" value="Zed"/>'
            "<collect/></query>"
        )
        query = parse_query_xml(source)
        assert ids(service.run(query)) == []
        model.nodes_of_type("User")[0].set("firstName", "Zed")
        assert len(ids(service.run(query))) == 1

    def test_results_are_live_model_nodes(self, model, service):
        nodes = service.run(parse_query_xml(ALL_USERS))
        assert all(model.nodes[node.id] is node for node in nodes)

    def test_invalidate_clears_and_recovers(self, model, service):
        query = parse_query_xml(LIKES_USES)
        expected = ids(service.run(query))
        service.invalidate()
        assert ids(service.run(query)) == expected
        assert service.cache_stats()["export"]["full_exports"] == 2

    def test_rejects_unknown_backend(self, model):
        with pytest.raises(ValueError):
            QueryService(model, backend="graphql")


class TestQueryServiceBatch:
    def test_batch_matches_sequential(self, model, service):
        queries = [parse_query_xml(source) for source in QUERIES] * 3
        batch = service.run_batch(queries, workers=4)
        assert [ids(result) for result in batch] == [
            ids(run_query(query, model)) for query in queries
        ]

    def test_batch_deduplicates_within_the_batch(self, model, service):
        queries = [parse_query_xml(LIKES_USES) for _ in range(8)]
        service.run_batch(queries, workers=4)
        metrics = service.metrics()
        assert metrics["queries"] == 8
        assert metrics["executed"] == 1
        assert metrics["batch_deduped"] == 7

    def test_batch_reuses_result_cache_across_calls(self, model, service):
        queries = [parse_query_xml(source) for source in QUERIES]
        service.run_batch(queries)
        service.run_batch(queries)
        metrics = service.metrics()
        assert metrics["executed"] == len(QUERIES)
        assert metrics["hits"] == len(QUERIES)

    def test_empty_batch(self, service):
        assert service.run_batch([]) == []

    def test_single_worker_batch(self, model, service):
        queries = [parse_query_xml(source) for source in QUERIES]
        batch = service.run_batch(queries, workers=1)
        assert [ids(result) for result in batch] == [
            ids(run_query(query, model)) for query in queries
        ]


class TestMetricsAndStats:
    def test_metrics_shape(self, service):
        service.run(parse_query_xml(ALL_USERS))
        metrics = service.metrics()
        for field in (
            "backend", "queries", "batches", "executed", "batch_deduped",
            "errors", "timeouts", "fallbacks", "errors_by_kind",
            "hits", "misses", "plan_hits", "plan_misses", "p50_ms", "p95_ms",
        ):
            assert field in metrics
        assert metrics["p50_ms"] >= 0.0
        assert metrics["p95_ms"] >= metrics["p50_ms"] or metrics["queries"] < 2

    def test_cache_stats_layers(self, service):
        service.run(parse_query_xml(ALL_USERS))
        stats = service.cache_stats()
        assert stats["plans"]["misses"] == 1
        assert stats["results"]["misses"] == 1
        assert stats["compile"]["currsize"] == 1
        assert stats["export"]["full_exports"] == 1

    def test_incremental_export_is_subtree_only_after_point_mutation(
        self, model, service
    ):
        query = parse_query_xml(ALL_USERS)
        service.run(query)
        model.nodes_of_type("User")[0].set("firstName", "Patched")
        service.run(query)
        stats = service.cache_stats()["export"]
        assert stats["full_exports"] == 1
        assert stats["subtree_exports"] == 1


class TestPlanAndResultCacheUnits:
    def test_plan_cache_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        for key in ("a", "b", "c"):
            cache.get_or_build(key, lambda k=key: QueryPlan(k, "native", None))
        stats = cache.stats()
        assert stats["currsize"] == 2
        assert stats["misses"] == 3
        # "a" was evicted; rebuilding it is a miss again
        cache.get_or_build("a", lambda: QueryPlan("a", "native", None))
        assert cache.stats()["misses"] == 4

    def test_result_cache_generation_keys_do_not_collide(self):
        cache = ResultCache(maxsize=8)
        cache.put(("q", 1), ["N1"])
        cache.put(("q", 2), ["N2"])
        assert cache.get(("q", 1)) == (["N1"], ())
        assert cache.get(("q", 2)) == (["N2"], ())

    def test_result_cache_returns_copies(self):
        cache = ResultCache(maxsize=8)
        cache.put(("q", 1), ["N1"])
        first_ids, _ = cache.get(("q", 1))
        first_ids.append("N2")
        assert cache.get(("q", 1)) == (["N1"], ())

    def test_result_cache_keeps_traces(self):
        cache = ResultCache(maxsize=8)
        cache.put(("q", 1), ["N1"], traces=["probe 1"])
        assert cache.get(("q", 1)) == (["N1"], ("probe 1",))

    def test_zero_sized_caches_disable_cleanly(self, model):
        service = QueryService(model, plan_cache_size=0, result_cache_size=0)
        query = parse_query_xml(ALL_USERS)
        expected = ids(run_query(query, model))
        assert ids(service.run(query)) == expected
        assert ids(service.run(query)) == expected
        assert service.metrics()["executed"] == 2  # nothing was cached


class TestPercentile:
    """The ceil-based nearest-rank formula (the round() one was off by one)."""

    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_median_of_odd_count_is_the_middle_value(self):
        # round(0.5 * 5) == 2 under banker's rounding — the old bug
        assert _percentile([5.0, 1.0, 4.0, 2.0, 3.0], 0.50) == 3.0

    def test_median_of_two(self):
        # nearest-rank p50 of two samples is the lower one (rank ceil(1.0)=1)
        assert _percentile([1.0, 2.0], 0.50) == 1.0

    def test_p95_of_one_hundred(self):
        samples = [float(value) for value in range(1, 101)]
        assert _percentile(samples, 0.95) == 95.0
        assert _percentile(samples, 0.50) == 50.0

    def test_extremes_clamp(self):
        samples = [1.0, 2.0, 3.0]
        assert _percentile(samples, 0.0) == 1.0
        assert _percentile(samples, 1.0) == 3.0

    def test_single_sample(self):
        assert _percentile([7.0], 0.95) == 7.0


class TestBackendParityUnderService:
    def test_service_and_raw_backend_agree(self, model):
        # the service must not change what the engine computes, only when.
        backend = XQueryCalculusBackend(model)
        service = QueryService(model)
        for source in QUERIES:
            query = parse_query_xml(source)
            assert ids(service.run(query)) == ids(backend.run(query))


class TestServiceCli:
    @pytest.fixture()
    def model_file(self, tmp_path):
        path = tmp_path / "model.xml"
        path.write_text(export_model_text(make_it_model(scale=3)), encoding="utf-8")
        return str(path)

    @pytest.fixture()
    def query_file(self, tmp_path):
        path = tmp_path / "query.xml"
        path.write_text(ALL_USERS, encoding="utf-8")
        return str(path)

    def test_service_backend_agrees_with_native(self, model_file, query_file, capsys):
        from repro.querycalc.__main__ import main as calc_main

        assert calc_main(["--model", model_file, "--query", query_file]) == 0
        native_out = capsys.readouterr().out
        assert (
            calc_main(
                ["--model", model_file, "--query", query_file, "--backend", "service"]
            )
            == 0
        )
        assert capsys.readouterr().out == native_out

    def test_repeat_prints_cold_then_warm(self, model_file, query_file, capsys):
        from repro.querycalc.__main__ import main as calc_main

        calc_main(
            [
                "--model", model_file,
                "--query", query_file,
                "--backend", "service",
                "--repeat", "3",
                "--time",
            ]
        )
        err = capsys.readouterr().err
        assert "run 1" in err and "(cold)" in err
        assert "run 3" in err and "(warm)" in err
        assert "service backend" in err
        assert "result-cache hit(s)" in err

    def test_repeat_works_for_other_backends(self, model_file, query_file, capsys):
        from repro.querycalc.__main__ import main as calc_main

        calc_main(
            [
                "--model", model_file,
                "--query", query_file,
                "--backend", "xquery",
                "--repeat", "2",
                "--time",
            ]
        )
        err = capsys.readouterr().err
        assert "best of 2" in err and "xquery backend" in err

    def test_repeat_rejects_zero(self, model_file, query_file):
        from repro.querycalc.__main__ import main as calc_main

        with pytest.raises(SystemExit):
            calc_main(
                [
                    "--model", model_file,
                    "--query", query_file,
                    "--repeat", "0",
                ]
            )

    def test_timeout_completes_with_ample_budget(self, model_file, query_file):
        from repro.querycalc.__main__ import main as calc_main

        assert calc_main(
            [
                "--model", model_file,
                "--query", query_file,
                "--backend", "service",
                "--timeout", "30",
            ]
        ) == 0

    def test_injected_faults_exit_nonzero_with_structured_error(
        self, model_file, query_file, capsys
    ):
        from repro.querycalc.__main__ import main as calc_main

        code = calc_main(
            [
                "--model", model_file,
                "--query", query_file,
                "--backend", "service",
                "--inject-faults", "eval=1.0,kind=dynamic",
                "--time",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "query failed — dynamic:" in err
        assert "1/1 run(s) failed" in err
        assert "error(s)" in err and "fallback(s)" in err

    def test_fault_flags_require_service_backend(self, model_file, query_file):
        from repro.querycalc.__main__ import main as calc_main

        with pytest.raises(SystemExit):
            calc_main(
                ["--model", model_file, "--query", query_file, "--timeout", "1"]
            )
        with pytest.raises(SystemExit):
            calc_main(
                [
                    "--model", model_file,
                    "--query", query_file,
                    "--inject-faults", "eval=0.5",
                ]
            )

    def test_bad_fault_spec_rejected(self, model_file, query_file):
        from repro.querycalc.__main__ import main as calc_main

        with pytest.raises(SystemExit):
            calc_main(
                [
                    "--model", model_file,
                    "--query", query_file,
                    "--backend", "service",
                    "--inject-faults", "explode=1.0",
                ]
            )
