"""Tests for the query calculus: parser, native interpreter, XQuery backend."""

import pytest

from repro.awb import Model, load_metamodel
from repro.querycalc import (
    Collect,
    FilterProperty,
    FilterType,
    Follow,
    QueryParseError,
    Start,
    XQueryCalculusBackend,
    parse_query_xml,
    run_query,
)


@pytest.fixture()
def model():
    m = Model(load_metamodel("it-architecture"))
    alice = m.create_node("User", label="Alice", birthYear=1960)
    bob = m.create_node("User", label="Bob", birthYear=1980)
    carol = m.create_node("Superuser", label="Carol", birthYear=1975)
    ledger = m.create_node("Program", label="LedgerD")
    audit = m.create_node("Program", label="AuditD")
    system = m.create_node("SystemBeingDesigned", label="Sys")
    m.connect(alice, "likes", bob)
    m.connect(alice, "favors", carol)
    m.connect(bob, "uses", ledger)
    m.connect(carol, "uses", audit)
    m.connect(carol, "uses", ledger)
    m.connect(carol, "uses", system)
    return m


class TestParser:
    def test_full_query(self):
        query = parse_query_xml(
            """
            <query>
              <start type="User"/>
              <follow relation="likes" direction="backward"/>
              <filter-type type="Superuser"/>
              <filter-property name="birthYear" op="lt" value="1970"/>
              <collect sort-by="label" order="descending" distinct="false"/>
            </query>
            """
        )
        assert query.start == Start(type="User")
        assert isinstance(query.steps[0], Follow)
        assert query.steps[0].direction == "backward"
        assert isinstance(query.steps[1], FilterType)
        assert isinstance(query.steps[2], FilterProperty)
        assert query.collect == Collect(
            sort_by="label", descending=True, distinct=False
        )

    def test_start_by_id(self):
        query = parse_query_xml('<query><start id="N7"/></query>')
        assert query.start.node_id == "N7"

    def test_start_all(self):
        query = parse_query_xml('<query><start all="true"/></query>')
        assert query.start.all_nodes

    def test_start_required(self):
        with pytest.raises(QueryParseError):
            parse_query_xml("<query><collect/></query>")

    def test_start_exactly_one_selector(self):
        with pytest.raises(QueryParseError):
            parse_query_xml('<query><start type="A" id="N1"/></query>')

    def test_unknown_element(self):
        with pytest.raises(QueryParseError):
            parse_query_xml('<query><start all="true"/><frobnicate/></query>')

    def test_bad_op(self):
        with pytest.raises(QueryParseError):
            parse_query_xml(
                '<query><start all="true"/>'
                '<filter-property name="x" op="~="/></query>'
            )


class TestNative:
    def test_paper_query(self, model):
        # start at Alice; follow likes; follow uses to programs; collect.
        query = parse_query_xml(
            """
            <query>
              <start id="N1"/>
              <follow relation="likes"/>
              <follow relation="uses" target-type="Program"/>
              <collect sort-by="label"/>
            </query>
            """
        )
        assert [n.label for n in run_query(query, model)] == ["AuditD", "LedgerD"]

    def test_subrelations_followed(self, model):
        # favors is a subtype of likes: Alice likes Bob AND favors Carol.
        query = parse_query_xml(
            '<query><start id="N1"/><follow relation="likes"/>'
            '<collect sort-by="label"/></query>'
        )
        assert [n.label for n in run_query(query, model)] == ["Bob", "Carol"]

    def test_subrelations_excluded_on_request(self, model):
        query = parse_query_xml(
            '<query><start id="N1"/>'
            '<follow relation="likes" subrelations="false"/>'
            "<collect/></query>"
        )
        assert [n.label for n in run_query(query, model)] == ["Bob"]

    def test_backward_follow(self, model):
        query = parse_query_xml(
            '<query><start type="Program"/>'
            '<follow relation="uses" direction="backward"/>'
            '<collect sort-by="label"/></query>'
        )
        assert [n.label for n in run_query(query, model)] == ["Bob", "Carol"]

    def test_distinct_dedupes(self, model):
        # Bob and Carol both use LedgerD: distinct keeps one.
        query = parse_query_xml(
            '<query><start type="User"/><follow relation="uses"/>'
            '<filter-type type="Program"/><collect sort-by="label"/></query>'
        )
        labels = [n.label for n in run_query(query, model)]
        assert labels == ["AuditD", "LedgerD"]

    def test_distinct_off_keeps_duplicates(self, model):
        query = parse_query_xml(
            '<query><start type="User"/><follow relation="uses"/>'
            '<filter-type type="Program"/>'
            '<collect sort-by="label" distinct="false"/></query>'
        )
        assert len(run_query(query, model)) == 3

    def test_property_filters(self, model):
        query = parse_query_xml(
            '<query><start type="Person"/>'
            '<filter-property name="birthYear" op="lt" value="1976"/>'
            '<collect sort-by="label"/></query>'
        )
        assert [n.label for n in run_query(query, model)] == ["Alice", "Carol"]

    def test_contains_filter(self, model):
        query = parse_query_xml(
            '<query><start type="Program"/>'
            '<filter-property name="label" op="contains" value="Ledger"/>'
            "<collect/></query>"
        )
        assert [n.label for n in run_query(query, model)] == ["LedgerD"]

    def test_missing_property_never_matches(self, model):
        query = parse_query_xml(
            '<query><start type="Program"/>'
            '<filter-property name="birthYear" op="lt" value="2000"/>'
            "<collect/></query>"
        )
        assert run_query(query, model) == []

    def test_descending_sort(self, model):
        query = parse_query_xml(
            '<query><start type="User"/>'
            '<collect sort-by="label" order="descending"/></query>'
        )
        labels = [n.label for n in run_query(query, model)]
        assert labels == sorted(labels, reverse=True)


class TestXQueryBackend:
    QUERIES = [
        '<query><start type="User"/><follow relation="likes"/>'
        '<follow relation="uses" target-type="Program"/>'
        '<collect sort-by="label"/></query>',
        '<query><start all="true"/><filter-type type="Person"/>'
        '<collect sort-by="label"/></query>',
        '<query><start type="Program"/>'
        '<follow relation="uses" direction="backward"/>'
        '<collect sort-by="label" order="descending"/></query>',
        '<query><start type="Person"/>'
        '<filter-property name="birthYear" op="ge" value="1975"/>'
        '<collect sort-by="label"/></query>',
        '<query><start type="User"/><follow relation="uses"/>'
        '<collect sort-by="label" distinct="false"/></query>',
    ]

    @pytest.mark.parametrize("source", QUERIES)
    def test_backends_agree(self, model, source):
        query = parse_query_xml(source)
        backend = XQueryCalculusBackend(model)
        native_ids = [n.id for n in run_query(query, model)]
        xquery_ids = [n.id for n in backend.run(query)]
        assert native_ids == xquery_ids

    def test_compiled_source_is_valid_xquery(self, model):
        from repro.xquery import parse_query as parse_xq

        backend = XQueryCalculusBackend(model)
        query = parse_query_xml(self.QUERIES[0])
        module = parse_xq(backend.compile_to_xquery(query))
        assert module.body is not None

    def test_export_cache_reused(self, model):
        backend = XQueryCalculusBackend(model)
        first = backend.export
        assert backend.export is first
        backend.invalidate_export()
        assert backend.export is not first
