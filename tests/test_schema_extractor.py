"""The AWB export schema: hand-written declaration vs. the real exporter.

The whole static-analysis tentpole leans on one claim: every document
``export_model`` can produce is admitted by ``awb_export_schema()``.  If
the exporter drifts (a new child element, a new attribute, a widened
property-type vocabulary) these tests fail before any lint rule or
optimizer rewrite can go wrong on real exports.

The property test drives the claim with the same random models the fuzz
campaign uses, plus hypothesis-chosen seeds/sizes, including the html
property quirk (open-content ``html-value`` children).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.awb.xml_io import export_model
from repro.testing.models import random_model
from repro.xquery.algebra.stats import StatisticsCatalog
from repro.xquery.analysis.schema import awb_export_schema

SCHEMA = awb_export_schema()


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    size=st.integers(min_value=0, max_value=40),
    html=st.booleans(),
)
def test_every_export_is_admitted(seed, size, html):
    model = random_model(seed, size=size, html_properties=html)
    document = export_model(model)
    violations = SCHEMA.violations(document)
    assert not violations, violations[:5]
    assert SCHEMA.admits(document)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    html=st.booleans(),
)
def test_catalog_attaches_schema_on_exports(seed, html):
    # the statistics walk verifies the schema against the observed
    # document and only then attaches it — the warrant for every
    # schema-licensed optimizer rewrite.
    model = random_model(seed, size=12, html_properties=html)
    catalog = StatisticsCatalog.from_root(export_model(model))
    assert catalog.schema is not None
    assert catalog.schema.name == SCHEMA.name


def test_catalog_withholds_schema_from_non_exports():
    from repro.xmlio import parse_document

    impostor = parse_document(
        "<awb-model name='x' metamodel='y'><intruder/></awb-model>"
    )
    catalog = StatisticsCatalog.from_root(impostor)
    assert catalog.schema is None


def test_catalog_withholds_schema_from_unrelated_documents():
    from repro.xmlio import parse_document

    catalog = StatisticsCatalog.from_root(parse_document("<report><row/></report>"))
    assert catalog.schema is None


def test_schema_shape_matches_exporter_vocabulary():
    # spot checks the hand-written declaration against facts the rest of
    # the suite relies on.
    assert SCHEMA.root == "awb-model"
    assert SCHEMA.child_allowed("awb-model", "node")
    assert SCHEMA.child_allowed("awb-model", "relation")
    assert not SCHEMA.child_allowed("relation", "node")
    assert SCHEMA.attribute_required("node", "id")
    assert SCHEMA.attribute_required("relation", "source")
    assert not SCHEMA.attribute_allowed("node", "source")
    domain = SCHEMA.attribute_domain("property", "type")
    assert domain is not None and "integer" in domain and "string" not in domain
    # html-value is open content: the exporter copies arbitrary markup.
    html_value = SCHEMA.element("html-value")
    assert html_value is not None and html_value.open_content
