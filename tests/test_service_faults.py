"""Chaos suite: fault injection against the serving layer.

The scenarios here are the acceptance criteria of the robustness layer:

* a poisoned minority of a batch must not take down the majority
  (per-query error isolation), and metrics must record *every* query —
  the pre-robustness ``run_batch`` lost both;
* a stalled query must be cut off within a small multiple of its
  wall-clock budget, surfacing as a structured ``timeout`` error;
* an internal failure of the primary engine backend (algebra by
  default, closures when so configured) must degrade to the treewalk
  reference backend instead of failing the request;
* injected compile faults must not be negatively cached.

All faults are injected through the same hooks the CLI's
``--inject-faults`` uses, with seeded RNGs, so every scenario is
deterministic.
"""

import time

import pytest

from repro.awb import load_metamodel
from repro.awb.model import Model
from repro.querycalc import (
    FaultConfig,
    FaultInjector,
    QueryService,
    parse_query_xml,
    run_query,
)
from repro.querycalc.service import ERROR_KINDS, QueryError, classify_error
from repro.querycalc.service.faults import InjectedFault
from repro.xquery.errors import (
    XQueryDynamicError,
    XQueryStaticError,
    XQueryTimeoutError,
)

N_QUERIES = 64


def make_model(count=N_QUERIES):
    """A model with *count* distinctly-labelled applications.

    Labels are fixed-width and ``x``-terminated (``app07x``) so no label
    is a substring of another — poisoning by plan-key fragment then hits
    exactly one query.
    """
    model = Model(load_metamodel("it-architecture"))
    apps = [
        model.create_node("Application", label=f"app{i:02d}x")
        for i in range(count)
    ]
    servers = [model.create_node("Server", label=f"srv{i}") for i in range(4)]
    for index, app in enumerate(apps):
        model.connect(app, "runs-on", servers[index % 4])
    return model


def label_query(index):
    return parse_query_xml(
        '<query><start type="Application"/>'
        f'<filter-property name="label" op="contains" value="app{index:02d}x"/>'
        "<collect/></query>"
    )


def ids(nodes):
    return [node.id for node in nodes]


@pytest.fixture()
def model():
    return make_model()


class TestBatchIsolation:
    """ISSUE satellite #1 and the tentpole's headline scenario."""

    POISONED = {
        3: "compile",
        11: "compile",
        20: "dynamic",
        33: "dynamic",
        41: "internal",
        47: "internal",
        55: "timeout",
        60: "timeout",
    }

    def test_poisoned_minority_does_not_take_down_the_batch(self, model):
        injector = FaultInjector()
        for index, kind in self.POISONED.items():
            injector.poison(f"app{index:02d}x", kind=kind)
        service = QueryService(model, fault_injector=injector)
        queries = [label_query(index) for index in range(N_QUERIES)]

        items = service.run_batch(queries, timeout=0.25)

        assert len(items) == N_QUERIES
        ok = [index for index, item in enumerate(items) if item.ok]
        failed = {index: items[index].error for index in range(N_QUERIES)
                  if not items[index].ok}
        assert len(ok) == N_QUERIES - len(self.POISONED)
        assert set(failed) == set(self.POISONED)
        # the survivors' answers are exactly what the native interpreter says
        for index in ok:
            assert ids(items[index]) == ids(run_query(queries[index], model))
        # each failure is structured, with the right kind and a plan key
        for index, error in failed.items():
            assert isinstance(error, QueryError)
            assert error.kind == self.POISONED[index]
            assert error.plan_key is not None
            assert f"app{index:02d}x" in error.plan_key
        # timeouts carry the spec code
        assert failed[55].code == "XQDY_TIMEOUT"
        # metrics recorded the whole batch, failures included
        metrics = service.metrics()
        assert metrics["queries"] == N_QUERIES
        assert metrics["errors"] == len(self.POISONED)
        assert metrics["timeouts"] == 2
        assert metrics["errors_by_kind"] == {
            "compile": 2, "dynamic": 2, "internal": 2, "timeout": 2,
        }

    def test_duplicate_queries_share_their_failure(self, model):
        injector = FaultInjector()
        injector.poison("app05x", kind="dynamic")
        service = QueryService(model, fault_injector=injector)
        queries = [label_query(5), label_query(1), label_query(5)]
        items = service.run_batch(queries)
        assert not items[0].ok and not items[2].ok
        assert items[1].ok
        assert items[0].error.kind == "dynamic"
        assert service.metrics()["errors"] == 2  # both duplicates counted

    def test_batch_deadline_fails_remaining_queries_fast(self, model):
        service = QueryService(model)
        queries = [label_query(index) for index in range(6)]
        started = time.monotonic()
        items = service.run_batch(queries, batch_timeout=1e-9)
        assert time.monotonic() - started < 1.0
        assert all(not item.ok for item in items)
        assert all(item.error.kind == "timeout" for item in items)


class TestStalls:
    def test_stalled_query_is_cut_off_within_twice_its_budget(self, model):
        budget = 0.15
        injector = FaultInjector()
        injector.poison("app02x", kind="timeout")
        service = QueryService(model, fault_injector=injector)
        started = time.monotonic()
        with pytest.raises(XQueryTimeoutError):
            service.run(label_query(2), timeout=budget)
        elapsed = time.monotonic() - started
        assert elapsed < 2 * budget
        error_metrics = service.metrics()
        assert error_metrics["timeouts"] == 1
        assert error_metrics["errors_by_kind"] == {"timeout": 1}

    def test_probabilistic_stall_respects_deadline(self, model):
        config = FaultConfig(eval_stall_rate=1.0, stall_seconds=30.0, seed=1)
        service = QueryService(model, fault_injector=FaultInjector(config))
        budget = 0.1
        started = time.monotonic()
        with pytest.raises(XQueryTimeoutError):
            service.run(label_query(0), timeout=budget)
        assert time.monotonic() - started < 2 * budget

    def test_short_stall_without_deadline_completes(self, model):
        config = FaultConfig(eval_stall_rate=1.0, stall_seconds=0.01, seed=1)
        service = QueryService(model, fault_injector=FaultInjector(config))
        item = service.run(label_query(0))
        assert item.ok


class TestDegradation:
    def test_algebra_fault_degrades_to_treewalk(self, model):
        # the algebra backend is the service's default primary
        config = FaultConfig(eval_failure_rate=1.0, eval_backends={"algebra"})
        service = QueryService(model, fault_injector=FaultInjector(config))
        query = label_query(4)
        item = service.run(query)
        assert item.ok is True
        assert ids(item) == ids(run_query(query, model))
        assert service.metrics()["fallbacks"] >= 1
        assert service.metrics()["errors"] == 0

    def test_closures_fault_degrades_to_treewalk(self, model):
        from repro.xquery import EngineConfig, XQueryEngine

        config = FaultConfig(eval_failure_rate=1.0, eval_backends={"closures"})
        service = QueryService(
            model,
            engine=XQueryEngine(EngineConfig(backend="closures")),
            fault_injector=FaultInjector(config),
        )
        query = label_query(4)
        item = service.run(query)
        assert item.ok is True
        assert ids(item) == ids(run_query(query, model))
        assert service.metrics()["fallbacks"] >= 1
        assert service.metrics()["errors"] == 0

    def test_fault_on_both_backends_surfaces_the_original_error(self, model):
        injector = FaultInjector()
        injector.poison("app04x", kind="internal")  # poisons fire on any backend
        service = QueryService(model, fault_injector=injector)
        with pytest.raises(InjectedFault):
            service.run(label_query(4))
        metrics = service.metrics()
        assert metrics["fallbacks"] == 1  # the retry happened
        assert metrics["errors_by_kind"] == {"internal": 1}

    def test_spec_errors_do_not_trigger_degradation(self, model):
        injector = FaultInjector()
        injector.poison("app04x", kind="dynamic")
        service = QueryService(model, fault_injector=injector)
        with pytest.raises(XQueryDynamicError):
            service.run(label_query(4))
        assert service.metrics()["fallbacks"] == 0


class TestCompileAndExportFaults:
    def test_compile_fault_is_isolated_and_not_negatively_cached(self, model):
        injector = FaultInjector()
        injector.poison("app06x", kind="compile")
        service = QueryService(model, fault_injector=injector)
        items = service.run_batch([label_query(6), label_query(7)])
        assert not items[0].ok and items[0].error.kind == "compile"
        assert items[1].ok
        # lift the poison: the failed plan was never cached, so it recovers
        injector.clear_poisons()
        items = service.run_batch([label_query(6), label_query(7)])
        assert items[0].ok and items[1].ok

    def test_compile_fault_raises_from_run_but_is_recorded(self, model):
        injector = FaultInjector()
        injector.poison("app06x", kind="compile")
        service = QueryService(model, fault_injector=injector)
        with pytest.raises(XQueryStaticError):
            service.run(label_query(6))
        metrics = service.metrics()
        assert metrics["queries"] == 1
        assert metrics["errors_by_kind"] == {"compile": 1}

    def test_export_fault_fails_the_batch_structurally(self, model):
        config = FaultConfig(export_failure_rate=1.0)
        service = QueryService(model, fault_injector=FaultInjector(config))
        items = service.run_batch([label_query(0), label_query(1)])
        assert all(not item.ok for item in items)
        assert all(item.error.kind == "internal" for item in items)
        # each item's error names its own plan, not a shared batch-level key
        assert len({item.error.plan_key for item in items}) == 2
        assert service.metrics()["errors"] == 2


class TestSeededChaos:
    def test_every_query_is_accounted_for(self, model):
        config = FaultConfig(
            compile_failure_rate=0.1,
            eval_failure_rate=0.25,
            eval_failure_kind="dynamic",
            seed=7,
        )
        service = QueryService(model, fault_injector=FaultInjector(config))
        queries = [label_query(index) for index in range(40)]
        items = service.run_batch(queries, timeout=0.5)
        assert len(items) == 40
        ok = sum(1 for item in items if item.ok)
        failed = sum(1 for item in items if not item.ok)
        assert ok + failed == 40
        metrics = service.metrics()
        assert metrics["queries"] == 40
        assert metrics["errors"] == failed
        for item in items:
            if not item.ok:
                assert item.error.kind in ERROR_KINDS

    def test_seed_makes_chaos_reproducible(self, model):
        def outcome_vector(seed):
            config = FaultConfig(eval_failure_rate=0.3, seed=seed)
            service = QueryService(model, fault_injector=FaultInjector(config))
            items = service.run_batch(
                [label_query(index) for index in range(20)], workers=1
            )
            return [item.ok for item in items]

        assert outcome_vector(21) == outcome_vector(21)


class TestTraceReplay:
    """Result-cache hits must replay fn:trace output, not eat it (E8)."""

    TRACED = (
        '<query trace="probe"><start type="Application"/>'
        '<filter-property name="label" op="contains" value="app01x"/>'
        "<collect/></query>"
    )

    def test_cold_run_emits_traces(self, model):
        service = QueryService(model)
        item = service.run(parse_query_xml(self.TRACED))
        assert item.served_from_cache is False
        assert len(item.traces) == 1
        assert item.traces[0].startswith("probe")

    def test_cached_serve_replays_the_same_traces(self, model):
        service = QueryService(model)
        cold = service.run(parse_query_xml(self.TRACED))
        warm = service.run(parse_query_xml(self.TRACED))
        assert warm.served_from_cache is True
        assert warm.traces == cold.traces
        assert ids(warm) == ids(cold)

    def test_mutation_forces_fresh_traces(self, model):
        service = QueryService(model)
        service.run(parse_query_xml(self.TRACED))
        model.create_node("Application", label="app99x")
        fresh = service.run(parse_query_xml(self.TRACED))
        assert fresh.served_from_cache is False
        assert len(fresh.traces) == 1

    def test_traced_and_untraced_queries_are_distinct_plans(self, model):
        service = QueryService(model)
        untraced = parse_query_xml(self.TRACED.replace(' trace="probe"', ""))
        traced = service.run(parse_query_xml(self.TRACED))
        plain = service.run(untraced)
        assert ids(traced) == ids(plain)
        assert plain.traces == ()
        assert plain.served_from_cache is False  # different plan, not a hit


class TestTaxonomy:
    def test_classify_timeout(self):
        error = classify_error(XQueryTimeoutError("too slow"), plan_key="k")
        assert error.kind == "timeout"
        assert error.code == "XQDY_TIMEOUT"
        assert error.plan_key == "k"

    def test_classify_static_and_lint(self):
        assert classify_error(XQueryStaticError("boom")).kind == "compile"
        assert (
            classify_error(XQueryStaticError("lint: XQL001 unused")).kind == "lint"
        )

    def test_classify_dynamic(self):
        error = classify_error(XQueryDynamicError("div by zero", code="FOAR0001"))
        assert error.kind == "dynamic"
        assert error.code == "FOAR0001"

    def test_classify_unknown_is_internal(self):
        error = classify_error(RuntimeError("wat"))
        assert error.kind == "internal"
        assert error.exception == "RuntimeError"

    def test_injected_kind_attribute_wins(self):
        error = classify_error(InjectedFault("evaluate", "k"))
        assert error.kind == "internal"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            QueryError(kind="catastrophic", message="no such kind")

    def test_str_is_readable(self):
        error = QueryError(kind="timeout", message="over budget", code="XQDY_TIMEOUT")
        assert str(error) == "timeout: [XQDY_TIMEOUT] over budget"


class TestFaultConfigParsing:
    def test_parse_full_spec(self):
        config = FaultConfig.parse(
            "compile=0.1,export=0.2,eval=0.3,stall=0.4,stall-ms=40,kind=dynamic,seed=9"
        )
        assert config.compile_failure_rate == 0.1
        assert config.export_failure_rate == 0.2
        assert config.eval_failure_rate == 0.3
        assert config.eval_stall_rate == 0.4
        assert config.stall_seconds == pytest.approx(0.04)
        assert config.eval_failure_kind == "dynamic"
        assert config.seed == 9

    def test_parse_empty_spec_is_all_defaults(self):
        assert FaultConfig.parse("") == FaultConfig()

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            FaultConfig.parse("explode=1.0")

    def test_parse_rejects_bare_key(self):
        with pytest.raises(ValueError):
            FaultConfig.parse("eval")

    def test_injector_counts_what_it_injected(self, model):
        injector = FaultInjector()
        injector.poison("app03x", kind="dynamic")
        service = QueryService(model, fault_injector=injector)
        service.run_batch([label_query(3), label_query(4)])
        assert injector.stats() == {"evaluate:dynamic": 1}
