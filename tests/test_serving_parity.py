"""Property suite: sharded execution ≡ single-process execution.

The scatter/gather correctness argument (pipeline steps distribute over
the start-set union; collect is a dedup+sort that merges) is pinned here
over random models and queries, under both partition schemes, including
the cases the router *must* scatter (all-nodes starts, type starts whose
subtype closure spans shards) and both sort directions with and without
distinct.  "Identical" means: same node ids in the same order, same trace
messages, and same failure kind when the query fails.
"""

import random

import pytest

from repro.querycalc.ast import Collect, FilterProperty, Query, Start
from repro.querycalc.service import QueryService
from repro.querycalc.service.errors import classify_error
from repro.serving.partition import Partitioner
from repro.testing.models import random_calculus_query, random_model

SCHEMES = ("type", "hash")


def outcome(service, query):
    """One service run, reduced to the comparison currency."""
    try:
        item = service.run(query)
    except Exception as error:
        failure = classify_error(error)
        return ("error", failure.exception, failure.kind)
    return ("ok", tuple(node.id for node in item), tuple(item.traces))


def assert_sharded_parity(model, queries, scheme, workers=3):
    reference = QueryService(model)
    sharded = QueryService(model, mode="process", workers=workers, partition=scheme)
    try:
        for query in queries:
            expect = outcome(reference, query)
            got = outcome(sharded, query)
            assert got == expect, (
                f"scheme={scheme} query diverged:\n"
                f"  thread : {expect!r}\n  sharded: {got!r}"
            )
        return sharded.metrics()["routes"]
    finally:
        sharded.close()


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("seed", [11, 47])
def test_random_queries_identical_across_schemes(scheme, seed):
    model = random_model(seed, size=30)
    rng = random.Random(seed * 13)
    queries = [random_calculus_query(rng, model) for _ in range(18)]
    assert_sharded_parity(model, queries, scheme)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_forced_cross_shard_order_by_matrix(scheme):
    """All-nodes starts force scatter; check every collect combination."""
    model = random_model(7, size=40)
    queries = [
        Query(
            Start(all_nodes=True),
            [],
            Collect(sort_by=sort_by, descending=descending, distinct=distinct),
        )
        for sort_by in (None, "label", "owner", "cost")
        for descending in (False, True)
        for distinct in (True, False)
    ]
    routes = assert_sharded_parity(model, queries, scheme)
    assert routes.get("scatter", 0) >= len(queries) / 2


def test_type_start_spanning_shards_scatters_and_matches():
    """A start type whose present subtype closure spans shards."""
    model = random_model(19, size=40)
    partitioner = Partitioner("type", 2)
    present = {node.type_name for node in model.nodes.values()}
    spanning = [
        name
        for name in present
        if len(
            partitioner.shards_of_types(
                set(model.metamodel.node_subtype_names(name)) & present
            )
        )
        > 1
    ]
    queries = [
        Query(Start(type=name), [], Collect(sort_by="label", descending=d))
        for name in spanning
        for d in (False, True)
    ]
    if not queries:
        pytest.skip("no spanning type in this model draw")
    routes = assert_sharded_parity(model, queries, "type", workers=2)
    assert routes.get("scatter", 0) >= 1


def test_duplicate_preserving_pipeline_counts_match():
    """distinct=False across a fan-in: duplicate multiplicity must survive."""
    model = random_model(29, size=35)
    queries = [
        Query(
            Start(all_nodes=True),
            [FilterProperty(name="status", op="ne", value="retired")],
            Collect(distinct=False, sort_by="label"),
        ),
        Query(Start(all_nodes=True), [], Collect(distinct=False)),
    ]
    for scheme in SCHEMES:
        assert_sharded_parity(model, queries, scheme)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_parity_survives_mutation_and_refresh(scheme):
    model = random_model(37, size=25)
    rng = random.Random(99)
    reference = QueryService(model)
    sharded = QueryService(model, mode="process", workers=2, partition=scheme)
    try:
        for round_index in range(3):
            queries = [random_calculus_query(rng, model) for _ in range(6)]
            for query in queries:
                assert outcome(sharded, query) == outcome(reference, query)
            # mutate: add a node, flip a property, then go again
            model.create_node("Server", label=f"round-{round_index}")
            victim = next(iter(model.nodes.values()))
            victim.set("label", f"mutated-{round_index}")
        assert sharded.metrics()["serving"]["refreshes"] >= 2
    finally:
        sharded.close()
