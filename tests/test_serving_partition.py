"""Units for the serving tier's partitioner, router, and gather merge."""

import zlib

import pytest

from repro.querycalc.ast import Collect, Query, Start
from repro.serving.partition import (
    PARTITION_SCHEMES,
    Partitioner,
    route_query,
)
from repro.serving.pool import merge_partials
from repro.testing.models import random_model


def bucket(value: str, shards: int) -> int:
    return zlib.crc32(value.encode("utf-8")) % shards


# -- partitioner ---------------------------------------------------------------


def test_partitioner_rejects_bad_inputs():
    with pytest.raises(ValueError):
        Partitioner("round-robin", 2)
    with pytest.raises(ValueError):
        Partitioner("type", 0)


@pytest.mark.parametrize("scheme", PARTITION_SCHEMES)
def test_every_node_owned_by_exactly_one_shard(scheme):
    model = random_model(3, size=30)
    partitioner = Partitioner(scheme, shards=3)
    for node in model.nodes.values():
        owners = [
            shard
            for shard in range(3)
            if partitioner.shard_of(node.id, node.type_name) == shard
        ]
        assert len(owners) == 1


def test_type_scheme_groups_by_class():
    partitioner = Partitioner("type", shards=4)
    assert partitioner.shard_of("N1", "Server") == partitioner.shard_of(
        "N999", "Server"
    )
    assert partitioner.shard_of_type("Server") == bucket("Server", 4)


def test_hash_scheme_is_process_independent():
    # CRC32, not salted str.hash: workers must agree with the front-end.
    partitioner = Partitioner("hash", shards=5)
    assert partitioner.shard_of_id("N17") == bucket("N17", 5)


@pytest.mark.parametrize("scheme", PARTITION_SCHEMES)
def test_owned_values_partition_the_inputs(scheme):
    model = random_model(9, size=25)
    partitioner = Partitioner(scheme, shards=3)
    ids = list(model.nodes)
    types = [node.type_name for node in model.nodes.values()]
    owned = [partitioner.owned_values(s, ids, types) for s in range(3)]
    flat = [value for shard in owned for value in shard]
    assert len(flat) == len(set(flat))  # disjoint
    if scheme == "hash":
        assert sorted(flat) == sorted(ids)  # complete
    else:
        assert sorted(flat) == sorted(set(types))


def test_shard_variable_names_follow_scheme():
    assert Partitioner("type", 2).shard_variable() == "awb-shard-types"
    assert Partitioner("hash", 2).shard_variable() == "awb-shard-ids"


# -- router --------------------------------------------------------------------


def _subtypes(name):
    # a tiny closure: Host has subtype Server; everything else is itself.
    return ["Host", "Server"] if name == "Host" else [name]


def make_query(**kwargs):
    start = Start(**kwargs)
    return Query(start, [], Collect())


def test_one_shard_tier_always_routes_single():
    route = route_query(
        make_query(all_nodes=True), Partitioner("type", 1), None, _subtypes
    )
    assert route.kind == "single" and route.shard == 0


def test_traced_query_routes_single():
    query = Query(Start(all_nodes=True), [], Collect(), trace="t")
    route = route_query(query, Partitioner("hash", 3), None, _subtypes)
    assert route.kind == "single"
    assert route.reason == "traced-query"


def test_start_id_routes_to_owner_under_hash():
    partitioner = Partitioner("hash", 4)
    route = route_query(make_query(node_id="N7"), partitioner, None, _subtypes)
    assert route.kind == "single"
    assert route.shard == bucket("N7", 4)


def test_start_id_under_type_scheme_uses_owner_callback():
    partitioner = Partitioner("type", 4)
    route = route_query(
        make_query(node_id="N7"),
        partitioner,
        None,
        _subtypes,
        owner_of_id=lambda node_id: 2,
    )
    assert route.kind == "single" and route.shard == 2
    # without the callback the router cannot prove ownership: scatter.
    route = route_query(make_query(node_id="N7"), partitioner, None, _subtypes)
    assert route.kind == "scatter"


def test_all_nodes_scatters():
    route = route_query(
        make_query(all_nodes=True), Partitioner("type", 2), None, _subtypes
    )
    assert route.kind == "scatter"


def test_start_type_single_shard_proof():
    partitioner = Partitioner("type", 3)
    shard = partitioner.shard_of_type("Widget")
    route = route_query(
        make_query(type="Widget"),
        partitioner,
        frozenset({"Widget", "Server"}),
        _subtypes,
    )
    assert route.kind == "single" and route.shard == shard
    assert route.reason == "start-type-single-shard"


def test_start_type_absent_from_domain_routes_single_empty():
    route = route_query(
        make_query(type="Ghost"),
        Partitioner("type", 3),
        frozenset({"Server"}),
        _subtypes,
    )
    assert route.kind == "single"
    assert route.reason == "start-type-absent"


def test_start_type_spanning_shards_scatters():
    # force the subtype closure onto 2+ shards by finding names that bucket
    # differently.
    partitioner = Partitioner("type", 2)
    a, b = "Host", "Server"
    assert bucket(a, 2) != bucket(b, 2) or True  # document the intent
    names = frozenset({a, b})
    route = route_query(
        make_query(type="Host"), partitioner, names, _subtypes
    )
    if partitioner.shards_of_types(["Host", "Server"]) == {bucket(a, 2)}:
        assert route.kind == "single"
    else:
        assert route.kind == "scatter"


def test_unknown_domain_is_conservative():
    # a None domain (statistics cap exceeded) must scatter, never guess.
    route = route_query(
        make_query(type="Host"), Partitioner("type", 2), None, _subtypes
    )
    assert route.kind in ("single", "scatter")
    if route.kind == "single":
        # only legitimate if the whole closure lands on one shard
        assert len(Partitioner("type", 2).shards_of_types(_subtypes("Host"))) == 1


def test_hash_scheme_type_start_scatters():
    route = route_query(
        make_query(type="Server"), Partitioner("hash", 2), None, _subtypes
    )
    assert route.kind == "scatter"
    assert route.reason == "start-type-hash-partitioned"


# -- gather merge --------------------------------------------------------------


def test_merge_orders_by_key_then_id():
    partials = [
        {"rows": [("a", "N2"), ("c", "N1")], "traces": ()},
        {"rows": [("a", "N1"), ("b", "N3")], "traces": ()},
    ]
    ids, traces = merge_partials(partials, descending=False, distinct=True)
    assert ids == ["N1", "N2", "N3", "N1"]
    assert traces == ()


def test_merge_descending_reverses_key_and_tiebreak():
    partials = [
        {"rows": [("a", "N1")], "traces": ()},
        {"rows": [("a", "N2"), ("b", "N3")], "traces": ()},
    ]
    ids, _ = merge_partials(partials, descending=True, distinct=True)
    assert ids == ["N3", "N2", "N1"]


def test_merge_distinct_collapses_cross_shard_duplicates():
    partials = [
        {"rows": [("x", "N1")], "traces": ()},
        {"rows": [("x", "N1"), ("x", "N2")], "traces": ()},
    ]
    ids, _ = merge_partials(partials, descending=False, distinct=True)
    assert ids == ["N1", "N2"]


def test_merge_without_distinct_keeps_duplicates():
    partials = [
        {"rows": [("x", "N1"), ("x", "N1")], "traces": ()},
        {"rows": [("x", "N1")], "traces": ()},
    ]
    ids, _ = merge_partials(partials, descending=False, distinct=False)
    assert ids == ["N1", "N1", "N1"]


def test_merge_is_arrival_order_independent():
    partials = [
        {"rows": [("b", "N2")], "traces": ()},
        {"rows": [("a", "N1")], "traces": ()},
    ]
    forward, _ = merge_partials(list(partials), False, True)
    backward, _ = merge_partials(list(reversed(partials)), False, True)
    assert forward == backward == ["N1", "N2"]
