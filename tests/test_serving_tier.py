"""End-to-end tests for the shared-nothing serving tier (mode="process")."""

import os

import pytest

from repro.querycalc.ast import Collect, FilterType, Query, Start
from repro.querycalc.service import (
    QueryOverloadError,
    QueryService,
)
from repro.querycalc.service.faults import FaultInjector
from repro.testing.models import random_calculus_query, random_model

import random
import threading


@pytest.fixture(scope="module")
def model():
    return random_model(101, size=36)


@pytest.fixture(scope="module")
def service(model):
    svc = QueryService(model, mode="process", workers=2)
    yield svc
    svc.close()


def ids(item):
    return [node.id for node in item]


def all_nodes_query(**collect):
    return Query(Start(all_nodes=True), [], Collect(**collect))


# -- construction ------------------------------------------------------------


def test_process_mode_requires_xquery_backend(model):
    with pytest.raises(ValueError):
        QueryService(model, backend="native", mode="process")


def test_unknown_mode_rejected(model):
    with pytest.raises(ValueError):
        QueryService(model, mode="fibers")


def test_workers_zero_resolves_to_cpu_count(model):
    svc = QueryService(model, workers=0)
    assert svc.workers == (os.cpu_count() or 1)


# -- execution parity with the thread service --------------------------------


def test_scatter_result_matches_thread_service(model, service):
    reference = QueryService(model)
    query = all_nodes_query(sort_by="label")
    assert ids(service.run(query)) == ids(reference.run(query))
    assert service.metrics()["routes"].get("scatter", 0) >= 1


def test_single_route_result_matches(model, service):
    node_id = next(iter(model.nodes))
    reference = QueryService(model)
    query = Query(Start(node_id=node_id), [], Collect())
    assert ids(service.run(query)) == ids(reference.run(query))


def test_traced_query_replays_trace_messages(model, service):
    reference = QueryService(model)
    query = Query(Start(all_nodes=True), [], Collect(), trace="tier-check")
    got = service.run(query)
    want = reference.run(query)
    assert ids(got) == ids(want)
    assert tuple(got.traces) == tuple(want.traces)
    # and the warm hit replays them from the result cache
    warm = service.run(query)
    assert warm.served_from_cache
    assert tuple(warm.traces) == tuple(want.traces)


def test_dangling_start_id_fails_like_thread_mode(model, service):
    from repro.querycalc.native import QueryRuntimeError

    query = Query(Start(node_id="NO-SUCH"), [], Collect())
    with pytest.raises(QueryRuntimeError):
        service.run(query)


# -- caches and the plan-blob store ------------------------------------------


def test_warm_repeat_is_a_result_cache_hit(model, service):
    query = all_nodes_query(sort_by="label", descending=True)
    cold = service.run(query)
    warm = service.run(query)
    assert not cold.served_from_cache
    assert warm.served_from_cache
    assert ids(cold) == ids(warm)


def test_blob_store_learns_signatures(model, service):
    service.run(all_nodes_query())
    stats = service.metrics()["serving"]["plan_blobs"]
    assert stats["blobs"] >= 1
    assert stats["signed"] >= 1


def test_refresh_on_generation_bump(model):
    svc = QueryService(model, mode="process", workers=2)
    try:
        query = all_nodes_query()
        before = ids(svc.run(query))
        node = svc.model.create_node("Server", label="zz-freshly-added")
        after = svc.run(query)
        assert node.id in ids(after)
        assert not after.served_from_cache
        assert len(ids(after)) == len(before) + 1
        assert svc.metrics()["serving"]["refreshes"] == 1
    finally:
        svc.close()


# -- batches -----------------------------------------------------------------


def test_run_batch_through_process_pool(model, service):
    rng = random.Random(5)
    queries = [random_calculus_query(rng, model) for _ in range(12)]
    reference = QueryService(model)
    items = service.run_batch(queries)
    expect = reference.run_batch(queries)
    assert [ids(i) if i.ok else i.error.kind for i in items] == [
        ids(i) if i.ok else i.error.kind for i in expect
    ]


# -- admission control --------------------------------------------------------


def test_saturated_tier_sheds_with_structured_overload(model):
    injector = FaultInjector(eval_stall_rate=1.0, stall_seconds=0.3)
    svc = QueryService(
        model,
        mode="process",
        workers=1,
        max_pending=1,
        fault_injector=injector,
        default_timeout=5.0,
    )
    try:
        rng = random.Random(0)
        queries = [random_calculus_query(rng, model) for _ in range(6)]
        outcomes = []

        def hit(q):
            try:
                svc.run(q)
                outcomes.append("ok")
            except QueryOverloadError as exc:
                assert exc.code == "XQDY_OVERLOAD"
                outcomes.append("shed")

        threads = [threading.Thread(target=hit, args=(q,)) for q in queries]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert "shed" in outcomes  # the bounded queue refused someone
        assert "ok" in outcomes  # but the tier kept serving
        metrics = svc.metrics()
        assert metrics["shed"] == outcomes.count("shed")
        assert metrics["errors_by_kind"].get("overload") == outcomes.count("shed")
    finally:
        svc.close()


def test_cache_hits_bypass_admission(model):
    svc = QueryService(model, mode="process", workers=1, max_pending=1)
    try:
        query = all_nodes_query()
        svc.run(query)
        # exhaust the admission slot, then serve from cache anyway
        assert svc._admission.acquire(blocking=False)
        try:
            warm = svc.run(query)
            assert warm.served_from_cache
        finally:
            svc._admission.release()
    finally:
        svc.close()


# -- worker lifecycle ---------------------------------------------------------


def test_worker_crash_respawns_and_recovers(model):
    svc = QueryService(model, mode="process", workers=2)
    try:
        query = all_nodes_query()
        before = ids(svc.run(query))
        # murder a worker out from under the pool
        victim = svc._pool.handles[0]
        victim.process.terminate()
        victim.process.join(timeout=5.0)
        # the next cold query that routes there fails once (structured),
        # respawns the worker, and the tier recovers
        fresh = Query(
            Start(all_nodes=True), [FilterType(type="Server")], Collect()
        )
        try:
            svc.run(fresh)
        except Exception:
            pass
        recovered = svc.run(fresh)
        assert ids(recovered) is not None
        assert ids(svc.run(query)) == before  # warm path unaffected
        assert svc.metrics()["serving"]["restarts"] >= 1
    finally:
        svc.close()


def test_metrics_expose_p99_and_mode(model, service):
    service.run(all_nodes_query())
    metrics = service.metrics()
    assert metrics["mode"] == "process"
    assert "p99_ms" in metrics
    assert metrics["p99_ms"] >= metrics["p50_ms"] >= 0.0
    serving = metrics["serving"]
    assert serving["shards"] == 2
    assert serving["scheme"] == "type"


def test_serving_stats_round_trip(model, service):
    service.run(all_nodes_query(sort_by="owner"))
    stats = service.serving_stats()
    assert stats["shards"] == 2
    assert len(stats["workers"]) == 2
    assert stats["runs"] >= 1
    for worker in stats["workers"]:
        assert "owned" in worker


def test_explain_includes_route(model, service):
    explanation = service.explain(all_nodes_query())
    assert explanation["route"]["kind"] == "scatter"
    node_id = next(iter(model.nodes))
    explanation = service.explain(Query(Start(node_id=node_id), [], Collect()))
    assert explanation["route"]["kind"] == "single"


def test_context_manager_closes_pool(model):
    with QueryService(model, mode="process", workers=1) as svc:
        svc.run(all_nodes_query())
        processes = [h.process for h in svc._pool.handles]
    for process in processes:
        process.join(timeout=5.0)
        assert not process.is_alive()
