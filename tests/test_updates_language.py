"""The FLUX-style update sublanguage: parse, check, apply, footprint.

Three layers under test: the parser's canonical round-trip (the serving
tier broadcasts rendered scripts, so render → parse must be lossless),
the static checker's UPD001–UPD009 rules (errors reject the script
*before* any statement executes), and the applier's semantics — every
mutation goes through the Model API, the recorded footprint is exact,
and statements that provably change nothing leave ``model.generation``
unmoved (the regression anchor for no-op property writes).
"""

import pytest

from repro.awb import Model, load_metamodel
from repro.awb.xml_io import export_model_text
from repro.workloads import make_it_model
from repro.xquery.updates import (
    UpdateCheckError,
    UpdateError,
    UpdateParseError,
    apply_script,
    check_script,
    parse_update_script,
    render_script,
)


@pytest.fixture()
def metamodel():
    return load_metamodel("it-architecture")


@pytest.fixture()
def model():
    return make_it_model(scale=4)


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestParser:
    ROUNDTRIP = [
        'insert node User with (label "ada", birthYear 1970)',
        "insert node Server id S9",
        'insert relation uses id R9 from N1 to N2 with (note "x")',
        "delete node N1",
        "delete relation R1",
        "delete property label of N1",
        'replace value of N1.label with "renamed"',
        "replace value of N1.rank with 5",
        "replace value of N1.weight with 2.5",
        "replace value of N1.active with true",
        "rename node N1 as Superuser",
        "rename relation R1 as favors",
    ]

    @pytest.mark.parametrize("text", ROUNDTRIP)
    def test_render_parse_roundtrip(self, text):
        script = parse_update_script(text)
        rendered = render_script(script)
        assert parse_update_script(rendered) == script
        # canonical text is a fixed point: render(parse(render)) == render
        assert render_script(parse_update_script(rendered)) == rendered

    def test_multi_statement_script_with_semicolons(self):
        script = parse_update_script(
            'insert node User; delete node N1;\nreplace value of N2.label with "x"'
        )
        assert len(script) == 3

    def test_quoted_names_carry_spaces(self):
        script = parse_update_script('insert node "Odd Type" id "id with spaces"')
        statement = script.statements[0]
        assert statement.type_name == "Odd Type"
        assert statement.node_id == "id with spaces"
        assert parse_update_script(render_script(script)) == script

    def test_string_escapes_roundtrip(self):
        script = parse_update_script(r'replace value of N1.label with "a \"b\" \\c"')
        assert script.statements[0].value == 'a "b" \\c'
        assert parse_update_script(render_script(script)) == script

    def test_integer_vs_float_literals_stay_distinct(self):
        as_int = parse_update_script("replace value of N1.x with 5").statements[0]
        as_float = parse_update_script("replace value of N1.x with 5.0").statements[0]
        assert type(as_int.value) is int
        assert type(as_float.value) is float

    def test_comments_are_skipped(self):
        script = parse_update_script("(: add one :) insert node User")
        assert len(script) == 1

    def test_parse_error_carries_position_and_code(self):
        with pytest.raises(UpdateParseError) as info:
            parse_update_script("insert node User\nfrobnicate N1")
        assert info.value.code == "UPST0001"
        assert info.value.line == 2

    def test_missing_keyword_is_an_error(self):
        with pytest.raises(UpdateParseError):
            parse_update_script("insert relation uses from N1")  # no 'to'


class TestChecker:
    def test_unknown_node_type_warns_upd001(self, metamodel):
        script = parse_update_script("insert node Zeppelin")
        diagnostics = check_script(script, metamodel)
        assert codes(diagnostics) == ["UPD001"]
        assert diagnostics[0].severity == "warning"

    def test_unknown_relation_type_warns_upd002(self, metamodel):
        script = parse_update_script("insert relation frobs from A to B")
        diagnostics = check_script(script, metamodel)
        assert "UPD002" in codes(diagnostics)

    def test_ill_typed_property_value_is_error_upd003(self, metamodel):
        script = parse_update_script('insert node Person with (birthYear "soon")')
        diagnostics = check_script(script, metamodel)
        assert codes(diagnostics) == ["UPD003"]
        assert diagnostics[0].severity == "error"

    def test_integer_literal_refused_for_float_decl(self, metamodel):
        # int-for-float would export "5" and re-import 5.0 on a replica —
        # the checker refuses to create that divergence.
        metamodel.node_type("Server").properties.append(
            __import__("repro.awb.metamodel", fromlist=["PropertyDecl"]).PropertyDecl(
                "loadFactor", "float"
            )
        )
        script = parse_update_script("insert node Server with (loadFactor 5)")
        assert "UPD003" in codes(check_script(script, metamodel))

    def test_boolean_literal_refused_for_integer_decl(self, metamodel):
        script = parse_update_script("insert node Person with (birthYear true)")
        assert "UPD003" in codes(check_script(script, metamodel))

    def test_undeclared_property_is_info_upd004(self, metamodel):
        script = parse_update_script('insert node Person with (shoeSize "44")')
        diagnostics = check_script(script, metamodel)
        assert codes(diagnostics) == ["UPD004"]
        assert diagnostics[0].severity == "info"

    def test_endpoint_advisory_warns_upd005(self, model):
        server = model.nodes_of_type("Server")[0]
        person = model.nodes_of_type("User")[0]
        script = parse_update_script(f"insert relation likes from {server.id} to {person.id}")
        diagnostics = check_script(script, model.metamodel, model)
        assert "UPD005" in codes(diagnostics)
        assert all(d.severity != "error" for d in diagnostics)

    def test_unknown_target_is_error_upd006_with_model_only(self, model):
        script = parse_update_script("delete node NOPE")
        assert codes(check_script(script, model.metamodel, model)) == ["UPD006"]
        # without a model, existence cannot be decided: no diagnostic.
        assert check_script(script, model.metamodel) == []

    def test_duplicate_id_is_error_upd007(self, model):
        existing = next(iter(model.nodes))
        script = parse_update_script(f"insert node User id {existing}")
        assert codes(check_script(script, model.metamodel, model)) == ["UPD007"]

    def test_script_local_duplicate_id_upd007(self, metamodel):
        script = parse_update_script("insert node User id X; insert node User id X")
        assert "UPD007" in codes(check_script(script, metamodel))

    def test_write_after_delete_is_error_upd008(self, model):
        victim = next(iter(model.nodes))
        script = parse_update_script(
            f'delete node {victim}; replace value of {victim}.label with "ghost"'
        )
        assert "UPD008" in codes(check_script(script, model.metamodel, model))

    def test_cascaded_relation_is_dead_for_later_statements(self, model):
        node = next(
            node for node in model.nodes.values() if model.outgoing(node)
        )
        relation = model.outgoing(node)[0]
        script = parse_update_script(
            f"delete node {node.id}; delete relation {relation.id}"
        )
        assert "UPD008" in codes(check_script(script, model.metamodel, model))

    def test_no_op_replace_is_info_upd009(self, model):
        node = model.nodes_of_type("User")[0]
        label = node.get("label")
        script = parse_update_script(f'replace value of {node.id}.label with "{label}"')
        diagnostics = check_script(script, model.metamodel, model)
        assert codes(diagnostics) == ["UPD009"]

    def test_reusing_a_deleted_id_is_allowed(self, model):
        victim = next(iter(model.nodes))
        script = parse_update_script(
            f"delete node {victim}; insert node User id {victim}"
        )
        assert not any(
            d.severity == "error"
            for d in check_script(script, model.metamodel, model)
        )


class TestApply:
    def test_insert_resolves_auto_id(self, model):
        result = apply_script('insert node User with (label "fresh")', model)
        resolved_id = result.script.statements[0].node_id
        assert resolved_id is not None
        assert model.nodes[resolved_id].get("label") == "fresh"
        assert result.footprint.inserted_nodes == {resolved_id: "User"}
        assert result.applied == 1
        # the resolved text replays the same id.
        assert f"id {resolved_id}" in result.text

    def test_check_error_rejects_before_any_statement_runs(self, model):
        generation = model.generation
        count = len(model.nodes)
        with pytest.raises(UpdateCheckError):
            apply_script(
                'insert node User with (label "a"); insert node Person with (birthYear "x")',
                model,
            )
        assert model.generation == generation
        assert len(model.nodes) == count

    def test_check_off_raises_update_error_on_missing_target(self, model):
        with pytest.raises(UpdateError):
            apply_script("delete node NOPE", model, check="off")

    def test_delete_node_footprint_records_cascaded_relations(self, model):
        node = next(node for node in model.nodes.values() if model.outgoing(node))
        names = {r.relation_name for r in model.outgoing(node) + model.incoming(node)}
        result = apply_script(f"delete node {node.id}", model)
        assert result.footprint.deleted_nodes == {node.id: node.type_name}
        assert names <= result.footprint.relation_names

    def test_insert_then_delete_cancels_membership(self, model):
        result = apply_script(
            "insert node User id TMP; delete node TMP", model
        )
        assert result.footprint.inserted_nodes == {}
        assert "TMP" not in result.footprint.deleted_nodes
        assert "TMP" not in model.nodes

    def test_fresh_node_property_writes_ride_on_the_insert(self, model):
        result = apply_script(
            'insert node User id F1 with (label "a");'
            ' replace value of F1.label with "b"',
            model,
        )
        assert result.footprint.node_prop_writes == set()
        assert model.nodes["F1"].get("label") == "b"

    def test_rename_node_retypes_in_place(self, model):
        node = model.nodes_of_type("User")[0]
        relations_before = len(model.outgoing(node)) + len(model.incoming(node))
        result = apply_script(f"rename node {node.id} as Superuser", model)
        assert node.type_name == "Superuser"
        assert len(model.outgoing(node)) + len(model.incoming(node)) == relations_before
        assert result.footprint.linked_types == {"User", "Superuser"}

    def test_rename_of_fresh_node_folds_into_insert(self, model):
        result = apply_script(
            "insert node User id F2; rename node F2 as Server", model
        )
        assert result.footprint.inserted_nodes == {"F2": "Server"}
        assert result.footprint.linked_types == set()

    def test_rename_relation_records_both_names(self, model):
        relation = next(
            r for r in model.relations.values() if r.relation_name == "likes"
        )
        result = apply_script(f"rename relation {relation.id} as favors", model)
        assert relation.relation_name == "favors"
        assert {"likes", "favors"} <= result.footprint.relation_names

    def test_resolved_script_replays_byte_identically(self, model):
        """The delta-broadcast guarantee: replaying the resolved text on a
        faithful replica reproduces the primary's export byte for byte."""
        from repro.awb.xml_io import import_model_text

        replica = import_model_text(
            export_model_text(model), model.metamodel, apply_defaults=False
        )
        result = apply_script(
            'insert node User with (label "zz", rank 7);'
            " insert relation likes from N1 to N2;"
            ' replace value of N3.label with "patched";'
            " delete node N4",
            model,
        )
        apply_script(result.text, replica, check="off")
        assert export_model_text(replica) == export_model_text(model)


class TestNoOpNeutrality:
    """Satellite regression: writes that change nothing must not move the
    generation (each one used to orphan every warm cache entry)."""

    def test_replace_with_current_value_is_generation_neutral(self, model):
        node = model.nodes_of_type("User")[0]
        label = node.get("label")
        generation = model.generation
        result = apply_script(
            f'replace value of {node.id}.label with "{label}"', model
        )
        assert model.generation == generation
        assert result.applied == 0
        assert result.footprint.is_empty()

    def test_delete_absent_property_is_generation_neutral(self, model):
        node = model.nodes_of_type("User")[0]
        generation = model.generation
        result = apply_script(f"delete property nonexistent of {node.id}", model)
        assert model.generation == generation
        assert result.applied == 0

    def test_rename_to_current_type_is_generation_neutral(self, model):
        node = model.nodes_of_type("User")[0]
        generation = model.generation
        apply_script(f"rename node {node.id} as User", model)
        assert model.generation == generation

    def test_raw_set_of_same_value_is_generation_neutral(self, model):
        node = model.nodes_of_type("User")[0]
        node.set("rank", 5)
        generation = model.generation
        node.set("rank", 5)
        node.properties["rank"] = 5
        node.properties.update(rank=5)
        assert model.generation == generation

    def test_same_value_different_type_still_counts_as_a_write(self, model):
        # True == 1 == 1.0 in Python but they export differently; the
        # no-op suppression must compare types, not just values.
        node = model.nodes_of_type("User")[0]
        node.set("flag", 1)
        generation = model.generation
        node.set("flag", True)
        assert model.generation > generation
        generation = model.generation
        node.set("flag", 1.0)
        assert model.generation > generation

    def test_pop_and_clear_only_touch_when_they_change_something(self, model):
        node = model.nodes_of_type("User")[0]
        generation = model.generation
        node.properties.pop("nonexistent", None)
        assert model.generation == generation
        node.properties.clear()
        assert model.generation > generation
        generation = model.generation
        node.properties.clear()  # already empty: no event
        assert model.generation == generation


class TestRetypeAPI:
    def test_retype_node_same_type_is_no_op(self, model):
        node = model.nodes_of_type("User")[0]
        generation = model.generation
        model.retype_node(node, "User")
        assert model.generation == generation

    def test_retype_node_unknown_type_warns(self, model):
        node = model.nodes_of_type("User")[0]
        before = len(model.warnings)
        model.retype_node(node, "Blimp")
        assert node.type_name == "Blimp"
        assert len(model.warnings) == before + 1
        assert model.warnings[-1].kind == "unknown-node-type"

    def test_retype_foreign_node_is_rejected(self, model):
        foreign = Model(load_metamodel("it-architecture"))
        node = foreign.create_node("User")
        with pytest.raises(ValueError):
            model.retype_node(node, "Server")

    def test_retype_keeps_export_identical_to_full(self, model):
        from repro.awb import IncrementalExporter, export_model
        from repro.xmlio import serialize

        exporter = IncrementalExporter(model)
        exporter.export()
        node = model.nodes_of_type("User")[0]
        model.retype_node(node, "Superuser")
        assert serialize(exporter.export(), indent=True) == serialize(
            export_model(model), indent=True
        )
