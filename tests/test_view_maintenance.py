"""Incremental view maintenance: footprints × dependency sets × the cache.

The write-path cache cliff this PR removes: every mutation used to orphan
every warm result-cache entry wholesale.  Now an update script's exact
footprint is intersected with each cached entry's dependency set —
provably disjoint entries are re-keyed to the new generation, membership
changes to patchable scans are spliced in place, and only genuinely
affected entries are invalidated.  The invariant under test everywhere:
a maintained entry must be byte-identical to what cold re-execution
would produce; when in doubt the service must invalidate, never guess.
"""

import pytest

from repro.querycalc.ast import (
    Collect,
    FilterProperty,
    FilterType,
    Follow,
    Query,
    Start,
)
from repro.querycalc.native import run_query
from repro.querycalc.service import QueryService
from repro.querycalc.service.deps import derive_dependencies
from repro.workloads import make_it_model
from repro.xquery.updates import apply_script
from repro.xquery.updates.footprint import Footprint


def scan(type_name="User", sort_by=None, descending=False):
    return Query(
        start=Start(type=type_name),
        steps=[],
        collect=Collect(sort_by=sort_by, descending=descending),
    )


def follow(relation="likes", start_type="Person"):
    return Query(
        start=Start(type=start_type),
        steps=[Follow(relation=relation, include_subrelations=True)],
        collect=Collect(),
    )


def native_ids(query, model):
    return [node.id for node in run_query(query, model)]


@pytest.fixture()
def model():
    return make_it_model(scale=6)


@pytest.fixture(params=["xquery", "native"])
def service(request, model):
    with QueryService(model, backend=request.param) as svc:
        yield svc


class TestDependencySets:
    def test_scan_members_are_subtype_expanded(self, model):
        deps = derive_dependencies(scan("User"), model.metamodel)
        assert deps.member_types == frozenset({"User", "Superuser"})
        assert deps.patchable
        assert deps.sort_property == "label"

    def test_follow_query_tracks_no_direct_membership(self, model):
        deps = derive_dependencies(follow(), model.metamodel)
        # a fresh node has no relations; membership can only reach a
        # follow query through the relation rule.
        assert deps.member_types == frozenset()
        assert {"likes", "favors"} <= deps.relation_names
        assert not deps.patchable

    def test_property_filter_blocks_patching(self, model):
        query = Query(
            start=Start(type="User"),
            steps=[FilterProperty(name="rank", op="ge", value="1")],
            collect=Collect(),
        )
        deps = derive_dependencies(query, model.metamodel)
        assert "rank" in deps.properties
        assert not deps.patchable

    def test_traced_query_is_not_patchable(self, model):
        query = Query(
            start=Start(type="User"), steps=[], collect=Collect(), trace="t1"
        )
        assert not derive_dependencies(query, model.metamodel).patchable

    def test_unrelated_footprint_has_no_reasons(self, model):
        deps = derive_dependencies(scan("User"), model.metamodel)
        footprint = Footprint()
        footprint.inserted_nodes["X"] = "Server"
        footprint.node_prop_writes.add(("Server", "cpuCount"))
        assert deps.affected_by(footprint) == set()

    def test_membership_and_property_reasons(self, model):
        deps = derive_dependencies(scan("User"), model.metamodel)
        footprint = Footprint()
        footprint.inserted_nodes["X"] = "Superuser"
        assert deps.affected_by(footprint) == {"membership"}
        footprint = Footprint()
        footprint.node_prop_writes.add(("User", "label"))
        assert deps.affected_by(footprint) == {"property"}

    def test_rename_reason_uses_path_types(self, model):
        deps = derive_dependencies(scan("Server"), model.metamodel)
        footprint = Footprint()
        footprint.linked_types.update(("User", "Superuser"))
        assert deps.affected_by(footprint) == set()
        footprint.linked_types.add("Server")
        assert "rename" in deps.affected_by(footprint)


class TestPropagation:
    def warm(self, service, queries):
        for query in queries:
            service.run(query)

    def assert_parity(self, service, queries):
        for query in queries:
            item = service.run(query)
            assert [node.id for node in item] == native_ids(query, service.model)

    def test_disjoint_write_keeps_entries_warm(self, service):
        queries = [scan("User"), scan("Server")]
        self.warm(service, queries)
        summary = service.apply_update('insert node Document with (label "d")')
        assert summary["propagation"]["kept"] == 2
        for query in queries:
            assert service.run(query).served_from_cache
        self.assert_parity(service, queries)

    def test_insert_patches_sorted_scan(self, service):
        query = scan("User")
        self.warm(service, [query])
        summary = service.apply_update('insert node User with (label "AAA-first")')
        assert summary["propagation"]["patched"] == 1
        item = service.run(query)
        assert item.served_from_cache
        ids = [node.id for node in item]
        assert ids == native_ids(query, service.model)
        # the fresh row landed at its sorted position, not appended.
        assert service.model.nodes[ids[0]].get("label") == "AAA-first"

    def test_insert_patches_descending_scan(self, service):
        query = scan("User", descending=True)
        self.warm(service, [query])
        service.apply_update('insert node User with (label "zzz-last")')
        item = service.run(query)
        assert item.served_from_cache
        ids = [node.id for node in item]
        assert ids == native_ids(query, service.model)
        assert service.model.nodes[ids[0]].get("label") == "zzz-last"

    def test_delete_patches_scan_and_invalidates_follows(self, service):
        queries = [scan("User"), follow()]
        self.warm(service, queries)
        victim = service.model.nodes_of_type("User")[0]
        summary = service.apply_update(f"delete node {victim.id}")
        propagation = summary["propagation"]
        assert propagation["patched"] == 1  # the scan
        assert propagation["invalidated"] == 1  # the follow (cascades)
        self.assert_parity(service, queries)

    def test_property_write_invalidates_only_readers(self, service):
        reader = scan("User")  # sorts by label
        bystander = scan("Server")
        self.warm(service, [reader, bystander])
        user = service.model.nodes_of_type("User")[0]
        summary = service.apply_update(
            f'replace value of {user.id}.label with "renamed"'
        )
        assert summary["propagation"]["invalidated"] == 1
        assert summary["propagation"]["kept"] == 1
        assert service.run(bystander).served_from_cache
        assert not service.run(reader).served_from_cache
        self.assert_parity(service, [reader, bystander])

    def test_rename_invalidates_scans_of_both_types(self, service):
        queries = [scan("User"), scan("Server"), scan("Document")]
        self.warm(service, queries)
        user = service.model.nodes_of_type("User")[0]
        summary = service.apply_update(f"rename node {user.id} as Server")
        assert summary["propagation"]["invalidated"] == 2
        assert summary["propagation"]["kept"] == 1
        self.assert_parity(service, queries)

    def test_traced_query_is_invalidated_not_patched(self, service):
        query = Query(
            start=Start(type="User"), steps=[], collect=Collect(), trace="probe"
        )
        cold = service.run(query)
        service.apply_update('insert node User with (label "aaa")')
        warm = service.run(query)
        assert not warm.served_from_cache
        assert [n.id for n in warm] == native_ids(query, service.model)
        # the re-evaluation saw the post-update reality, not the cached one.
        assert len(list(warm)) == len(list(cold)) + 1

    def test_no_op_script_leaves_cache_untouched(self, service):
        query = scan("User")
        self.warm(service, [query])
        user = service.model.nodes_of_type("User")[0]
        label = user.get("label")
        summary = service.apply_update(
            f'replace value of {user.id}.label with "{label}"'
        )
        assert summary["applied"] == 0
        assert summary["propagation"] == {
            "kept": 0, "patched": 0, "invalidated": 0, "skipped": 0,
        }
        assert service.run(query).served_from_cache

    def test_foreign_mutation_skips_propagation(self, service):
        """Raw model writes that bypass apply_update orphan the warm
        entries exactly like before — carrying them over would be unsound
        because no footprint was recorded for the foreign write."""
        query = scan("User")
        self.warm(service, [query])
        service.model.nodes_of_type("User")[0].set("rank", 99)  # foreign
        summary = service.apply_update('insert node Document with (label "d")')
        if service.backend == "xquery":
            # the export lags the model: detected, every entry skipped.
            assert summary["propagation"]["skipped"] >= 1
        else:
            # native entries are keyed by live generation: the foreign
            # write already orphaned them, so there is nothing to carry.
            assert summary["propagation"]["patched"] == 0
        assert summary["propagation"]["kept"] == 0
        assert not service.run(query).served_from_cache
        self.assert_parity(service, [query])

    def test_update_metrics_accumulate(self, service):
        self.warm(service, [scan("User")])
        service.apply_update('insert node User with (label "m1")')
        service.apply_update('insert node Server with (label "m2")')
        metrics = service.metrics()
        assert metrics["updates"] == 2
        propagations = metrics["propagations"]
        assert propagations["patched"] >= 1
        assert propagations["kept"] >= 1

    def test_check_error_leaves_service_untouched(self, service):
        from repro.xquery.updates import UpdateCheckError

        query = scan("User")
        self.warm(service, [query])
        with pytest.raises(UpdateCheckError):
            service.apply_update('insert node Person with (birthYear "soon")')
        assert service.run(query).served_from_cache

    def test_long_mixed_sequence_stays_faithful(self, service):
        queries = [
            scan("User"),
            scan("Person", sort_by="birthYear", descending=True),
            follow(),
            scan("Program"),
        ]
        model = service.model
        scripts = [
            'insert node User id VU1 with (label "aa", birthYear 1984)',
            "insert relation likes from VU1 to N2",
            'replace value of VU1.label with "ab"',
            "rename node VU1 as Superuser",
            "delete node VU1",
            'insert node Program with (label "fresh-prog")',
        ]
        for script in scripts:
            self.warm(service, queries)
            service.apply_update(script)
            for query in queries:
                item = service.run(query)
                assert [n.id for n in item] == native_ids(query, model), script


class TestStoreRaceRegression:
    """Satellite regression: a mid-batch mutation must not let a stale
    evaluation land in the result cache under the old generation key —
    propagate() would then carry or patch a torn result forward."""

    def test_store_refuses_results_from_an_older_generation(self, model):
        with QueryService(model, backend="native") as service:
            query = scan("User")
            service.run(query)
            plan = service._plan(query)
            generation = model.generation
            model.create_node("User", label="concurrent")  # the race
            before = service._results.stats()["currsize"]
            service._store(plan, generation, ["N1"], ())
            assert service._results.stats()["currsize"] == before
            cached = service._results.get((plan.cache_key, generation))
            # the cold run's honest entry survives; the torn one was refused.
            assert cached is not None and cached[0] != ["N1"]

    def test_store_accepts_results_from_the_live_generation(self, model):
        with QueryService(model, backend="native") as service:
            query = scan("User")
            service.run(query)
            assert service.run(query).served_from_cache


class TestStatisticsMaintenance:
    """Satellite regression: the statistics catalog follows the export
    delta instead of being recollected from a full walk — and the routing
    proof (``attribute_domain("node", "type")``) must always reflect the
    post-mutation document."""

    def test_delta_log_cursor_semantics(self, model):
        from repro.awb import IncrementalExporter

        exporter = IncrementalExporter(model)
        exporter.export()
        cursor = exporter.delta_cursor()
        assert exporter.delta_since(cursor) == []
        model.create_node("User", label="fresh")
        exporter.export()
        delta = exporter.delta_since(cursor)
        assert delta is not None and len(delta) == 1
        old, new = delta[0]
        assert old is None and new.get_attribute("type") == "User"
        # a full rebuild starts a new epoch: old cursors answer None.
        exporter.invalidate()
        exporter.export()
        assert exporter.delta_since(cursor) is None
        assert exporter.delta_since(exporter.delta_cursor()) == []

    def test_catalog_delta_parity_with_full_recollection(self, model):
        from repro.querycalc.via_xquery import XQueryCalculusBackend
        from repro.xquery.algebra.stats import StatisticsCatalog

        backend = XQueryCalculusBackend(model)
        backend.statistics  # baseline collection
        apply_script(
            'insert node User id SU1 with (label "s", birthYear 1970);'
            " insert relation likes from SU1 to N2;"
            ' replace value of N3.label with "patched";'
            " rename node SU1 as Superuser;"
            f" delete node {model.nodes_of_type('Program')[0].id}",
            model,
        )
        maintained = backend.statistics
        fresh = StatisticsCatalog.from_root(
            backend.export.document_element(), backend.export_generation
        )
        assert backend.stats_rebuilds == 1
        assert backend.stats_deltas == 1
        assert maintained.total_elements == fresh.total_elements
        assert maintained.element_counts == fresh.element_counts
        assert maintained.child_fanout == fresh.child_fanout
        assert maintained.attr_distinct == fresh.attr_distinct
        assert maintained.attr_present == fresh.attr_present
        assert maintained.attr_domains == fresh.attr_domains
        assert (maintained.schema is None) == (fresh.schema is None)

    def test_routing_proof_sees_post_mutation_domain(self, model):
        """The staleness pin: a type that first appears via an update must
        be in the maintained ``attribute_domain("node", "type")`` without
        any full recollection."""
        with QueryService(model) as service:
            service.run(scan("User"))  # forces export + baseline stats
            backend = service._backend
            assert backend.stats_rebuilds == 1
            assert "Location" not in (
                backend.statistics.attribute_domain("node", "type") or set()
            )
            service.apply_update('insert node Location with (label "lab")')
            domain = backend.statistics.attribute_domain("node", "type")
            assert domain is not None and "Location" in domain
            assert backend.stats_rebuilds == 1  # maintained, not recollected
            assert backend.stats_deltas >= 1

    def test_domain_shrinks_when_last_of_a_type_dies(self, model):
        from repro.querycalc.via_xquery import XQueryCalculusBackend

        backend = XQueryCalculusBackend(model)
        backend.statistics
        apply_script('insert node Location id L1 with (label "x")', model)
        assert "Location" in backend.statistics.attribute_domain("node", "type")
        apply_script("delete node L1", model)
        assert "Location" not in backend.statistics.attribute_domain("node", "type")
        assert backend.stats_rebuilds == 1


class TestProcessModeDeltas:
    def test_update_broadcasts_delta_to_worker_replicas(self, model):
        query = scan("User")
        with QueryService(model, mode="process", workers=2) as service:
            cold = [n.id for n in service.run(query)]
            assert cold == native_ids(query, model)
            summary = service.apply_update(
                'insert node User with (label "aaa-shard", birthYear 1999)'
            )
            assert summary["applied"] == 1
            after = [n.id for n in service.run(query)]
            assert after == native_ids(query, model)
            metrics = service.metrics()
            assert metrics["serving"]["deltas"] == 1
            assert metrics["serving"]["refreshes"] <= 1
            # every worker replayed the script in place (no full refresh).
            for worker in service.serving_stats()["workers"]:
                assert worker["deltas"] == 1

    def test_foreign_mutation_falls_back_to_full_refresh(self, model):
        query = scan("User")
        with QueryService(model, mode="process", workers=2) as service:
            service.run(query)
            model.create_node("User", label="foreign")  # bypasses apply_update
            summary = service.apply_update('insert node Server with (label "s")')
            assert summary["propagation"]["skipped"] >= 0
            after = [n.id for n in service.run(query)]
            assert after == native_ids(query, model)


class TestUpdateOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_update_scripts_keep_maintained_cache_faithful(self, seed):
        from repro.testing.models import random_model
        from repro.testing.oracle import UpdateOracle

        model = random_model(seed, size=16)
        with UpdateOracle(model, seed=seed * 13 + 1) as oracle:
            for _ in range(6):
                divergence = oracle.step()
                assert divergence is None, divergence.describe()
        metrics = oracle.service.metrics()
        assert metrics["updates"] == 6
        assert metrics["propagations"]["skipped"] == 0
