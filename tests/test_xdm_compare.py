"""Unit tests for repro.xdm.compare: comparison semantics."""

from decimal import Decimal

import pytest

from repro.xdm import (
    AttributeNode,
    ElementNode,
    TextNode,
    UntypedAtomic,
    deep_equal,
    general_compare,
    value_compare,
)
from repro.xdm.compare import ComparisonTypeError, nodes_before


class TestValueCompare:
    def test_numeric_eq(self):
        assert value_compare("eq", 1, 1.0)

    def test_decimal_and_double(self):
        assert value_compare("lt", Decimal("1.5"), 2.0)

    def test_strings(self):
        assert value_compare("gt", "b", "a")

    def test_untyped_vs_number_promotes(self):
        assert value_compare("eq", UntypedAtomic("3"), 3)

    def test_untyped_vs_string(self):
        assert value_compare("eq", UntypedAtomic("x"), "x")

    def test_untyped_vs_boolean(self):
        assert value_compare("eq", UntypedAtomic("true"), True)

    def test_string_vs_number_is_type_error(self):
        with pytest.raises(ComparisonTypeError):
            value_compare("eq", "1", 1)

    def test_bad_untyped_promotion_is_type_error(self):
        with pytest.raises(ComparisonTypeError):
            value_compare("eq", UntypedAtomic("pear"), 1)

    def test_all_six_operators(self):
        assert value_compare("ne", 1, 2)
        assert value_compare("le", 1, 1)
        assert value_compare("ge", 2, 2)
        assert not value_compare("lt", 2, 1)


class TestGeneralCompare:
    """The paper's quirk 4, verbatim."""

    def test_one_equals_sequence(self):
        assert general_compare("=", [1], [1, 2, 3])

    def test_sequence_equals_three(self):
        assert general_compare("=", [1, 2, 3], [3])

    def test_one_not_three(self):
        assert not general_compare("=", [1], [3])

    def test_self_not_equal_is_also_true(self):
        # (1,2) != (1,2) is true because 1 != 2.
        assert general_compare("!=", [1, 2], [1, 2])

    def test_empty_never_compares(self):
        assert not general_compare("=", [], [1, 2])
        assert not general_compare("!=", [], [])

    def test_existential_less_than(self):
        assert general_compare("<", [5, 1], [2])

    def test_membership_idiom(self):
        # "Once in a while, we used = to test if a sequence contained a value"
        haystack = ["a", "b", "c"]
        assert general_compare("=", haystack, ["b"])
        assert not general_compare("=", haystack, ["z"])


class TestDeepEqual:
    def test_atomics(self):
        assert deep_equal([1, "a"], [1, "a"])
        assert not deep_equal([1], [2])

    def test_length_mismatch(self):
        assert not deep_equal([1], [1, 1])

    def test_elements_with_same_shape(self):
        left = ElementNode("a", [AttributeNode("x", "1")], [TextNode("t")])
        right = ElementNode("a", [AttributeNode("x", "1")], [TextNode("t")])
        assert deep_equal([left], [right])

    def test_attribute_order_ignored(self):
        left = ElementNode("a", [AttributeNode("x", "1"), AttributeNode("y", "2")])
        right = ElementNode("a", [AttributeNode("y", "2"), AttributeNode("x", "1")])
        assert deep_equal([left], [right])

    def test_name_mismatch(self):
        assert not deep_equal([ElementNode("a")], [ElementNode("b")])

    def test_node_vs_atomic(self):
        assert not deep_equal([ElementNode("a")], ["a"])

    def test_incomparable_atomics_are_unequal(self):
        assert not deep_equal(["1"], [1])


class TestNodesBefore:
    def test_within_tree(self):
        first = ElementNode("a")
        second = ElementNode("b")
        ElementNode("root", children=[first, second])
        assert nodes_before(first, second) is True
        assert nodes_before(second, first) is False

    def test_cross_tree_returns_none(self):
        assert nodes_before(ElementNode("a"), ElementNode("b")) is None
