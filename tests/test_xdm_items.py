"""Unit tests for repro.xdm.items: atomic values and their lexical forms."""

from decimal import Decimal

import pytest

from repro.xdm.items import (
    UntypedAtomic,
    atomic_type_name,
    format_decimal,
    format_double,
    is_atomic,
    parse_number,
    string_value_of_atomic,
    untyped_to_double,
)


class TestUntypedAtomic:
    def test_wraps_string(self):
        assert UntypedAtomic("42").value == "42"

    def test_coerces_non_string(self):
        assert UntypedAtomic(42).value == "42"

    def test_equality(self):
        assert UntypedAtomic("a") == UntypedAtomic("a")
        assert UntypedAtomic("a") != UntypedAtomic("b")

    def test_not_equal_to_plain_string(self):
        assert UntypedAtomic("a") != "a"

    def test_hashable(self):
        assert len({UntypedAtomic("a"), UntypedAtomic("a")}) == 1

    def test_str(self):
        assert str(UntypedAtomic("hello")) == "hello"


class TestTypeNames:
    def test_boolean_before_integer(self):
        # bool is an int subclass; the mapping must not confuse them.
        assert atomic_type_name(True) == "xs:boolean"
        assert atomic_type_name(1) == "xs:integer"

    def test_decimal(self):
        assert atomic_type_name(Decimal("1.5")) == "xs:decimal"

    def test_double(self):
        assert atomic_type_name(1.5) == "xs:double"

    def test_string(self):
        assert atomic_type_name("x") == "xs:string"

    def test_untyped(self):
        assert atomic_type_name(UntypedAtomic("x")) == "xs:untypedAtomic"

    def test_non_atomic_raises(self):
        with pytest.raises(TypeError):
            atomic_type_name([1, 2])

    def test_is_atomic(self):
        assert is_atomic("x") and is_atomic(1) and is_atomic(UntypedAtomic(""))
        assert not is_atomic([]) and not is_atomic(None)


class TestStringValue:
    def test_booleans(self):
        assert string_value_of_atomic(True) == "true"
        assert string_value_of_atomic(False) == "false"

    def test_integer(self):
        assert string_value_of_atomic(42) == "42"

    def test_integral_double_prints_without_point(self):
        assert string_value_of_atomic(3.0) == "3"

    def test_fractional_double(self):
        assert string_value_of_atomic(2.5) == "2.5"

    def test_decimal_strips_trailing_zeros(self):
        assert string_value_of_atomic(Decimal("1.500")) == "1.5"

    def test_decimal_integral(self):
        assert string_value_of_atomic(Decimal("7")) == "7"

    def test_untyped(self):
        assert string_value_of_atomic(UntypedAtomic(" pad ")) == " pad "


class TestDoubleFormatting:
    def test_nan(self):
        assert format_double(float("nan")) == "NaN"

    def test_infinities(self):
        assert format_double(float("inf")) == "INF"
        assert format_double(float("-inf")) == "-INF"

    def test_negative_integral(self):
        assert format_double(-4.0) == "-4"


class TestDecimalFormatting:
    def test_no_exponent(self):
        assert format_decimal(Decimal("1E+2")) == "100"

    def test_zero(self):
        assert format_decimal(Decimal("0")) == "0"

    def test_small_fraction(self):
        assert format_decimal(Decimal("0.25")) == "0.25"


class TestParseNumber:
    def test_integer_literal(self):
        value = parse_number("42")
        assert value == 42 and isinstance(value, int)

    def test_decimal_literal(self):
        value = parse_number("1.5")
        assert value == Decimal("1.5") and isinstance(value, Decimal)

    def test_double_literal(self):
        value = parse_number("1e3")
        assert value == 1000.0 and isinstance(value, float)

    def test_double_with_sign_exponent(self):
        assert parse_number("2.5E-1") == 0.25

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            parse_number("")

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_number("1.2.3")


class TestUntypedPromotion:
    def test_plain_number(self):
        assert untyped_to_double(UntypedAtomic(" 2.5 ")) == 2.5

    def test_inf_lexical(self):
        assert untyped_to_double(UntypedAtomic("INF")) == float("inf")
        assert untyped_to_double(UntypedAtomic("-INF")) == float("-inf")

    def test_nan_lexical(self):
        value = untyped_to_double(UntypedAtomic("NaN"))
        assert value != value

    def test_non_numeric_raises(self):
        with pytest.raises(ValueError):
            untyped_to_double(UntypedAtomic("hello"))
