"""Unit tests for repro.xdm.nodes: node kinds, axes, order, mutation."""

import pytest

from repro.xdm import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    TextNode,
    element,
    sort_document_order,
)


def sample_tree():
    """<root a="1"><x><y/></x>text<x2/></root> inside a document."""
    y = ElementNode("y")
    x = ElementNode("x", children=[y])
    text = TextNode("text")
    x2 = ElementNode("x2")
    root = ElementNode("root", [AttributeNode("a", "1")], [x, text, x2])
    return DocumentNode([root]), root, x, y, text, x2


class TestIdentity:
    def test_equal_content_distinct_identity(self):
        assert ElementNode("a") is not ElementNode("a")

    def test_copy_has_fresh_identity(self):
        node = ElementNode("a", children=[TextNode("t")])
        duplicate = node.copy()
        assert duplicate is not node
        assert duplicate.children[0] is not node.children[0]
        assert duplicate.string_value() == node.string_value()

    def test_copy_detaches_parent(self):
        _, root, x, *_ = sample_tree()
        assert x.copy().parent is None


class TestStringValue:
    def test_element_concatenates_descendant_text(self):
        root = ElementNode(
            "r", children=[TextNode("a"), ElementNode("e", children=[TextNode("b")])]
        )
        assert root.string_value() == "ab"

    def test_comment_text_excluded_from_element_value(self):
        root = ElementNode("r", children=[TextNode("a"), CommentNode("nope")])
        assert root.string_value() == "a"

    def test_attribute_value(self):
        assert AttributeNode("n", "v").string_value() == "v"

    def test_document_value(self):
        document, *_ = sample_tree()
        assert document.string_value() == "text"


class TestAxes:
    def test_children_excludes_attributes(self):
        _, root, x, y, text, x2 = sample_tree()
        assert root.children == [x, text, x2]

    def test_attributes(self):
        _, root, *_ = sample_tree()
        assert [a.name for a in root.attributes] == ["a"]

    def test_descendants_in_document_order(self):
        _, root, x, y, text, x2 = sample_tree()
        assert list(root.descendants()) == [x, y, text, x2]

    def test_ancestors(self):
        document, root, x, y, *_ = sample_tree()
        assert list(y.ancestors()) == [x, root, document]

    def test_root(self):
        document, root, x, y, *_ = sample_tree()
        assert y.root() is document

    def test_following_siblings(self):
        _, root, x, y, text, x2 = sample_tree()
        assert list(x.following_siblings()) == [text, x2]

    def test_preceding_siblings_reverse_order(self):
        _, root, x, y, text, x2 = sample_tree()
        assert list(x2.preceding_siblings()) == [text, x]

    def test_attribute_has_no_siblings(self):
        _, root, *_ = sample_tree()
        attribute = root.attributes[0]
        assert list(attribute.following_siblings()) == []


class TestDocumentOrder:
    def test_sorts_within_tree(self):
        _, root, x, y, text, x2 = sample_tree()
        assert sort_document_order([x2, y, root, text, x]) == [root, x, y, text, x2]

    def test_attribute_sorts_after_element_before_children(self):
        _, root, x, *_ = sample_tree()
        attribute = root.attributes[0]
        assert sort_document_order([x, attribute, root]) == [root, attribute, x]

    def test_deduplicates_by_identity(self):
        _, root, x, *_ = sample_tree()
        assert sort_document_order([x, x, root, root]) == [root, x]

    def test_cross_tree_order_is_stable(self):
        first = ElementNode("a")
        second = ElementNode("b")
        once = sort_document_order([second, first])
        again = sort_document_order([first, second])
        assert once == again


class TestMutation:
    def test_append_reparents(self):
        parent = ElementNode("p")
        child = ElementNode("c")
        parent.append(child)
        assert child.parent is parent

    def test_append_attribute_rejected(self):
        with pytest.raises(TypeError):
            ElementNode("p").append(AttributeNode("a", "1"))

    def test_set_attribute_replaces_same_name(self):
        node = ElementNode("p")
        node.set_attribute("a", "1")
        node.set_attribute("a", "2")
        assert node.get_attribute("a") == "2"
        assert len(node.attributes) == 1

    def test_replace_child_splices(self):
        parent = ElementNode("p")
        old = TextNode("old")
        parent.append(old)
        replacements = [TextNode("n1"), TextNode("n2")]
        parent.replace_child(old, replacements)
        assert [c.text for c in parent.children] == ["n1", "n2"]
        assert old.parent is None
        assert all(r.parent is parent for r in replacements)

    def test_remove(self):
        parent = ElementNode("p")
        child = ElementNode("c")
        parent.append(child)
        parent.remove(child)
        assert parent.children == [] and child.parent is None

    def test_insert(self):
        parent = ElementNode("p", children=[TextNode("b")])
        parent.insert(0, TextNode("a"))
        assert parent.string_value() == "ab"


class TestConvenience:
    def test_child_elements_filter(self):
        _, root, x, y, text, x2 = sample_tree()
        assert root.child_elements("x") == [x]
        assert root.child_elements() == [x, x2]

    def test_first_child_element(self):
        _, root, x, *_ = sample_tree()
        assert root.first_child_element("x") is x
        assert root.first_child_element("zzz") is None

    def test_element_builder(self):
        node = element("div", "hello ", element("b", "world"), class_="box")
        assert node.get_attribute("class") == "box"
        assert node.string_value() == "hello world"

    def test_element_builder_attribute_node_positional(self):
        node = element("div", AttributeNode("x", "1"))
        assert node.get_attribute("x") == "1"

    def test_element_builder_flattens_lists(self):
        node = element("ul", [element("li", str(i)) for i in range(3)])
        assert len(node.child_elements("li")) == 3

    def test_document_element(self):
        document, root, *_ = sample_tree()
        assert document.document_element() is root
