"""Unit tests for repro.xdm.sequence: flattening and friends."""

from decimal import Decimal

import pytest

from repro.xdm import (
    ElementNode,
    TextNode,
    UntypedAtomic,
    atomize,
    effective_boolean_value,
    number_value,
    sequence,
    singleton,
    string_value,
)


class TestFlattening:
    def test_paper_example(self):
        # (1,(2,3,4),(),(5,((6,7)))) = (1,2,3,4,5,6,7)
        assert sequence(1, [2, 3, 4], [], [5, [[6, 7]]]) == [1, 2, 3, 4, 5, 6, 7]

    def test_empty(self):
        assert sequence() == []

    def test_single_item_is_plain(self):
        assert sequence(1) == [1]

    def test_structure_is_unrecoverable(self):
        # the paper's point-list failure: two points become four numbers.
        points = sequence([1, 2], [3, 4])
        assert points == [1, 2, 3, 4]

    def test_none_is_dropped(self):
        assert sequence(1, None, 2) == [1, 2]

    def test_nodes_are_items(self):
        node = ElementNode("a")
        assert sequence([node], []) == [node]

    def test_rejects_non_items(self):
        with pytest.raises(TypeError):
            sequence(object())


class TestSingleton:
    def test_ok(self):
        assert singleton([5]) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            singleton([])

    def test_many_raises(self):
        with pytest.raises(ValueError):
            singleton([1, 2])


class TestAtomize:
    def test_atomics_pass_through(self):
        assert atomize([1, "a"]) == [1, "a"]

    def test_node_becomes_untyped(self):
        node = ElementNode("a", children=[TextNode("42")])
        assert atomize([node]) == [UntypedAtomic("42")]

    def test_mixed(self):
        node = TextNode("x")
        assert atomize([1, node]) == [1, UntypedAtomic("x")]


class TestEffectiveBooleanValue:
    def test_empty_is_false(self):
        assert effective_boolean_value([]) is False

    def test_leading_node_is_true(self):
        assert effective_boolean_value([ElementNode("a")]) is True

    def test_singleton_boolean(self):
        assert effective_boolean_value([True]) is True
        assert effective_boolean_value([False]) is False

    def test_zero_is_false(self):
        assert effective_boolean_value([0]) is False
        assert effective_boolean_value([0.0]) is False

    def test_nan_is_false(self):
        assert effective_boolean_value([float("nan")]) is False

    def test_nonzero_decimal_true(self):
        assert effective_boolean_value([Decimal("0.5")]) is True

    def test_empty_string_false(self):
        assert effective_boolean_value([""]) is False
        assert effective_boolean_value(["x"]) is True

    def test_untyped_follows_string_rule(self):
        assert effective_boolean_value([UntypedAtomic("")]) is False
        assert effective_boolean_value([UntypedAtomic("false")]) is True  # non-empty!

    def test_multi_atomic_raises(self):
        with pytest.raises(ValueError):
            effective_boolean_value([1, 2])


class TestStringValue:
    def test_empty(self):
        assert string_value([]) == ""

    def test_atomic(self):
        assert string_value([True]) == "true"

    def test_node(self):
        assert string_value([ElementNode("a", children=[TextNode("hi")])]) == "hi"

    def test_multi_raises(self):
        with pytest.raises(ValueError):
            string_value([1, 2])


class TestNumberValue:
    def test_empty_is_nan(self):
        assert number_value([]) != number_value([])

    def test_integer(self):
        assert number_value([3]) == 3.0

    def test_boolean(self):
        assert number_value([True]) == 1.0

    def test_numeric_string(self):
        assert number_value(["2.5"]) == 2.5

    def test_garbage_is_nan(self):
        value = number_value(["pear"])
        assert value != value

    def test_node_content(self):
        node = ElementNode("n", children=[TextNode("7")])
        assert number_value([node]) == 7.0
