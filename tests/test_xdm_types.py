"""Unit tests for repro.xdm.types: the type-system fragment."""

from decimal import Decimal

import pytest

from repro.xdm import (
    AttributeNode,
    CastError,
    ElementNode,
    ItemType,
    SequenceType,
    TextNode,
    UntypedAtomic,
    atomic_type_derives_from,
    cast_atomic,
)


class TestHierarchy:
    def test_integer_derives_from_decimal(self):
        assert atomic_type_derives_from("xs:integer", "xs:decimal")

    def test_everything_derives_from_any_atomic(self):
        for name in ("xs:string", "xs:boolean", "xs:double", "xs:integer"):
            assert atomic_type_derives_from(name, "xs:anyAtomicType")

    def test_decimal_not_integer(self):
        assert not atomic_type_derives_from("xs:decimal", "xs:integer")

    def test_positive_integer_chain(self):
        assert atomic_type_derives_from("xs:positiveInteger", "xs:decimal")


class TestItemType:
    def test_item_matches_everything(self):
        item = ItemType.item()
        assert item.matches(1) and item.matches(ElementNode("a"))

    def test_atomic_match(self):
        assert ItemType.atomic("xs:integer").matches(5)
        assert not ItemType.atomic("xs:integer").matches("5")

    def test_boolean_is_not_integer(self):
        assert not ItemType.atomic("xs:integer").matches(True)

    def test_integer_is_decimal(self):
        assert ItemType.atomic("xs:decimal").matches(5)

    def test_node_kind(self):
        assert ItemType.node("element").matches(ElementNode("a"))
        assert not ItemType.node("element").matches(TextNode("t"))

    def test_named_element(self):
        error_type = ItemType.node("element", name="error")
        assert error_type.matches(ElementNode("error"))
        assert not error_type.matches(ElementNode("ok"))

    def test_attribute_kind(self):
        assert ItemType.node("attribute").matches(AttributeNode("a", "1"))

    def test_atomic_rejects_nodes(self):
        assert not ItemType.atomic("xs:string").matches(TextNode("x"))


class TestSequenceType:
    def test_exactly_one(self):
        sequence_type = SequenceType(ItemType.atomic("xs:integer"))
        assert sequence_type.matches([1])
        assert not sequence_type.matches([])
        assert not sequence_type.matches([1, 2])

    def test_zero_or_one(self):
        sequence_type = SequenceType(ItemType.atomic("xs:integer"), "?")
        assert sequence_type.matches([]) and sequence_type.matches([1])
        assert not sequence_type.matches([1, 2])

    def test_zero_or_more(self):
        sequence_type = SequenceType(ItemType.atomic("xs:integer"), "*")
        assert sequence_type.matches([]) and sequence_type.matches([1, 2, 3])

    def test_one_or_more(self):
        sequence_type = SequenceType(ItemType.atomic("xs:integer"), "+")
        assert not sequence_type.matches([])
        assert sequence_type.matches([1, 2])

    def test_empty_sequence(self):
        assert SequenceType.empty().matches([])
        assert not SequenceType.empty().matches([1])

    def test_item_mismatch_rejects(self):
        sequence_type = SequenceType(ItemType.atomic("xs:string"), "*")
        assert not sequence_type.matches(["a", 1])


class TestCasting:
    def test_to_string(self):
        assert cast_atomic(42, "xs:string") == "42"

    def test_to_integer_from_string(self):
        assert cast_atomic("  17 ", "xs:integer") == 17

    def test_to_integer_from_double_truncates(self):
        assert cast_atomic(3.9, "xs:integer") == 3

    def test_to_integer_from_nan_fails(self):
        with pytest.raises(CastError):
            cast_atomic(float("nan"), "xs:integer")

    def test_to_boolean_lexical(self):
        assert cast_atomic("true", "xs:boolean") is True
        assert cast_atomic("0", "xs:boolean") is False

    def test_to_boolean_garbage_fails(self):
        with pytest.raises(CastError):
            cast_atomic("yes", "xs:boolean")

    def test_to_double_special_lexicals(self):
        assert cast_atomic("INF", "xs:double") == float("inf")
        assert cast_atomic("-INF", "xs:double") == float("-inf")

    def test_to_decimal(self):
        assert cast_atomic("1.25", "xs:decimal") == Decimal("1.25")

    def test_to_untyped(self):
        result = cast_atomic(5, "xs:untypedAtomic")
        assert isinstance(result, UntypedAtomic) and result.value == "5"

    def test_non_negative_rejects_negative(self):
        with pytest.raises(CastError):
            cast_atomic(-1, "xs:nonNegativeInteger")

    def test_positive_rejects_zero(self):
        with pytest.raises(CastError):
            cast_atomic(0, "xs:positiveInteger")

    def test_boolean_to_integer(self):
        assert cast_atomic(True, "xs:integer") == 1

    def test_unknown_target_fails(self):
        with pytest.raises(CastError):
            cast_atomic(1, "xs:duration")
