"""Unit tests for repro.xmlio: the from-scratch XML layer."""

import pytest

from repro.xdm import CommentNode, ElementNode, ProcessingInstructionNode, TextNode
from repro.xmlio import (
    XmlSyntaxError,
    parse_document,
    parse_element,
    serialize,
)


class TestParserBasics:
    def test_simple_element(self):
        root = parse_element("<a/>")
        assert root.name == "a" and root.children == []

    def test_attributes(self):
        root = parse_element('<a x="1" y="two"/>')
        assert root.get_attribute("x") == "1"
        assert root.get_attribute("y") == "two"

    def test_single_quoted_attributes(self):
        assert parse_element("<a x='1'/>").get_attribute("x") == "1"

    def test_nested(self):
        root = parse_element("<a><b><c/></b></a>")
        assert root.children[0].children[0].name == "c"

    def test_text_content(self):
        root = parse_element("<a>hello</a>")
        assert root.string_value() == "hello"

    def test_mixed_content(self):
        root = parse_element("<a>x<b>y</b>z</a>")
        assert root.string_value() == "xyz"
        assert [type(c).__name__ for c in root.children] == [
            "TextNode",
            "ElementNode",
            "TextNode",
        ]

    def test_whitespace_only_text_dropped_by_default(self):
        root = parse_element("<a>\n  <b/>\n</a>")
        assert len(root.children) == 1

    def test_whitespace_kept_on_request(self):
        root = parse_element("<a>\n  <b/>\n</a>", keep_whitespace_text=True)
        assert len(root.children) == 3

    def test_names_with_dashes_and_dots(self):
        root = parse_element("<table-of-contents.v2/>")
        assert root.name == "table-of-contents.v2"

    def test_xml_declaration_skipped(self):
        document = parse_document('<?xml version="1.0"?><a/>')
        assert document.document_element().name == "a"

    def test_doctype_skipped(self):
        document = parse_document('<!DOCTYPE html [<!ENTITY x "y">]><a/>')
        assert document.document_element().name == "a"

    def test_comment(self):
        root = parse_element("<a><!-- note --></a>")
        assert isinstance(root.children[0], CommentNode)
        assert root.children[0].text == " note "

    def test_processing_instruction(self):
        root = parse_element("<a><?target data here?></a>")
        pi = root.children[0]
        assert isinstance(pi, ProcessingInstructionNode)
        assert pi.target == "target" and pi.text == "data here"

    def test_cdata(self):
        root = parse_element("<a><![CDATA[<not> & parsed]]></a>")
        assert root.string_value() == "<not> & parsed"

    def test_parents_are_wired(self):
        root = parse_element("<a><b/></a>")
        assert root.children[0].parent is root
        assert root.parent is not None  # the document node


class TestEntities:
    def test_named_entities(self):
        root = parse_element("<a>&lt;&gt;&amp;&quot;&apos;</a>")
        assert root.string_value() == "<>&\"'"

    def test_numeric_entities(self):
        assert parse_element("<a>&#65;&#x42;</a>").string_value() == "AB"

    def test_entities_in_attributes(self):
        assert parse_element('<a x="&amp;&#33;"/>').get_attribute("x") == "&!"

    def test_unknown_entity_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_element("<a>&nope;</a>")


class TestErrors:
    def test_mismatched_tags(self):
        with pytest.raises(XmlSyntaxError, match="mismatched"):
            parse_element("<a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XmlSyntaxError, match="unclosed"):
            parse_element("<a><b></b>")

    def test_duplicate_attribute(self):
        with pytest.raises(XmlSyntaxError, match="duplicate"):
            parse_element('<a x="1" x="2"/>')

    def test_stray_close(self):
        with pytest.raises(XmlSyntaxError):
            parse_element("</a>")

    def test_no_element(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("   just text   ")

    def test_unterminated_comment(self):
        with pytest.raises(XmlSyntaxError, match="comment"):
            parse_element("<a><!-- oops</a>")

    def test_error_carries_location(self):
        try:
            parse_document("<a>\n<b>\n</a>")
        except XmlSyntaxError as error:
            assert error.line == 3
        else:
            pytest.fail("expected XmlSyntaxError")


class TestSerializer:
    def test_roundtrip_simple(self):
        text = '<a x="1"><b>hi</b><c/></a>'
        assert serialize(parse_element(text)) == text

    def test_escapes_text(self):
        node = ElementNode("a", children=[TextNode("<&>")])
        assert serialize(node) == "<a>&lt;&amp;&gt;</a>"

    def test_escapes_attributes(self):
        node = ElementNode("a")
        node.set_attribute("x", 'he said "no" & left')
        assert 'x="he said &quot;no&quot; &amp; left"' in serialize(node)

    def test_newline_in_attribute_escaped(self):
        node = ElementNode("a")
        node.set_attribute("x", "two\nlines")
        assert "&#10;" in serialize(node)

    def test_empty_element_self_closes(self):
        assert serialize(ElementNode("br")) == "<br/>"

    def test_indent_mode(self):
        root = parse_element("<a><b><c/></b></a>")
        expected = "<a>\n  <b>\n    <c/>\n  </b>\n</a>"
        assert serialize(root, indent=True) == expected

    def test_indent_preserves_mixed_content(self):
        root = parse_element("<a>text<b/>more</a>")
        assert serialize(root, indent=True) == "<a>text<b/>more</a>"

    def test_xml_declaration(self):
        assert serialize(ElementNode("a"), xml_declaration=True).startswith("<?xml")

    def test_comment_roundtrip(self):
        text = "<a><!--note--></a>"
        assert serialize(parse_element(text)) == text

    def test_entity_roundtrip(self):
        original = "<a>&lt;tag&gt; &amp; more</a>"
        assert serialize(parse_element(original)) == original
