"""Tests for the engine facade: compilation, configs, serialization."""

import pytest

from repro.xdm import ElementNode
from repro.xquery import (
    CompiledQuery,
    EngineConfig,
    XQueryEngine,
    XQueryStaticError,
    serialize_result,
)


class TestEngineConstruction:
    def test_default_config(self):
        engine = XQueryEngine()
        assert engine.config.optimize is True
        assert engine.config.trace_is_dead_code is False

    def test_keyword_flags(self):
        engine = XQueryEngine(optimize=False, galax_diagnostics=True)
        assert engine.config.optimize is False
        assert engine.config.galax_diagnostics is True

    def test_config_object(self):
        config = EngineConfig(duplicate_attribute_mode="first")
        assert XQueryEngine(config).config is config

    def test_config_and_flags_conflict(self):
        with pytest.raises(TypeError):
            XQueryEngine(EngineConfig(), optimize=False)


class TestCompiledQueries:
    def test_compile_once_run_many(self):
        engine = XQueryEngine()
        query = engine.compile("$x * $x")
        assert isinstance(query, CompiledQuery)
        assert query.run(variables={"x": 3}) == [9]
        assert query.run(variables={"x": 5}) == [25]

    def test_external_variable_names(self):
        engine = XQueryEngine()
        query = engine.compile(
            "declare variable $a external; declare variable $b := 1; $a + $b"
        )
        assert query.external_variable_names == ["a"]

    def test_optimizer_stats_exposed(self):
        engine = XQueryEngine()
        query = engine.compile("let $dead := 1 return 2 + 3")
        assert query.optimizer_stats.dead_lets_removed == 1
        assert query.optimizer_stats.folded_constants == 1

    def test_no_stats_when_not_optimizing(self):
        engine = XQueryEngine(optimize=False)
        assert engine.compile("1").optimizer_stats is None

    def test_declared_variable_type_enforced(self):
        engine = XQueryEngine()
        query = engine.compile(
            "declare variable $n as xs:integer external; $n"
        )
        with pytest.raises(XQueryStaticError):
            query.run(variables={"n": "not an int"})

    def test_duplicate_variable_declaration(self):
        engine = XQueryEngine()
        with pytest.raises(XQueryStaticError) as info:
            engine.compile(
                "declare variable $x := 1; declare variable $x := 2; $x"
            )
        assert info.value.code == "XQST0049"

    def test_scalar_variable_coercion(self):
        engine = XQueryEngine()
        assert engine.evaluate("$s", variables={"s": "plain"}) == ["plain"]
        assert engine.evaluate("$t", variables={"t": (1, 2)}) == [1, 2]

    def test_node_variable(self):
        engine = XQueryEngine()
        node = ElementNode("x")
        assert engine.evaluate("$n", variables={"n": node}) == [node]


class TestSerializeResult:
    def test_atomics_space_separated(self):
        assert serialize_result([1, 2, "three"]) == "1 2 three"

    def test_nodes_serialized(self):
        assert serialize_result([ElementNode("a"), ElementNode("b")]) == "<a/><b/>"

    def test_mixed(self):
        assert serialize_result([1, ElementNode("a"), 2]) == "1<a/>2"

    def test_empty(self):
        assert serialize_result([]) == ""

    def test_boolean_rendering(self):
        assert serialize_result([True, False]) == "true false"


class TestUntypedMode:
    def test_type_checks_can_be_disabled(self):
        # the paper "used XQuery in the untyped mode": with
        # type_check_calls off, declared types are not enforced.
        source = (
            "declare function local:f($x as xs:integer) { $x }; local:f('s')"
        )
        strict = XQueryEngine()
        relaxed = XQueryEngine(type_check_calls=False)
        from repro.xquery import XQueryTypeError

        with pytest.raises(XQueryTypeError):
            strict.evaluate(source)
        assert relaxed.evaluate(source) == ["s"]
