"""Tests for the engine facade: compilation, configs, serialization."""

import pytest

from repro.xdm import ElementNode
from repro.xquery import (
    CompiledQuery,
    EngineConfig,
    XQueryEngine,
    XQueryStaticError,
    serialize_result,
)


class TestEngineConstruction:
    def test_default_config(self):
        engine = XQueryEngine()
        assert engine.config.optimize is True
        assert engine.config.trace_is_dead_code is False

    def test_keyword_flags(self):
        engine = XQueryEngine(optimize=False, galax_diagnostics=True)
        assert engine.config.optimize is False
        assert engine.config.galax_diagnostics is True

    def test_config_object(self):
        config = EngineConfig(duplicate_attribute_mode="first")
        assert XQueryEngine(config).config is config

    def test_config_and_flags_conflict(self):
        with pytest.raises(TypeError):
            XQueryEngine(EngineConfig(), optimize=False)


class TestCompiledQueries:
    def test_compile_once_run_many(self):
        engine = XQueryEngine()
        query = engine.compile("$x * $x")
        assert isinstance(query, CompiledQuery)
        assert query.run(variables={"x": 3}) == [9]
        assert query.run(variables={"x": 5}) == [25]

    def test_external_variable_names(self):
        engine = XQueryEngine()
        query = engine.compile(
            "declare variable $a external; declare variable $b := 1; $a + $b"
        )
        assert query.external_variable_names == ["a"]

    def test_optimizer_stats_exposed(self):
        engine = XQueryEngine()
        query = engine.compile("let $dead := 1 return 2 + 3")
        assert query.optimizer_stats.dead_lets_removed == 1
        assert query.optimizer_stats.folded_constants == 1

    def test_no_stats_when_not_optimizing(self):
        engine = XQueryEngine(optimize=False)
        assert engine.compile("1").optimizer_stats is None

    def test_declared_variable_type_enforced(self):
        engine = XQueryEngine()
        query = engine.compile(
            "declare variable $n as xs:integer external; $n"
        )
        with pytest.raises(XQueryStaticError):
            query.run(variables={"n": "not an int"})

    def test_duplicate_variable_declaration(self):
        engine = XQueryEngine()
        with pytest.raises(XQueryStaticError) as info:
            engine.compile(
                "declare variable $x := 1; declare variable $x := 2; $x"
            )
        assert info.value.code == "XQST0049"

    def test_scalar_variable_coercion(self):
        engine = XQueryEngine()
        assert engine.evaluate("$s", variables={"s": "plain"}) == ["plain"]
        assert engine.evaluate("$t", variables={"t": (1, 2)}) == [1, 2]

    def test_node_variable(self):
        engine = XQueryEngine()
        node = ElementNode("x")
        assert engine.evaluate("$n", variables={"n": node}) == [node]


class TestSerializeResult:
    def test_atomics_space_separated(self):
        assert serialize_result([1, 2, "three"]) == "1 2 three"

    def test_nodes_serialized(self):
        assert serialize_result([ElementNode("a"), ElementNode("b")]) == "<a/><b/>"

    def test_mixed(self):
        assert serialize_result([1, ElementNode("a"), 2]) == "1<a/>2"

    def test_empty(self):
        assert serialize_result([]) == ""

    def test_boolean_rendering(self):
        assert serialize_result([True, False]) == "true false"


class TestUntypedMode:
    def test_type_checks_can_be_disabled(self):
        # the paper "used XQuery in the untyped mode": with
        # type_check_calls off, declared types are not enforced.
        source = (
            "declare function local:f($x as xs:integer) { $x }; local:f('s')"
        )
        strict = XQueryEngine()
        relaxed = XQueryEngine(type_check_calls=False)
        from repro.xquery import XQueryTypeError

        with pytest.raises(XQueryTypeError):
            strict.evaluate(source)
        assert relaxed.evaluate(source) == ["s"]


class TestCoerceSequence:
    """Host-value coercion: lists and tuples must flatten identically."""

    def query(self):
        return XQueryEngine().compile("declare variable $v external; $v")

    def test_flat_list_and_tuple_agree(self):
        assert self.query().run(variables={"v": [1, 2, 3]}) == [1, 2, 3]
        assert self.query().run(variables={"v": (1, 2, 3)}) == [1, 2, 3]

    def test_nested_list_and_tuple_agree(self):
        nested_list = [1, [2, [3]], []]
        nested_tuple = (1, (2, (3,)), ())
        assert self.query().run(variables={"v": nested_list}) == [1, 2, 3]
        assert self.query().run(variables={"v": nested_tuple}) == [1, 2, 3]

    def test_mixed_nesting_agrees(self):
        assert self.query().run(variables={"v": [1, (2, [3])]}) == [1, 2, 3]
        assert self.query().run(variables={"v": (1, [2, (3,)])}) == [1, 2, 3]

    def test_scalar_is_singleton(self):
        assert self.query().run(variables={"v": 7}) == [7]
        assert self.query().run(variables={"v": "s"}) == ["s"]


class TestCompileCache:
    def test_hit_and_miss_counting(self):
        engine = XQueryEngine()
        first = engine.compile("1 + 1")
        again = engine.compile("1 + 1")
        other = engine.compile("2 + 2")
        assert again is first
        assert other is not first
        info = engine.cache_info()
        assert info["hits"] == 1 and info["misses"] == 2
        assert info["currsize"] == 2

    def test_bounded_lru_eviction(self):
        engine = XQueryEngine(compile_cache_size=2)
        a = engine.compile("1")
        engine.compile("2")
        engine.compile("1")  # refresh a's recency
        engine.compile("3")  # evicts "2"
        assert engine.compile("1") is a
        assert engine.cache_info()["currsize"] == 2
        before = engine.cache_misses
        engine.compile("2")  # was evicted: a fresh miss
        assert engine.cache_misses == before + 1

    def test_cache_disabled_by_size_zero(self):
        engine = XQueryEngine(compile_cache_size=0)
        first = engine.compile("1 + 1")
        assert engine.compile("1 + 1") is not first
        assert engine.cache_info() == {
            "hits": 0, "misses": 0, "races": 0, "currsize": 0, "maxsize": 0,
        }

    def test_use_cache_false_bypasses(self):
        engine = XQueryEngine()
        cached = engine.compile("1")
        assert engine.compile("1", use_cache=False) is not cached
        assert engine.cache_info()["hits"] == 0

    def test_config_mutation_invalidates(self):
        engine = XQueryEngine()
        optimized = engine.compile("1 + 2")
        engine.config.optimize = False
        raw = engine.compile("1 + 2")
        assert raw is not optimized
        assert raw.optimizer_stats is None

    def test_cache_clear(self):
        engine = XQueryEngine()
        engine.compile("1")
        engine.compile("1")
        engine.cache_clear()
        assert engine.cache_info() == {
            "hits": 0, "misses": 0, "races": 0, "currsize": 0, "maxsize": 128,
        }


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        query = XQueryEngine().compile("1")
        with pytest.raises(ValueError):
            query.run(backend="bytecode")

    def test_config_backend_is_default(self):
        engine = XQueryEngine(backend="closures")
        query = engine.compile("2 + 2")
        assert query.run() == [4]
        assert query._closures is not None

    def test_treewalk_never_builds_closures(self):
        query = XQueryEngine().compile("2 + 2")
        assert query.run() == [4]
        assert query._closures is None
