"""Evaluator tests: constructors — the paper's data-structure battleground.

Includes the two behavioral tables from the paper:

* the sequence-indexing table ("Result / X / Y / Z / Gives");
* the attribute-folding examples.
"""

import pytest

from repro.xdm import AttributeNode, TextNode
from repro.xquery import EngineConfig, XQueryDynamicError, XQueryEngine

engine = XQueryEngine()


def run(source, **kwargs):
    return engine.evaluate(source, **kwargs)


def text_of(source, **kwargs):
    return engine.evaluate_to_string(source, **kwargs)


class TestDirectElements:
    def test_empty(self):
        assert text_of("<a/>") == "<a/>"

    def test_literal_attributes(self):
        assert text_of('<a x="1"/>') == '<a x="1"/>'

    def test_attribute_value_template(self):
        assert text_of("<a x=\"{1+1}\"/>") == '<a x="2"/>'

    def test_attribute_value_mixed(self):
        assert text_of("<a x=\"v{1+1}w\"/>") == '<a x="v2w"/>'

    def test_enclosed_content(self):
        assert text_of("<a>{1+1}</a>") == "<a>2</a>"

    def test_adjacent_atomics_space_joined(self):
        assert text_of("<a>{1, 2, 3}</a>") == "<a>1 2 3</a>"

    def test_atomics_across_enclosures_not_joined(self):
        assert text_of("<a>{1}{2}</a>") == "<a>12</a>"

    def test_nested_elements(self):
        assert text_of("<a><b>x</b><c/></a>") == "<a><b>x</b><c/></a>"

    def test_content_nodes_are_copied(self):
        result = run("let $b := <b/> return (<a>{$b}</a>, $b)")
        outer, original = result
        assert outer.children[0] is not original

    def test_sequence_content_flattens(self):
        assert text_of("<a>{(1,(2,3))}</a>") == "<a>1 2 3</a>"

    def test_comment_constructor(self):
        assert text_of("<a><!--note--></a>") == "<a><!--note--></a>"


class TestComputedConstructors:
    def test_computed_element_static_name(self):
        assert text_of("element foo { 'x' }") == "<foo>x</foo>"

    def test_computed_element_dynamic_name(self):
        assert text_of("element { concat('a', 'b') } { () }") == "<ab/>"

    def test_computed_attribute(self):
        result = run("attribute year { 1983 }")
        assert isinstance(result[0], AttributeNode)
        assert result[0].name == "year" and result[0].value == "1983"

    def test_computed_text(self):
        result = run("text { 'hello' }")
        assert isinstance(result[0], TextNode)

    def test_computed_text_of_empty_is_empty(self):
        assert run("text { () }") == []

    def test_computed_comment(self):
        assert text_of("comment { 'hi' }") == "<!--hi-->"

    def test_document_constructor(self):
        result = run("document { <a/> }")
        assert result[0].kind == "document"


class TestAttributeFolding:
    """The paper's attribute-folding examples, verbatim."""

    def test_leading_attribute_folds_into_parent(self):
        source = "let $x := attribute troubles {1} return <el> {$x} </el>"
        assert text_of(source) == '<el troubles="1"/>'

    def test_duplicate_attributes_last_wins_by_default(self):
        source = (
            "let $a := attribute a {1} let $b := attribute a {2} "
            "let $c := attribute b {3} return <el> {$a}{$b}{$c} </el>"
        )
        # one of the two results the paper allows; we default to "last".
        assert text_of(source) == '<el a="2" b="3"/>'

    def test_duplicate_attributes_first_mode(self):
        first_mode = XQueryEngine(EngineConfig(duplicate_attribute_mode="first"))
        source = (
            "let $a := attribute a {1} let $b := attribute a {2} "
            "return <el> {$a}{$b} </el>"
        )
        result = first_mode.evaluate(source)
        assert result[0].get_attribute("a") == "1"

    def test_duplicate_attributes_galax_keeps_both(self):
        # "though Galax did not honor this as of the time of writing"
        galax = XQueryEngine(EngineConfig(duplicate_attribute_mode="keep"))
        source = (
            "let $a := attribute a {1} let $b := attribute a {2} "
            "return <el> {$a}{$b} </el>"
        )
        result = galax.evaluate(source)
        assert len(result[0].attributes) == 2

    def test_duplicate_attributes_error_mode(self):
        strict = XQueryEngine(EngineConfig(duplicate_attribute_mode="error"))
        source = (
            "let $a := attribute a {1} let $b := attribute a {2} "
            "return <el> {$a}{$b} </el>"
        )
        with pytest.raises(XQueryDynamicError) as info:
            strict.evaluate(source)
        assert info.value.code == "XQDY0025"

    def test_attribute_after_content_is_error(self):
        source = "let $x := attribute troubles {1} return <el> 'doom' {$x} </el>"
        with pytest.raises(XQueryDynamicError) as info:
            run(source)
        assert info.value.code == "XQTY0024"

    def test_attribute_order_lost(self):
        # attributes have no ordering; serialization shows insertion order.
        source = (
            "let $b := attribute b {2} let $a := attribute a {1} "
            "return <el>{$b}{$a}</el>"
        )
        result = run(source)
        assert {a.name for a in result[0].attributes} == {"a", "b"}


class TestSequenceIndexingTable:
    """The paper's 7-row table: what does ($X,$Y,$Z)[2] give?

    Each row binds X, Y, Z and asks for element 2 of the sequence (and of
    an element constructor's children).  The "Result" column of the paper
    is reproduced in the assertion comments.
    """

    def seq2(self, x, y, z):
        return run(
            "($x, $y, $z)[2]", variables={"x": x, "y": y, "z": z}
        )

    def test_row1_y_itself(self):
        # X=1 Y=2 Z=3 gives 2 (Y itself)
        assert self.seq2(1, 2, 3) == [2]

    def test_row2_some_part_of_y(self):
        # X=1 Y=(2,"2a") Z=4 gives 2 (a part of Y)
        assert self.seq2(1, [2, "2a"], 4) == [2]

    def test_row3_z(self):
        # X=1 Y=() Z=3 gives 3 (Z, not Y)
        assert self.seq2(1, [], 3) == [3]

    def test_row4_part_of_x(self):
        # X=("1a","1b") Y=2 Z=3 gives "1b" (a part of X)
        assert self.seq2(["1a", "1b"], 2, 3) == ["1b"]

    def test_row5_part_of_z(self):
        # X=1 Y=() Z=("3a","3b"): the paper's table prints "3b", but by
        # the flattening rule the table itself demonstrates in row 4,
        # (1, "3a", "3b")[2] is "3a" — an apparent erratum in the paper,
        # recorded in EXPERIMENTS.md.  Either way the item is a part of Z,
        # which is the row's actual point.
        assert self.seq2(1, [], ["3a", "3b"]) == ["3a"]

    def test_row6_nothing(self):
        # X=() Y=(2) Z=() gives () (nothing)
        assert self.seq2([], [2], []) == []

    def test_row7_attribute_in_element_rep_is_error(self):
        # X=1 Y=attribute y{"why?"} Z=2: the element representation errors
        # (attribute after content).
        source = (
            'let $y := attribute y {"why?"} '
            "return <el>{1}{$y}{2}</el>/*[2]"
        )
        with pytest.raises(XQueryDynamicError) as info:
            run(source)
        assert info.value.code == "XQTY0024"

    def test_row7_attribute_in_sequence_rep_vanishes_from_children(self):
        # In the sequence representation the attribute node is item 2...
        result = run(
            "let $y := attribute y {1} return (1, $y, 2)[2]"
        )
        assert isinstance(result[0], AttributeNode)
        # ...but put leading-first into an element, it is NOT among the
        # children ("not retrieved by the expression that gets all the
        # children").
        children = run(
            "let $y := attribute y {1} return count(<el>{$y}{1}{2}</el>/*)"
        )
        assert children == [0]  # the atomics merged into one text node


class TestElementRepresentationOfTuples:
    def test_points_as_xml_work(self):
        # "Points are simple enough to be represented as XML values."
        source = """
        let $p1 := <point x="1" y="2"/>
        let $p2 := <point x="3" y="4"/>
        let $points := ($p1, $p2)
        return (count($points), string($points[2]/@x))
        """
        assert run(source) == [2, "3"]

    def test_points_as_sequences_break(self):
        # "making a list of the points (1,2) and (3,4) actually makes a
        # list of four numbers".
        assert run("count(((1,2),(3,4)))") == [4]
