"""Tests for DynamicContext scoping and the TraceLog."""

from repro.xquery.context import DynamicContext, EngineConfig, TraceLog


class TestTraceLog:
    def test_collects(self):
        log = TraceLog()
        log.emit("one")
        log.emit("two")
        assert log.messages == ["one", "two"]

    def test_echo_callback(self):
        seen = []
        log = TraceLog(echo=seen.append)
        log.emit("hello")
        assert seen == ["hello"]

    def test_clear(self):
        log = TraceLog()
        log.emit("x")
        log.clear()
        assert log.messages == []


class TestDynamicContext:
    def test_with_variables_does_not_leak_up(self):
        parent = DynamicContext(variables={"a": [1]})
        child = parent.with_variables({"b": [2]})
        assert child.variables == {"a": [1], "b": [2]}
        assert "b" not in parent.variables

    def test_with_variables_shadows(self):
        parent = DynamicContext(variables={"a": [1]})
        child = parent.with_variables({"a": [9]})
        assert child.variables["a"] == [9]
        assert parent.variables["a"] == [1]

    def test_with_focus_preserves_variables(self):
        parent = DynamicContext(variables={"a": [1]})
        focused = parent.with_focus("item", 2, 5)
        assert focused.item == "item"
        assert (focused.position, focused.size) == (2, 5)
        assert focused.variables["a"] == [1]
        assert parent.item is None

    def test_function_scope_sees_globals_only(self):
        ctx = DynamicContext(variables={"local": [1]})
        ctx.globals["g"] = [7]
        scope = ctx.function_scope({"param": [2]})
        assert scope.variables == {"g": [7], "param": [2]}
        assert scope.item is None
        assert scope.depth == ctx.depth + 1

    def test_shared_components_are_shared(self):
        config = EngineConfig()
        trace = TraceLog()
        ctx = DynamicContext(config=config, trace=trace)
        child = ctx.with_variables({})
        assert child.config is config and child.trace is trace

    def test_default_construction(self):
        ctx = DynamicContext()
        assert ctx.variables == {} and ctx.globals == {}
        assert ctx.item is None and ctx.depth == 0


class TestEngineConfigDefaults:
    def test_defaults_are_modern(self):
        config = EngineConfig()
        assert config.duplicate_attribute_mode == "last"
        assert config.galax_diagnostics is False
        assert config.optimize is True
        assert config.trace_is_dead_code is False
        assert config.type_check_calls is True
