"""Tests for error reporting, Galax-mode diagnostics, and debugging tools."""

import pytest

from repro.xquery import (
    ERROR_CODES,
    EngineConfig,
    XQueryDynamicError,
    XQueryEngine,
    XQueryStaticError,
    XQueryUserError,
)
from repro.xquery.debug import (
    BisectionResult,
    ErrorBisector,
    make_probe_runner,
    run_with_trace,
)


class TestErrorReporting:
    def test_dynamic_errors_carry_location(self):
        engine = XQueryEngine()
        with pytest.raises(XQueryDynamicError) as info:
            engine.evaluate("1 +\n$missing")
        assert info.value.line == 2

    def test_galax_mode_strips_location(self):
        engine = XQueryEngine(EngineConfig(galax_diagnostics=True))
        with pytest.raises(XQueryDynamicError) as info:
            engine.evaluate("$missing")
        assert info.value.line is None

    def test_galax_missing_dollar_message(self):
        # the paper quotes the exact message for a missing variable.
        engine = XQueryEngine(EngineConfig(galax_diagnostics=True))
        with pytest.raises(XQueryDynamicError) as info:
            engine.evaluate("$anything-at-all")
        assert "Variable '$glx:dot' not found" in str(info.value)

    def test_normal_mode_names_the_variable(self):
        engine = XQueryEngine()
        with pytest.raises(XQueryDynamicError, match="nope"):
            engine.evaluate("$nope")

    def test_error_codes_catalogued(self):
        for code in ("XPST0003", "XQTY0024", "FORG0006", "FOER0000"):
            assert code in ERROR_CODES

    def test_static_error_is_not_dynamic(self):
        engine = XQueryEngine()
        with pytest.raises(XQueryStaticError):
            engine.evaluate("1 +")


class TestErrorBisection:
    def make_program(self, total, bug_at):
        def source_for_probe(probe_at):
            lines = ["let $x0 := 1"]
            for step in range(1, total + 1):
                if step == probe_at:
                    lines.append('let $p := error("probe")')
                if step == bug_at:
                    lines.append(f"let $x{step} := $x{step - 1} idiv 0")
                else:
                    lines.append(f"let $x{step} := $x{step - 1} + 1")
            lines.append(f"return $x{total}")
            return "\n".join(lines)

        return source_for_probe

    @pytest.mark.parametrize("bug_at", [1, 7, 16, 31, 32])
    def test_finds_the_bug(self, bug_at):
        engine = XQueryEngine()
        runner = make_probe_runner(engine, self.make_program(32, bug_at))
        result = ErrorBisector(32, runner).locate()
        assert result.failing_step == bug_at

    def test_run_count_is_logarithmic(self):
        engine = XQueryEngine()
        runner = make_probe_runner(engine, self.make_program(64, 33))
        result = ErrorBisector(64, runner).locate()
        assert result.runs <= 7  # ceil(log2(64)) + 1

    def test_single_step_program(self):
        result = ErrorBisector(1, lambda step: True).locate()
        assert result == BisectionResult(failing_step=1, runs=0, probes_tried=[])

    def test_rejects_empty_program(self):
        with pytest.raises(ValueError):
            ErrorBisector(0, lambda step: True)


class TestTraceRuns:
    def test_collects_messages_and_error(self):
        engine = XQueryEngine(EngineConfig(optimize=False))
        run = run_with_trace(engine, "let $x := trace('v', 5) return $x idiv 0")
        assert run.messages == ["v 5"]
        assert isinstance(run.error, XQueryDynamicError)
        assert run.trace_count == 1

    def test_successful_run(self):
        engine = XQueryEngine(EngineConfig(optimize=False))
        run = run_with_trace(engine, "trace('ok', 1)")
        assert run.error is None and run.value == [1]

    def test_user_error_propagates_with_value(self):
        engine = XQueryEngine()
        run = run_with_trace(engine, "error('stop', (1,2))")
        assert isinstance(run.error, XQueryUserError)
        assert run.error.value == [1, 2]
