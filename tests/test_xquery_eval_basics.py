"""Evaluator tests: literals, arithmetic, comparisons, logic, types."""

from decimal import Decimal

import pytest

from repro.xquery import XQueryEngine, XQueryDynamicError, XQueryTypeError

engine = XQueryEngine()


def run(source, **kwargs):
    return engine.evaluate(source, **kwargs)


class TestLiteralsAndSequences:
    def test_integer(self):
        assert run("42") == [42]

    def test_decimal_literal(self):
        assert run("1.5") == [Decimal("1.5")]

    def test_double_literal(self):
        assert run("1e2") == [100.0]

    def test_string(self):
        assert run("'hi'") == ["hi"]

    def test_empty_sequence(self):
        assert run("()") == []

    def test_flattening(self):
        assert run("(1,(2,3,4),(),(5,((6,7))))") == [1, 2, 3, 4, 5, 6, 7]

    def test_singleton_indistinguishable(self):
        assert run("(1)") == run("1")

    def test_range(self):
        assert run("2 to 5") == [2, 3, 4, 5]

    def test_empty_range(self):
        assert run("5 to 2") == []

    def test_range_with_empty_operand(self):
        assert run("() to 3") == []


class TestArithmetic:
    def test_precedence(self):
        assert run("2 + 3 * 4") == [14]

    def test_integer_division_yields_decimal(self):
        assert run("7 div 2") == [Decimal("3.5")]

    def test_idiv(self):
        assert run("7 idiv 2") == [3]
        assert run("-7 idiv 2") == [-3]  # truncating, not flooring

    def test_mod_sign_follows_dividend(self):
        assert run("5 mod 3") == [2]
        assert run("-5 mod 3") == [-2]

    def test_division_by_zero(self):
        with pytest.raises(XQueryDynamicError) as info:
            run("1 div 0")
        assert info.value.code == "FOAR0001"

    def test_double_division_by_zero_is_infinity(self):
        assert run("1e0 div 0") == [float("inf")]

    def test_empty_propagates(self):
        assert run("() + 1") == []
        assert run("1 * ()") == []

    def test_unary_minus(self):
        assert run("-(2 + 3)") == [-5]

    def test_double_unary(self):
        assert run("- -5") == [5]

    def test_untyped_promotes_to_double(self):
        doc = engine.evaluate("<n>4</n>")[0]
        assert engine.evaluate("$n + 1", variables={"n": doc}) == [5.0]

    def test_string_arithmetic_is_type_error(self):
        with pytest.raises(XQueryTypeError):
            run("'a' + 1")

    def test_non_singleton_operand_is_type_error(self):
        with pytest.raises(XQueryTypeError):
            run("(1,2) + 1")


class TestComparisons:
    def test_existential_equals(self):
        assert run("1 = (1,2,3)") == [True]
        assert run("(1,2,3) = 3") == [True]
        assert run("1 = 3") == [False]

    def test_existential_not_equals_weirdness(self):
        assert run("(1,2) != (1,2)") == [True]

    def test_value_comparison_singleton(self):
        assert run("1 eq 1") == [True]
        assert run("2 le 1") == [False]

    def test_value_comparison_rejects_sequences(self):
        with pytest.raises(XQueryTypeError):
            run("1 eq (1,2,3)")

    def test_value_comparison_empty_gives_empty(self):
        assert run("() eq 1") == []

    def test_string_comparison(self):
        assert run("'apple' lt 'banana'") == [True]

    def test_node_identity(self):
        assert run("let $x := <a/> return $x is $x") == [True]
        assert run("<a/> is <a/>") == [False]

    def test_document_order_comparison(self):
        source = "let $d := <r><a/><b/></r> return ($d/a << $d/b, $d/b >> $d/a)"
        assert run(source) == [True, True]

    def test_general_compare_type_error(self):
        with pytest.raises(XQueryTypeError):
            run("'x' = 1")


class TestLogic:
    def test_and_or(self):
        assert run("1 eq 1 and 2 eq 2") == [True]
        assert run("1 eq 2 or 2 eq 2") == [True]

    def test_short_circuit_and(self):
        # the right side would divide by zero; and must not evaluate it.
        assert run("false() and (1 div 0 eq 1)") == [False]

    def test_short_circuit_or(self):
        assert run("true() or (1 div 0 eq 1)") == [True]

    def test_ebv_of_node_is_true(self):
        assert run("if (<a/>) then 1 else 2") == [1]

    def test_ebv_of_empty_is_false(self):
        assert run("if (()) then 1 else 2") == [2]

    def test_ebv_type_error(self):
        with pytest.raises(XQueryDynamicError) as info:
            run("if ((1,2)) then 1 else 2")
        assert info.value.code == "FORG0006"


class TestTypeExpressions:
    def test_instance_of(self):
        assert run("5 instance of xs:integer") == [True]
        assert run("5 instance of xs:string") == [False]
        assert run("(1,2) instance of xs:integer+") == [True]
        assert run("() instance of empty-sequence()") == [True]

    def test_instance_of_node_kinds(self):
        assert run("<a/> instance of element()") == [True]
        assert run("<a/> instance of element(a)") == [True]
        assert run("<a/> instance of element(b)") == [False]
        assert run("attribute x {1} instance of attribute()") == [True]

    def test_cast(self):
        assert run("'42' cast as xs:integer") == [42]

    def test_cast_failure(self):
        with pytest.raises(XQueryDynamicError) as info:
            run("'pear' cast as xs:integer")
        assert info.value.code == "FORG0001"

    def test_cast_empty_with_question_mark(self):
        assert run("() cast as xs:integer?") == []

    def test_castable(self):
        assert run("'42' castable as xs:integer") == [True]
        assert run("'pear' castable as xs:integer") == [False]

    def test_treat_as(self):
        assert run("5 treat as xs:integer") == [5]
        with pytest.raises(XQueryDynamicError):
            run("'x' treat as xs:integer")

    def test_constructor_function(self):
        assert run("xs:integer('7')") == [7]
        assert run("xs:string(3.0)") == ["3"]


class TestVariables:
    def test_external_binding(self):
        assert run("$x * 2", variables={"x": 21}) == [42]

    def test_list_binding_is_sequence(self):
        assert run("count($xs)", variables={"xs": [1, 2, 3]}) == [3]

    def test_declared_variable(self):
        assert run("declare variable $n := 6; $n * 7") == [42]

    def test_declared_depends_on_earlier(self):
        assert run(
            "declare variable $a := 2; declare variable $b := $a * 3; $b"
        ) == [6]

    def test_external_declared_and_provided(self):
        source = "declare variable $in external; $in + 1"
        assert run(source, variables={"in": 1}) == [2]

    def test_missing_external_raises(self):
        with pytest.raises(Exception, match="external"):
            run("declare variable $in external; $in")

    def test_undefined_variable(self):
        with pytest.raises(XQueryDynamicError) as info:
            run("$nope")
        assert info.value.code == "XPST0008"
