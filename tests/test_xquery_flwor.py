"""Evaluator tests: FLWOR, quantifiers, conditionals, user functions."""

import pytest

from repro.xmlio import parse_element
from repro.xquery import XQueryEngine, XQueryDynamicError, XQueryTypeError

engine = XQueryEngine()


def run(source, **kwargs):
    return engine.evaluate(source, **kwargs)


class TestForLet:
    def test_basic_for(self):
        assert run("for $i in 1 to 3 return $i * 10") == [10, 20, 30]

    def test_for_flattens_results(self):
        assert run("for $i in 1 to 2 return ($i, $i)") == [1, 1, 2, 2]

    def test_nested_for_cartesian(self):
        assert run("for $a in (1,2) for $b in (10,20) return $a + $b") == [
            11,
            21,
            12,
            22,
        ]

    def test_comma_separated_bindings(self):
        assert run("for $a in (1,2), $b in (10,20) return $a + $b") == [
            11,
            21,
            12,
            22,
        ]

    def test_let_binds_whole_sequence(self):
        assert run("let $s := (1,2,3) return count($s)") == [3]

    def test_positional_variable(self):
        assert run("for $x at $i in ('a','b','c') return $i") == [1, 2, 3]

    def test_let_with_type_ok(self):
        assert run("let $x as xs:integer := 5 return $x") == [5]

    def test_let_with_type_mismatch(self):
        with pytest.raises(XQueryTypeError):
            run("let $x as xs:string := 5 return $x")

    def test_where(self):
        assert run("for $i in 1 to 10 where $i mod 3 eq 0 return $i") == [3, 6, 9]

    def test_empty_source_yields_nothing(self):
        assert run("for $x in () return 1") == []


class TestOrderBy:
    def test_ascending_default(self):
        assert run("for $x in (3,1,2) order by $x return $x") == [1, 2, 3]

    def test_descending(self):
        assert run("for $x in (3,1,2) order by $x descending return $x") == [3, 2, 1]

    def test_string_keys(self):
        assert run("for $w in ('pear','fig','apple') order by $w return $w") == [
            "apple",
            "fig",
            "pear",
        ]

    def test_multiple_keys(self):
        source = (
            "for $p in ((1,'b'),(1,'a')) return 1,"
            "for $x in (2,1), $y in ('b','a') order by $x, $y return concat($x,$y)"
        )
        assert run("for $x in (2,1), $y in ('b','a') order by $x, $y return concat($x,$y)") == [
            "1a",
            "1b",
            "2a",
            "2b",
        ]

    def test_empty_least_default(self):
        result = run(
            "for $x in (<a>2</a>, <a/>, <a>1</a>) "
            "order by $x/text() return string($x)"
        )
        assert result == ["", "1", "2"]

    def test_empty_greatest(self):
        result = run(
            "for $x in (<a>2</a>, <a/>, <a>1</a>) "
            "order by $x/text() empty greatest return string($x)"
        )
        assert result == ["1", "2", ""]

    def test_order_by_node_value(self):
        doc = parse_element(
            "<m><n id='c'/><n id='a'/><n id='b'/></m>"
        )
        result = run(
            "for $n in $m/n order by string($n/@id) return string($n/@id)",
            variables={"m": doc},
        )
        assert result == ["a", "b", "c"]

    def test_stable_keyword_accepted(self):
        assert run("for $x in (2,1) stable order by $x return $x") == [1, 2]

    def test_incomparable_keys_raise(self):
        with pytest.raises((XQueryTypeError, TypeError)):
            run("for $x in (1, 'a') order by $x return $x")


class TestUserFunctions:
    def test_simple(self):
        assert run("declare function local:sq($x) { $x * $x }; local:sq(7)") == [49]

    def test_recursion(self):
        source = """
        declare function local:sum($n) {
          if ($n le 0) then 0 else $n + local:sum($n - 1)
        };
        local:sum(100)
        """
        assert run(source) == [5050]

    def test_mutual_recursion(self):
        source = """
        declare function local:is-even($n) {
          if ($n eq 0) then true() else local:is-odd($n - 1)
        };
        declare function local:is-odd($n) {
          if ($n eq 0) then false() else local:is-even($n - 1)
        };
        (local:is-even(10), local:is-odd(7))
        """
        assert run(source) == [True, True]

    def test_overloading_by_arity(self):
        source = """
        declare function local:f($x) { $x };
        declare function local:f($x, $y) { $x + $y };
        (local:f(1), local:f(1, 2))
        """
        assert run(source) == [1, 3]

    def test_functions_see_globals_not_locals(self):
        source = """
        declare variable $g := 10;
        declare function local:f() { $g };
        let $local-only := 99 return local:f()
        """
        assert run(source) == [10]

    def test_no_capture_of_caller_locals(self):
        source = """
        declare function local:f() { $hidden };
        let $hidden := 1 return local:f()
        """
        with pytest.raises(XQueryDynamicError):
            run(source)

    def test_param_type_checked(self):
        source = """
        declare function local:f($x as xs:integer) { $x };
        local:f('nope')
        """
        with pytest.raises(XQueryTypeError):
            run(source)

    def test_return_type_checked(self):
        source = """
        declare function local:f($x) as xs:string { $x };
        local:f(5)
        """
        with pytest.raises(XQueryTypeError):
            run(source)

    def test_unknown_function(self):
        with pytest.raises(XQueryDynamicError) as info:
            run("local:missing(1)")
        assert info.value.code == "XPST0017"

    def test_duplicate_function_rejected(self):
        source = """
        declare function local:f($x) { $x };
        declare function local:f($y) { $y };
        1
        """
        with pytest.raises(Exception, match="duplicate"):
            run(source)

    def test_recursion_limit_guards(self):
        source = """
        declare function local:loop($n) { local:loop($n + 1) };
        local:loop(0)
        """
        limited = XQueryEngine(max_recursion_depth=64)
        with pytest.raises(XQueryDynamicError, match="recursion"):
            limited.evaluate(source)

    def test_fn_prefix_resolution(self):
        assert run("fn:count((1,2))") == [2]


class TestQuantified:
    def test_some_true_false(self):
        assert run("some $x in (1,2,3) satisfies $x gt 2") == [True]
        assert run("some $x in (1,2,3) satisfies $x gt 5") == [False]

    def test_every(self):
        assert run("every $x in (1,2,3) satisfies $x gt 0") == [True]
        assert run("every $x in (1,2,3) satisfies $x gt 1") == [False]

    def test_empty_domain(self):
        assert run("some $x in () satisfies true()") == [False]
        assert run("every $x in () satisfies false()") == [True]

    def test_multiple_bindings(self):
        assert run("some $a in (1,2), $b in (2,3) satisfies $a eq $b") == [True]
