"""Edge cases of the builtin library and arithmetic promotion."""

from decimal import Decimal

import pytest

from repro.xquery import XQueryEngine, XQueryTypeError

engine = XQueryEngine()


def run(source, **kwargs):
    return engine.evaluate(source, **kwargs)


class TestSubstringEdges:
    def test_fractional_start_rounds(self):
        assert run("substring('12345', 1.5, 2.6)") == ["234"]

    def test_start_past_end(self):
        assert run("substring('abc', 10)") == [""]

    def test_negative_length_empty(self):
        assert run("substring('abc', 2, -5)") == [""]

    def test_empty_input(self):
        assert run("substring((), 1)") == [""]


class TestTranslateEdges:
    def test_shorter_target_deletes(self):
        assert run("translate('abcabc', 'abc', 'x')") == ["xx"]

    def test_repeated_source_uses_first_mapping(self):
        assert run("translate('aaa', 'aa', 'bc')") == ["bbb"]

    def test_empty_maps(self):
        assert run("translate('abc', '', '')") == ["abc"]


class TestNumericEdges:
    def test_sum_preserves_integer_type(self):
        result = run("sum((1, 2, 3))")[0]
        assert result == 6 and isinstance(result, int)

    def test_sum_promotes_to_double_with_untyped(self):
        node = run("<v>1.5</v>")[0]
        result = run("sum(($v, 1))", variables={"v": node})
        assert result == [2.5]

    def test_avg_of_integers_is_decimal(self):
        result = run("avg((1, 2))")[0]
        assert result == Decimal("1.5")

    def test_min_max_on_strings_and_numbers_mixed_fails(self):
        with pytest.raises(XQueryTypeError):
            run("min((1, 'a'))")

    def test_round_negative_half_toward_positive(self):
        assert run("round(-0.5)") == [0]

    def test_abs_decimal(self):
        assert run("abs(-1.5)") == [Decimal("1.5")]

    def test_floor_of_negative(self):
        assert run("floor(-1.1)") == [-2]

    def test_nan_propagation_in_arithmetic(self):
        result = run("number('x') + 1")[0]
        assert result != result

    def test_infinity_arithmetic(self):
        assert run("1e0 div 0 - 1") == [float("inf")]

    def test_decimal_division_stays_exact(self):
        assert run("1 div 3 * 3") == [Decimal("0.9999999999999999999999999999")]


class TestRegexFunctions:
    def test_replace_with_groups(self):
        assert run("replace('a1b2', '[0-9]', '#')") == ["a#b#"]

    def test_replace_with_dollar_reference(self):
        assert run(r"replace('abc', '(b)', '[$1]')") == ["a[b]c"]

    def test_matches_is_search_not_fullmatch(self):
        assert run("matches('xxabyy', 'ab')") == [True]

    def test_tokenize_multichar_pattern(self):
        assert run("tokenize('a::b::c', '::')") == ["a", "b", "c"]


class TestStringConversionEdges:
    def test_string_of_double(self):
        assert run("string(2.0e0)") == ["2"]

    def test_string_of_negative_zero(self):
        assert run("string(0 - 0)") == ["0"]

    def test_concat_coerces_everything(self):
        assert run("concat(1, true(), 'x', ())") == ["1truex"]

    def test_string_join_atomizes_nodes(self):
        assert run("string-join((<a>1</a>, <a>2</a>), '-')") == ["1-2"]


class TestDistinctValuesEdges:
    def test_nan_handling(self):
        # NaN never equals anything including itself; both survive.
        result = run("count(distinct-values((number('x'), number('y'))))")
        assert result == [2]

    def test_untyped_compared_as_string(self):
        result = run("distinct-values((<v>a</v>, 'a'))")
        assert result == ["a"]

    def test_cross_numeric_types(self):
        assert run("count(distinct-values((1, 1.0, xs:decimal('1'))))") == [1]


class TestDeepEqualEdges:
    def test_comments_ignored(self):
        assert run("deep-equal(<a><!--x--><b/></a>, <a><b/></a>)") == [True]

    def test_attribute_values_matter(self):
        assert run("deep-equal(<a x='1'/>, <a x='2'/>)") == [False]

    def test_text_boundaries_matter(self):
        assert run("deep-equal(<a>xy</a>, <a>x<b/>y</a>)") == [False]
