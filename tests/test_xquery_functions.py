"""Evaluator tests: the built-in function library."""

from decimal import Decimal

import pytest

from repro.xmlio import parse_document, parse_element
from repro.xquery import (
    TraceLog,
    XQueryDynamicError,
    XQueryEngine,
    XQueryUserError,
    builtin_names,
)

engine = XQueryEngine()


def run(source, **kwargs):
    return engine.evaluate(source, **kwargs)


class TestCardinality:
    def test_count(self):
        assert run("count(())") == [0]
        assert run("count((1,2,3))") == [3]

    def test_empty_exists(self):
        assert run("empty(())") == [True]
        assert run("exists(())") == [False]
        assert run("exists(1)") == [True]

    def test_exactly_one(self):
        assert run("exactly-one((5))") == [5]
        with pytest.raises(XQueryDynamicError) as info:
            run("exactly-one((1,2))")
        assert info.value.code == "FORG0005"

    def test_zero_or_one(self):
        assert run("zero-or-one(())") == []
        with pytest.raises(XQueryDynamicError):
            run("zero-or-one((1,2))")

    def test_one_or_more(self):
        assert run("one-or-more((1,2))") == [1, 2]
        with pytest.raises(XQueryDynamicError):
            run("one-or-more(())")


class TestBooleans:
    def test_true_false(self):
        assert run("true()") == [True]
        assert run("false()") == [False]

    def test_not(self):
        assert run("not(())") == [True]
        assert run("not(1)") == [False]

    def test_boolean(self):
        assert run("boolean((<a/>))") == [True]
        assert run("boolean('')") == [False]


class TestStrings:
    def test_string_of_context(self):
        node = parse_element("<a>hi</a>")
        assert engine.evaluate("string()", context_item=node) == ["hi"]

    def test_concat_variadic(self):
        assert run("concat('a','b','c','d')") == ["abcd"]

    def test_string_join(self):
        assert run("string-join(('a','b'), '/')") == ["a/b"]
        assert run("string-join((), '/')") == [""]

    def test_substring(self):
        assert run("substring('12345', 2)") == ["2345"]
        assert run("substring('12345', 2, 3)") == ["234"]
        assert run("substring('12345', 0, 3)") == ["12"]

    def test_substring_before_after(self):
        assert run("substring-before('a/b/c', '/')") == ["a"]
        assert run("substring-after('a/b/c', '/')") == ["b/c"]
        assert run("substring-before('abc', 'x')") == [""]

    def test_contains_starts_ends(self):
        assert run("contains('banana', 'nan')") == [True]
        assert run("starts-with('banana', 'ban')") == [True]
        assert run("ends-with('banana', 'ana')") == [True]

    def test_normalize_space(self):
        assert run("normalize-space('  a   b  ')") == ["a b"]

    def test_case_functions(self):
        assert run("upper-case('abc')") == ["ABC"]
        assert run("lower-case('ABC')") == ["abc"]

    def test_translate(self):
        assert run("translate('abcabc', 'abc', 'xy')") == ["xyxy"]

    def test_string_length(self):
        assert run("string-length('hello')") == [5]
        assert run("string-length('')") == [0]

    def test_tokenize(self):
        assert run("tokenize('a,b,,c', ',')") == ["a", "b", "", "c"]
        assert run("tokenize('', ',')") == []

    def test_matches_replace(self):
        assert run("matches('banana', 'an+a')") == [True]
        assert run("replace('banana', 'a', 'o')") == ["bonono"]

    def test_codepoints(self):
        assert run("string-to-codepoints('AB')") == [65, 66]
        assert run("codepoints-to-string((72, 105))") == ["Hi"]


class TestNumerics:
    def test_number(self):
        assert run("number('3.5')") == [3.5]
        nan = run("number('x')")[0]
        assert nan != nan

    def test_abs_floor_ceiling(self):
        assert run("abs(-2)") == [2]
        assert run("floor(1.7)") == [1]
        assert run("ceiling(1.2)") == [2]

    def test_round_half_up(self):
        assert run("round(2.5)") == [3]
        assert run("round(-2.5)") == [-2]  # rounds toward +inf, not away

    def test_sum(self):
        assert run("sum((1,2,3))") == [6]
        assert run("sum(())") == [0]

    def test_avg(self):
        assert run("avg((1,2,3))") == [Decimal(2)]
        assert run("avg(())") == []

    def test_min_max(self):
        assert run("min((3,1,2))") == [1]
        assert run("max((3,1,2))") == [3]
        assert run("min(('b','a'))") == ["a"]
        assert run("min(())") == []

    def test_sum_over_nodes(self):
        doc = parse_element("<r><v>1</v><v>2</v></r>")
        assert run("sum($r/v)", variables={"r": doc}) == [3.0]


class TestSequences:
    def test_distinct_values(self):
        assert run("distinct-values((1, 2, 1, 'a', 'a'))") == [1, 2, "a"]

    def test_distinct_values_numeric_cross_type(self):
        assert run("distinct-values((1, 1.0))") == [1]

    def test_reverse(self):
        assert run("reverse((1,2,3))") == [3, 2, 1]
        assert run("reverse(())") == []

    def test_subsequence(self):
        assert run("subsequence((1,2,3,4,5), 2, 3)") == [2, 3, 4]
        assert run("subsequence((1,2,3), 2)") == [2, 3]

    def test_insert_before(self):
        assert run("insert-before((1,2,3), 2, (9))") == [1, 9, 2, 3]

    def test_remove(self):
        assert run("remove((1,2,3), 2)") == [1, 3]
        assert run("remove((1,2,3), 9)") == [1, 2, 3]

    def test_index_of(self):
        assert run("index-of((10,20,10), 10)") == [1, 3]
        assert run("index-of((1,2), 9)") == []

    def test_deep_equal(self):
        assert run("deep-equal(<a><b/></a>, <a><b/></a>)") == [True]
        assert run("deep-equal(<a/>, <b/>)") == [False]

    def test_data(self):
        doc = parse_element("<r><v>7</v></r>")
        result = run("data($r/v)", variables={"r": doc})
        assert [str(x) for x in result] == ["7"]


class TestNodeFunctions:
    def test_name(self):
        assert run("name(<foo/>)") == ["foo"]
        assert run("name(())") == [""]

    def test_local_name_strips_prefix(self):
        assert run("local-name(<x:foo/>)") == ["foo"]

    def test_node_name_empty_for_unnamed(self):
        assert run("node-name(text {'x'})") == []

    def test_root(self):
        document = parse_document("<a><b/></a>")
        result = engine.evaluate("root(./a/b)", context_item=document)
        assert result == [document]

    def test_doc_function(self):
        document = parse_document("<data><x/></data>")
        result = run(
            'doc("model.xml")/data/x', documents={"model.xml": document}
        )
        assert len(result) == 1

    def test_doc_missing(self):
        with pytest.raises(XQueryDynamicError) as info:
            run('doc("nope.xml")')
        assert info.value.code == "FODC0002"

    def test_doc_available(self):
        document = parse_document("<d/>")
        assert run('doc-available("x")', documents={"x": document}) == [True]
        assert run('doc-available("y")', documents={"x": document}) == [False]


class TestErrorAndTrace:
    def test_error_kills_the_program(self):
        with pytest.raises(XQueryUserError, match="doom"):
            run("error('doom')")

    def test_error_no_args(self):
        with pytest.raises(XQueryUserError):
            run("error()")

    def test_error_carries_value(self):
        with pytest.raises(XQueryUserError) as info:
            run("error('msg', (1,2,3))")
        assert info.value.value == [1, 2, 3]

    def test_trace_returns_last_argument(self):
        # the paper's trace: "prints its arguments and returns the value
        # of the last one".
        no_opt = XQueryEngine(optimize=False)
        trace = TraceLog()
        assert no_opt.evaluate("trace('x=', 41 + 1)", trace=trace) == [42]
        assert trace.messages == ["x= 42"]

    def test_trace_multiple_messages(self):
        no_opt = XQueryEngine(optimize=False)
        trace = TraceLog()
        no_opt.evaluate("for $i in 1 to 3 return trace('i', $i)", trace=trace)
        assert trace.messages == ["i 1", "i 2", "i 3"]


class TestLibraryInventory:
    def test_builtin_names_listed(self):
        names = builtin_names()
        for expected in ("count", "concat", "trace", "error", "doc"):
            assert expected in names

    def test_context_functions_require_focus(self):
        with pytest.raises(XQueryDynamicError) as info:
            run("position()")
        assert info.value.code == "XPDY0002"
