"""Unit tests for the XQuery lexer, especially the paper's quirks."""

import pytest

from repro.xquery.errors import XQueryStaticError
from repro.xquery.lexer import Lexer


def tokens_of(source):
    lexer = Lexer(source)
    result = []
    while True:
        token = lexer.next_token()
        if token.kind == "eof":
            return result
        result.append((token.kind, token.value))


class TestNamesAndVariables:
    def test_bare_name(self):
        assert tokens_of("kid") == [("name", "kid")]

    def test_variable(self):
        assert tokens_of("$x") == [("var", "x")]

    def test_quirk_dash_continues_variable_name(self):
        # "$n-1 is a variable with a three-letter name"
        assert tokens_of("$n-1") == [("var", "n-1")]

    def test_spaced_subtraction(self):
        assert tokens_of("$n - 1") == [
            ("var", "n"),
            ("symbol", "-"),
            ("integer", "1"),
        ]

    def test_parenthesized_subtraction(self):
        assert tokens_of("($n)-1") == [
            ("symbol", "("),
            ("var", "n"),
            ("symbol", ")"),
            ("symbol", "-"),
            ("integer", "1"),
        ]

    def test_qname(self):
        assert tokens_of("local:fact") == [("name", "local:fact")]

    def test_axis_double_colon_not_a_qname(self):
        assert tokens_of("parent::book") == [
            ("name", "parent"),
            ("symbol", "::"),
            ("name", "book"),
        ]

    def test_dollar_requires_name(self):
        with pytest.raises(XQueryStaticError):
            tokens_of("$ 1")


class TestNumbers:
    def test_integer(self):
        assert tokens_of("42") == [("integer", "42")]

    def test_decimal(self):
        assert tokens_of("1.5") == [("decimal", "1.5")]

    def test_leading_dot_decimal(self):
        assert tokens_of(".5") == [("decimal", ".5")]

    def test_double(self):
        assert tokens_of("1e3") == [("double", "1e3")]
        assert tokens_of("1.5E-2") == [("double", "1.5E-2")]

    def test_range_not_decimal(self):
        # "1..3" must not lex 1. as a decimal — it's 1 .. 3
        assert tokens_of("1..") == [("integer", "1"), ("symbol", "..")]


class TestStrings:
    def test_double_quoted(self):
        assert tokens_of('"hello"') == [("string", "hello")]

    def test_single_quoted(self):
        assert tokens_of("'hi'") == [("string", "hi")]

    def test_doubled_quote_escape(self):
        assert tokens_of('"say ""hi"""') == [("string", 'say "hi"')]

    def test_entities_in_strings(self):
        assert tokens_of('"&lt;&amp;&#65;"') == [("string", "<&A")]

    def test_unterminated(self):
        with pytest.raises(XQueryStaticError):
            tokens_of('"oops')


class TestSymbolsAndComments:
    def test_multichar_symbols(self):
        assert tokens_of("<= >= != << >> // := .. ::") == [
            ("symbol", s)
            for s in ["<=", ">=", "!=", "<<", ">>", "//", ":=", "..", "::"]
        ]

    def test_comment_skipped(self):
        assert tokens_of("1 (: comment :) 2") == [
            ("integer", "1"),
            ("integer", "2"),
        ]

    def test_nested_comments(self):
        assert tokens_of("(: outer (: inner :) still :) 5") == [("integer", "5")]

    def test_unterminated_comment(self):
        with pytest.raises(XQueryStaticError):
            tokens_of("(: forever")

    def test_location_tracking(self):
        lexer = Lexer("1 +\n  oops")
        lexer.next_token()
        lexer.next_token()
        token = lexer.next_token()
        assert token.line == 2 and token.column == 3
