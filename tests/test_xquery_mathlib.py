"""Tests for the XQuery binary-search and trigonometry utilities.

The paper: division was used "once for binary search and the rest for
trigonometry" — so here is that code, actually running on the engine.
"""

import math

import pytest

from repro.workloads.mathlib import BINARY_SEARCH_XQ, TRIG_XQ, count_divisions
from repro.xquery import XQueryEngine

engine = XQueryEngine()


class TestBinarySearch:
    def run(self, values, target):
        source = BINARY_SEARCH_XQ + "local:binary-search($s, $t)"
        return engine.evaluate(source, variables={"s": values, "t": target})[0]

    def test_finds_each_element(self):
        values = [2, 3, 5, 8, 13, 21, 34]
        for index, value in enumerate(values, start=1):
            assert self.run(values, value) == index

    def test_absent_value(self):
        assert self.run([2, 3, 5, 8], 7) == 0

    def test_empty_sequence(self):
        assert self.run([], 1) == 0

    def test_singleton(self):
        assert self.run([9], 9) == 1
        assert self.run([9], 8) == 0

    def test_large_sorted_input(self):
        values = list(range(0, 400, 2))
        assert self.run(values, 200) == 101
        assert self.run(values, 201) == 0


class TestTrigonometry:
    def evaluate(self, expression):
        return engine.evaluate(TRIG_XQ + expression)[0]

    @pytest.mark.parametrize("degrees", [0, 30, 45, 60, 90, 180, 270])
    def test_sin_matches_math(self, degrees):
        value = self.evaluate(f"local:sin(local:to-radians({degrees}e0))")
        assert value == pytest.approx(math.sin(math.radians(degrees)), abs=1e-6)

    @pytest.mark.parametrize("degrees", [0, 30, 45, 60, 120, 180])
    def test_cos_matches_math(self, degrees):
        value = self.evaluate(f"local:cos(local:to-radians({degrees}e0))")
        assert value == pytest.approx(math.cos(math.radians(degrees)), abs=1e-6)

    def test_tan(self):
        value = self.evaluate("local:tan(local:to-radians(45e0))")
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_pythagorean_identity(self):
        value = self.evaluate(
            "let $x := local:to-radians(37e0) "
            "return local:sin($x) * local:sin($x) + local:cos($x) * local:cos($x)"
        )
        assert value == pytest.approx(1.0, abs=1e-9)


class TestPaperFootnote:
    def test_division_count_is_modest(self):
        # the paper counted 15 divisions in its whole generator; our math
        # utilities use a comparable handful.
        assert 4 <= count_divisions() <= 15
