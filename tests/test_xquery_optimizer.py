"""Optimizer tests, including the trace-eating dead-code bug."""

from repro.xquery import EngineConfig, TraceLog, XQueryEngine, parse_query
from repro.xquery.optimizer import free_variables, has_side_effects, optimize_module
from repro.xquery.parser import parse_expression


class TestConstantFolding:
    def test_arithmetic_folds(self):
        module = parse_query("1 + 2 * 3")
        stats = optimize_module(module)
        assert stats.folded_constants == 2
        assert module.body.value == 7

    def test_division_by_zero_left_for_runtime(self):
        module = parse_query("1 div 0")
        optimize_module(module)
        # still an Arithmetic node: folding must not hide runtime errors.
        assert type(module.body).__name__ == "Arithmetic"

    def test_if_with_constant_condition(self):
        module = parse_query("if (true()) then 1 else 2")
        # true() is a call, not a literal: not folded.
        optimize_module(module)
        assert type(module.body).__name__ == "IfExpr"

    def test_boolean_folding(self):
        module = parse_query("(1 eq 1) and $x")
        optimize_module(module)
        # comparisons aren't folded (by design), so the and survives.
        assert type(module.body).__name__ == "BooleanOp"

    def test_sequence_flattening(self):
        module = parse_query("(1, (), (2, 3))")
        optimize_module(module)
        # nested SequenceExprs and empties collapse at compile time
        assert len(module.body.items) == 3


class TestDeadLetElimination:
    def test_unused_pure_let_removed(self):
        module = parse_query("let $dead := 1 + 1 let $live := 2 return $live")
        stats = optimize_module(module)
        assert stats.dead_lets_removed == 1

    def test_used_let_kept(self):
        module = parse_query("let $x := 1 return $x")
        stats = optimize_module(module)
        assert stats.dead_lets_removed == 0

    def test_let_used_by_later_clause_kept(self):
        module = parse_query(
            "let $a := 1 for $i in 1 to $a where $a gt 0 return $i"
        )
        stats = optimize_module(module)
        assert stats.dead_lets_removed == 0

    def test_flwor_reduced_to_body_when_all_clauses_die(self):
        module = parse_query("let $dead := 5 return 42")
        optimize_module(module)
        assert module.body.value == 42

    def test_error_call_is_never_dead(self):
        module = parse_query("let $dead := error('boom') return 1")
        stats = optimize_module(module)
        assert stats.dead_lets_removed == 0

    def test_trace_survives_with_fixed_optimizer(self):
        module = parse_query("let $dummy := trace('x', 1) return 2")
        stats = optimize_module(module, trace_is_dead_code=False)
        assert stats.dead_lets_removed == 0
        assert stats.traces_removed == 0

    def test_trace_eaten_by_buggy_optimizer(self):
        # "the Galax compiler helpfully optimizes away — along with the
        # call to trace"
        module = parse_query("let $dummy := trace('x', 1) return 2")
        stats = optimize_module(module, trace_is_dead_code=True)
        assert stats.dead_lets_removed == 1
        assert stats.traces_removed == 1

    def test_insinuated_trace_survives_buggy_optimizer(self):
        # "LET $x := trace('x=', something)" — trace in live code survives.
        module = parse_query("let $x := trace('x=', 6 * 7) return $x + 1")
        stats = optimize_module(module, trace_is_dead_code=True)
        assert stats.traces_removed == 0


class TestEndToEndTraceBug:
    SOURCE = "let $x := 41 + 1 let $dummy := trace('x=', $x) return $x"

    def test_buggy_engine_loses_traces(self):
        engine = XQueryEngine(EngineConfig(optimize=True, trace_is_dead_code=True))
        trace = TraceLog()
        assert engine.evaluate(self.SOURCE, trace=trace) == [42]
        assert trace.messages == []

    def test_fixed_engine_keeps_traces(self):
        engine = XQueryEngine(EngineConfig(optimize=True, trace_is_dead_code=False))
        trace = TraceLog()
        assert engine.evaluate(self.SOURCE, trace=trace) == [42]
        assert trace.messages == ["x= 42"]

    def test_unoptimized_engine_keeps_traces(self):
        engine = XQueryEngine(EngineConfig(optimize=False))
        trace = TraceLog()
        engine.evaluate(self.SOURCE, trace=trace)
        assert trace.messages == ["x= 42"]

    def test_optimization_preserves_results(self):
        source = (
            "declare function local:f($n) { if ($n le 0) then () else "
            "($n, local:f($n - 1)) }; "
            "let $unused := 1 + 2 for $x in local:f(3) return $x * 2"
        )
        optimized = XQueryEngine(EngineConfig(optimize=True))
        plain = XQueryEngine(EngineConfig(optimize=False))
        assert optimized.evaluate(source) == plain.evaluate(source)


class TestAnalyses:
    def test_free_variables(self):
        expr = parse_expression("for $i in $src return $i + $other")
        assert free_variables(expr) == {"i", "src", "other"}

    def test_side_effects_detection(self):
        assert has_side_effects(parse_expression("error('x')"), False)
        assert has_side_effects(parse_expression("trace('x', 1)"), False)
        assert not has_side_effects(parse_expression("trace('x', 1)"), True)
        assert not has_side_effects(parse_expression("1 + count($x)"), False)
