"""Unit tests for the XQuery parser: grammar coverage and error reporting."""

import pytest

from repro.xquery import parse_expression, parse_query
from repro.xquery import ast as xq_ast
from repro.xquery.errors import XQueryStaticError


class TestPrimaries:
    def test_literal(self):
        expr = parse_expression("42")
        assert isinstance(expr, xq_ast.Literal) and expr.value == 42

    def test_empty_parens(self):
        assert isinstance(parse_expression("()"), xq_ast.EmptySequence)

    def test_variable(self):
        expr = parse_expression("$foo")
        assert isinstance(expr, xq_ast.VarRef) and expr.name == "foo"

    def test_context_item(self):
        assert isinstance(parse_expression("."), xq_ast.ContextItem)

    def test_sequence(self):
        expr = parse_expression("1, 2, 3")
        assert isinstance(expr, xq_ast.SequenceExpr) and len(expr.items) == 3

    def test_function_call(self):
        expr = parse_expression("concat('a', 'b')")
        assert isinstance(expr, xq_ast.FunctionCall)
        assert expr.name == "concat" and len(expr.args) == 2


class TestOperatorPrecedence:
    def test_multiplication_binds_tighter(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, xq_ast.Arithmetic) and expr.op == "+"
        assert isinstance(expr.right, xq_ast.Arithmetic) and expr.right.op == "*"

    def test_comparison_above_arithmetic(self):
        expr = parse_expression("1 + 1 eq 2")
        assert isinstance(expr, xq_ast.Comparison) and expr.style == "value"

    def test_and_above_or(self):
        expr = parse_expression("1 or 2 and 3")
        assert isinstance(expr, xq_ast.BooleanOp) and expr.op == "or"

    def test_range(self):
        expr = parse_expression("1 to 5")
        assert isinstance(expr, xq_ast.RangeExpr)

    def test_general_vs_value_comparison(self):
        assert parse_expression("$a = $b").style == "general"
        assert parse_expression("$a eq $b").style == "value"
        assert parse_expression("$a is $b").style == "node"

    def test_union_and_intersect(self):
        expr = parse_expression("$a union $b intersect $c")
        assert isinstance(expr, xq_ast.SetOp) and expr.op == "union"

    def test_unary_minus(self):
        expr = parse_expression("-$x")
        assert isinstance(expr, xq_ast.Unary)

    def test_instance_of(self):
        expr = parse_expression("$x instance of xs:integer+")
        assert isinstance(expr, xq_ast.InstanceOf)
        assert expr.sequence_type.occurrence == "+"

    def test_cast_with_optional(self):
        expr = parse_expression("$x cast as xs:integer?")
        assert isinstance(expr, xq_ast.CastAs) and expr.allow_empty


class TestPaths:
    def test_child_step(self):
        expr = parse_expression("$x/kid")
        assert isinstance(expr, xq_ast.PathExpr)
        separator, step = expr.steps[0]
        assert separator == "/" and step.axis == "child" and step.test.name == "kid"

    def test_descendant_shorthand(self):
        expr = parse_expression("$x//grandkid")
        assert expr.steps[0][0] == "//"

    def test_attribute_shorthand(self):
        expr = parse_expression("$x/@year")
        assert expr.steps[0][1].axis == "attribute"

    def test_explicit_axis(self):
        expr = parse_expression("parent::book")
        assert isinstance(expr, xq_ast.PathExpr)
        assert expr.first.axis == "parent" and expr.first.test.name == "book"

    def test_predicates(self):
        expr = parse_expression('$x/kid[@year="1983"][2]')
        step = expr.steps[0][1]
        assert len(step.predicates) == 2

    def test_kind_tests(self):
        expr = parse_expression("$x/text()")
        assert expr.steps[0][1].test.kind == "text"

    def test_wildcard(self):
        expr = parse_expression("$x/*")
        assert expr.steps[0][1].test.kind == "wildcard"

    def test_rooted_path(self):
        expr = parse_expression("/book/title")
        assert expr.anchor == "/"

    def test_filter_with_predicate(self):
        expr = parse_expression("(1,2,3)[2]")
        assert isinstance(expr, xq_ast.FilterExpr)

    def test_bare_name_is_step_not_variable(self):
        # the paper's quirk 1: x means "children named x".
        expr = parse_expression("x")
        assert isinstance(expr, xq_ast.PathExpr)
        assert expr.first.test.name == "x"


class TestFLWOR:
    def test_for_let_where_return(self):
        expr = parse_expression(
            "for $x in 1 to 10 let $y := $x * 2 where $y gt 5 return $y"
        )
        assert isinstance(expr, xq_ast.FLWOR)
        kinds = [type(clause).__name__ for clause in expr.clauses]
        assert kinds == ["ForClause", "LetClause", "WhereClause"]

    def test_positional_variable(self):
        expr = parse_expression("for $x at $i in $s return $i")
        assert expr.clauses[0].position_var == "i"

    def test_multiple_bindings_one_keyword(self):
        expr = parse_expression("for $a in 1, $b in 2 return $a + $b")
        assert len(expr.clauses) == 2

    def test_order_by(self):
        expr = parse_expression(
            "for $x in $s order by $x descending empty greatest return $x"
        )
        order = expr.clauses[-1]
        assert order.specs[0].descending and not order.specs[0].empty_least

    def test_quantified(self):
        expr = parse_expression("some $x in (1,2) satisfies $x gt 1")
        assert isinstance(expr, xq_ast.Quantified) and expr.quantifier == "some"

    def test_if_then_else(self):
        expr = parse_expression("if (1) then 2 else 3")
        assert isinstance(expr, xq_ast.IfExpr)

    def test_for_as_element_name_still_works(self):
        # "for" not followed by $var is a name test.
        expr = parse_expression("$x/for")
        assert isinstance(expr, xq_ast.PathExpr)


class TestConstructors:
    def test_direct_empty(self):
        expr = parse_expression("<a/>")
        assert isinstance(expr, xq_ast.DirectElement) and expr.name == "a"

    def test_direct_attributes(self):
        expr = parse_expression('<a x="1" y="{$v}"/>')
        assert expr.attributes[0] == ("x", ["1"])
        assert isinstance(expr.attributes[1][1][0], xq_ast.VarRef)

    def test_direct_nested_content(self):
        expr = parse_expression("<a><b>text</b>{1 + 1}</a>")
        kinds = [type(part).__name__ for part in expr.content]
        assert kinds == ["DirectElement", "Arithmetic"]

    def test_boundary_whitespace_stripped(self):
        expr = parse_expression("<a>\n  <b/>\n</a>")
        assert len(expr.content) == 1

    def test_double_brace_escape(self):
        expr = parse_expression("<a>{{literal}}</a>")
        assert expr.content[0].text == "{literal}"

    def test_computed_element(self):
        expr = parse_expression("element foo { 1 }")
        assert isinstance(expr, xq_ast.ComputedElement) and expr.name == "foo"

    def test_computed_with_name_expression(self):
        expr = parse_expression('element { concat("a","b") } { () }')
        assert expr.name is None and expr.name_expr is not None

    def test_computed_attribute(self):
        expr = parse_expression("attribute troubles { 1 }")
        assert isinstance(expr, xq_ast.ComputedAttribute)

    def test_xml_comment_constructor(self):
        expr = parse_expression("<!-- hello -->")
        assert isinstance(expr, xq_ast.DirectComment)

    def test_mismatched_tags_rejected(self):
        with pytest.raises(XQueryStaticError):
            parse_expression("<a></b>")


class TestProlog:
    def test_function_declaration(self):
        module = parse_query(
            "declare function local:double($x) { $x * 2 }; local:double(4)"
        )
        assert len(module.functions) == 1
        assert module.functions[0].name == "local:double"

    def test_typed_function(self):
        module = parse_query(
            "declare function local:f($x as xs:integer) as xs:integer { $x }; 1"
        )
        function = module.functions[0]
        assert function.params[0].declared_type is not None
        assert function.return_type is not None

    def test_variable_declaration(self):
        module = parse_query("declare variable $n := 5; $n")
        assert module.variables[0].name == "n"

    def test_external_variable(self):
        module = parse_query("declare variable $input external; $input")
        assert module.variables[0].value is None

    def test_namespace_declaration(self):
        module = parse_query('declare namespace foo = "http://x"; 1')
        assert module.namespaces == [("foo", "http://x")]

    def test_version_declaration(self):
        module = parse_query('xquery version "1.0"; 2')
        assert module.body.value == 2

    def test_reserved_function_name_rejected(self):
        with pytest.raises(XQueryStaticError):
            parse_query("declare function if($x) { $x }; 1")


class TestErrorMessages:
    def test_syntax_error_has_location(self):
        with pytest.raises(XQueryStaticError) as info:
            parse_expression("1 +\n  +")
        assert info.value.code == "XPST0003"

    def test_trailing_garbage(self):
        with pytest.raises(XQueryStaticError, match="after end"):
            parse_expression("1 1")

    def test_unclosed_paren(self):
        with pytest.raises(XQueryStaticError):
            parse_expression("(1, 2")
