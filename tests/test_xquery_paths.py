"""Evaluator tests: path expressions, axes, predicates."""

import pytest

from repro.xmlio import parse_document, parse_element
from repro.xquery import XQueryEngine, XQueryDynamicError, XQueryTypeError

engine = XQueryEngine()

LIBRARY = """
<library>
  <book year="1983"><title>Tales</title><author>A. Writer</author></book>
  <book year="2001"><title>More Tales</title><author>B. Writer</author></book>
  <magazine year="2001"><title>Glossy</title></magazine>
  <shelf><book year="1999"><title>Hidden</title></book></shelf>
</library>
"""


@pytest.fixture(scope="module")
def library():
    return parse_element(LIBRARY)


def run(source, library, **kwargs):
    return engine.evaluate(source, variables={"lib": library}, **kwargs)


class TestChildSteps:
    def test_named_children(self, library):
        assert len(run("$lib/book", library)) == 2

    def test_chained(self, library):
        titles = run("$lib/book/title", library)
        assert [t.string_value() for t in titles] == ["Tales", "More Tales"]

    def test_wildcard(self, library):
        assert len(run("$lib/*", library)) == 4

    def test_text_kind_test(self, library):
        texts = run("$lib/book/title/text()", library)
        assert texts[0].string_value() == "Tales"

    def test_missing_name_gives_empty(self, library):
        assert run("$lib/nonexistent", library) == []


class TestDescendants:
    def test_double_slash(self, library):
        assert len(run("$lib//book", library)) == 3

    def test_double_slash_from_middle(self, library):
        assert len(run("$lib/shelf//title", library)) == 1

    def test_descendant_axis_explicit(self, library):
        assert len(run("$lib/descendant::title", library)) == 4

    def test_descendant_or_self(self, library):
        result = run("$lib/descendant-or-self::library", library)
        assert len(result) == 1


class TestAttributes:
    def test_attribute_step(self, library):
        years = run("$lib/book/@year", library)
        assert [a.value for a in years] == ["1983", "2001"]

    def test_attribute_in_predicate(self, library):
        result = run('$lib/book[@year="1983"]/title', library)
        assert result[0].string_value() == "Tales"

    def test_attribute_comparison_numeric(self, library):
        result = run("$lib/book[@year > 1990]/title", library)
        assert result[0].string_value() == "More Tales"

    def test_attribute_wildcard(self, library):
        assert len(run("$lib/book[1]/@*", library)) == 1

    def test_missing_attribute_empty(self, library):
        assert run("$lib/book[1]/@nope", library) == []


class TestReverseAndSiblingAxes:
    def test_parent(self, library):
        result = run("$lib/book[1]/parent::library", library)
        assert len(result) == 1

    def test_parent_name_test_filters(self, library):
        # "parent::book gives the parent node ... but only if it is a book"
        assert len(run("$lib/book[1]/title/parent::book", library)) == 1
        assert run("$lib/book[1]/title/parent::magazine", library) == []

    def test_dotdot(self, library):
        result = run("$lib/book[1]/../magazine", library)
        assert len(result) == 1

    def test_ancestor(self, library):
        result = run("$lib/shelf/book/title/ancestor::shelf", library)
        assert len(result) == 1

    def test_following_sibling(self, library):
        result = run("$lib/book[1]/following-sibling::*", library)
        assert len(result) == 3

    def test_preceding_sibling(self, library):
        result = run("$lib/magazine/preceding-sibling::book", library)
        assert len(result) == 2

    def test_self_axis(self, library):
        assert len(run("$lib/book[1]/self::book", library)) == 1
        assert run("$lib/book[1]/self::magazine", library) == []


class TestPredicates:
    def test_numeric_predicate(self, library):
        result = run("$lib/book[2]/title", library)
        assert result[0].string_value() == "More Tales"

    def test_last_function(self, library):
        result = run("$lib/book[last()]/@year", library)
        assert result[0].value == "2001"

    def test_position_function(self, library):
        result = run("$lib/*[position() ge 3]", library)
        assert len(result) == 2

    def test_boolean_predicate(self, library):
        result = run("$lib/book[author]", library)
        assert len(result) == 2

    def test_predicate_on_sequence(self, library):
        assert run("(10, 20, 30)[2]", library) == [20]
        assert run("(10, 20, 30)[. gt 15]", library) == [20, 30]

    def test_stacked_predicates_apply_per_context_node(self, library):
        # //book[P][1] filters within each parent's children — the classic
        # XPath trap; the global first needs (...)[1].
        result = run("$lib//book[@year > 1990][1]", library)
        assert [b.get_attribute("year") for b in result] == ["2001", "1999"]
        global_first = run("($lib//book[@year > 1990])[1]", library)
        assert global_first[0].get_attribute("year") == "2001"

    def test_out_of_range_numeric(self, library):
        assert run("$lib/book[99]", library) == []


class TestQuantifiers:
    def test_paper_example_shape(self, library):
        # some $y in $x/kids satisfies count($y//foo) gt count($y//bar)
        source = (
            "some $b in $lib/book satisfies count($b//author) gt count($b//editor)"
        )
        assert run(source, library) == [True]

    def test_every(self, library):
        assert run("every $b in $lib//book satisfies $b/title", library) == [True]
        assert run(
            "every $b in $lib//book satisfies $b/@year < 2000", library
        ) == [False]


class TestDocumentOrderNormalization:
    def test_union_sorts_and_dedupes(self, library):
        result = run("($lib/magazine | $lib/book | $lib/book)", library)
        names = [n.name for n in result]
        assert names == ["book", "book", "magazine"]

    def test_intersect(self, library):
        result = run("$lib/* intersect $lib/book", library)
        assert len(result) == 2

    def test_except(self, library):
        result = run("$lib/* except $lib/book", library)
        assert [n.name for n in result] == ["magazine", "shelf"]

    def test_set_op_on_atomics_fails(self, library):
        with pytest.raises(XQueryTypeError):
            run("(1,2) union (2,3)", library)

    def test_parent_step_dedupes(self, library):
        # two titles share no parent, three books do share the library.
        result = run("$lib//book/ancestor::library", library)
        assert len(result) == 1


class TestRootedPaths:
    def test_rooted_from_document(self):
        document = parse_document(LIBRARY)
        result = engine.evaluate("/library/book", context_item=document)
        assert len(result) == 2

    def test_double_slash_root(self):
        document = parse_document(LIBRARY)
        result = engine.evaluate("//title", context_item=document)
        assert len(result) == 4

    def test_path_on_atomic_is_error(self, library):
        with pytest.raises((XQueryTypeError, XQueryDynamicError)):
            run("(1)/x", library)

    def test_context_item_paths(self, library):
        result = engine.evaluate("book/title", context_item=library)
        assert len(result) == 2
