"""Tests for the static checker and the type-metastasis measurement."""

from repro.xquery import parse_query
from repro.xquery.statictype import annotation_pressure, call_graph, check_module


class TestChecker:
    def test_clean_module(self):
        module = parse_query(
            "declare function local:f($x) { $x + 1 }; local:f(2)"
        )
        assert check_module(module) == []

    def test_undefined_variable(self):
        issues = check_module(parse_query("$nope"))
        assert [issue.code for issue in issues] == ["XPST0008"]

    def test_flwor_scoping_understood(self):
        module = parse_query("for $x in 1 to 3 let $y := $x return $x + $y")
        assert check_module(module) == []

    def test_leak_out_of_flwor_detected(self):
        module = parse_query("(for $x in 1 to 3 return $x), $x")
        issues = check_module(module)
        assert any(issue.code == "XPST0008" for issue in issues)

    def test_quantifier_scoping(self):
        module = parse_query("some $q in (1,2) satisfies $q gt 1")
        assert check_module(module) == []

    def test_unknown_function(self):
        issues = check_module(parse_query("no-such-fn(1)"))
        assert [issue.code for issue in issues] == ["XPST0017"]

    def test_wrong_arity_is_unknown(self):
        issues = check_module(parse_query("count(1, 2, 3)"))
        assert [issue.code for issue in issues] == ["XPST0017"]

    def test_function_params_in_scope(self):
        module = parse_query("declare function local:f($a, $b) { $a + $b }; 1")
        assert check_module(module) == []

    def test_globals_visible_in_functions(self):
        module = parse_query(
            "declare variable $g := 1; "
            "declare function local:f() { $g }; local:f()"
        )
        assert check_module(module) == []

    def test_issue_has_location_and_rendering(self):
        issues = check_module(parse_query("$nope"))
        assert "line 1" in str(issues[0])


class TestMetastasis:
    MODULE = """
    declare function local:a($x as xs:integer) as xs:integer { local:b($x) };
    declare function local:b($x) { local:c($x) };
    declare function local:c($x) { $x };
    declare function local:island($x) { $x };
    local:a(1)
    """

    def test_call_graph(self):
        graph = call_graph(parse_query(self.MODULE))
        assert graph["a"] == {"b"}
        assert graph["b"] == {"c"}
        assert graph["island"] == set()

    def test_pressure_drags_in_connected_functions(self):
        # annotating `a` drags in b and c (they exchange values with it),
        # but not the island — "once types are used somewhere, they
        # rapidly metastatize".
        report = annotation_pressure(parse_query(self.MODULE))
        assert report["annotated"] == 1
        assert report["dragged_in"] == 2
        assert report["touched"] == 3
        assert report["pressure"] == 3.0

    def test_untyped_module_has_no_pressure(self):
        module = parse_query(
            "declare function local:f($x) { $x }; local:f(1)"
        )
        report = annotation_pressure(module)
        assert report["annotated"] == 0 and report["pressure"] == 0.0


class TestAnnotationPressureEdges:
    def test_empty_module(self):
        report = annotation_pressure(parse_query("42"))
        assert report == {
            "functions": 0,
            "annotated": 0,
            "dragged_in": 0,
            "touched": 0,
            "pressure": 0.0,
        }

    def test_fully_annotated_module_has_pressure_one(self):
        module = parse_query(
            "declare function local:a($x as item()) as item() { local:b($x) };"
            "declare function local:b($x as item()) as item() { $x };"
            "local:a(1)"
        )
        report = annotation_pressure(module)
        assert report["annotated"] == 2
        assert report["dragged_in"] == 0
        assert report["pressure"] == 1.0

    def test_param_annotation_alone_counts(self):
        module = parse_query(
            "declare function local:a($x as item()) { $x }; local:a(1)"
        )
        assert annotation_pressure(module)["annotated"] == 1
