"""Tests for the try/catch extension — lesson 4 made real.

XQuery 3.0 (2014) added try/catch, validating the paper's fourth lesson a
decade later.  This engine implements a simplified form as an extension.
"""

import pytest

from repro.workloads import nested_input, trycatch_chain_program
from repro.xquery import XQueryEngine, XQueryStaticError, XQueryUserError
from repro.xquery.statictype import check_module
from repro.xquery import parse_query

engine = XQueryEngine()


def run(source, **kwargs):
    return engine.evaluate(source, **kwargs)


class TestTryCatch:
    def test_no_error_returns_body(self):
        assert run("try { 42 } catch { 'unused' }") == [42]

    def test_dynamic_error_caught(self):
        assert run("try { 1 div 0 } catch { 'saved' }") == ["saved"]

    def test_fn_error_caught(self):
        assert run("try { error('boom') } catch { 'caught' }") == ["caught"]

    def test_catch_variable_carries_code_and_message(self):
        result = run(
            "try { error('boom') } catch $e "
            "{ concat(string($e/@code), '/', string($e/message)) }"
        )
        assert result == ["FOER0000/boom"]

    def test_division_error_code(self):
        result = run("try { 1 idiv 0 } catch $e { string($e/@code) }")
        assert result == ["FOAR0001"]

    def test_missing_variable_caught(self):
        assert run("try { $nope } catch { 'undefined' }") == ["undefined"]

    def test_nested_try(self):
        source = (
            "try { try { error('inner') } catch { error('outer') } } "
            "catch $e { string($e/message) }"
        )
        assert run(source) == ["outer"]

    def test_handler_errors_propagate(self):
        with pytest.raises(XQueryUserError, match="from-handler"):
            run("try { 1 div 0 } catch { error('from-handler') }")

    def test_static_errors_not_caught(self):
        # a syntax error inside try is still a compile-time error.
        with pytest.raises(XQueryStaticError):
            run("try { 1 + } catch { 'nope' }")

    def test_try_inside_flwor(self):
        source = (
            "for $d in (2, 0, 4) return "
            "try { 8 idiv $d } catch { 'div0' }"
        )
        assert run(source) == [4, "div0", 2]

    def test_checker_scopes_catch_variable(self):
        module = parse_query("try { 1 } catch $e { $e }")
        assert check_module(module) == []

    def test_try_as_element_name_still_parses(self):
        result = run("<r><try>x</try></r>/try/text()")
        assert result[0].string_value() == "x"


class TestTryCatchChainWorkload:
    def test_healthy_chain(self):
        program = trycatch_chain_program(6)
        result = run(program, variables={"input": nested_input(6)})
        assert result[0].name == "done"

    def test_broken_chain_reports_level(self):
        program = trycatch_chain_program(6)
        result = run(program, variables={"input": nested_input(6, break_at=4)})
        assert result[0].name == "failed"
        assert "c4" in result[0].string_value()

    def test_chain_is_one_line_per_call(self):
        # the whole point: the error regime stops inflating the code.
        program = trycatch_chain_program(16)
        lets = [l for l in program.splitlines() if l.strip().startswith("let $c1")]
        body = [
            line
            for line in program.splitlines()
            if line.strip().startswith("let $c")
            and "required-child" in line
        ]
        assert len(body) == 16  # exactly one line per fetch
