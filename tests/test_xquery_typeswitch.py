"""Tests for typeswitch — the draft type system's dispatch expression."""

import pytest

from repro.xquery import XQueryEngine, XQueryStaticError
from repro.xquery.statictype import check_module
from repro.xquery import parse_query

engine = XQueryEngine()


def run(source, **kwargs):
    return engine.evaluate(source, **kwargs)


class TestTypeswitch:
    def test_dispatch_on_atomic_type(self):
        source = (
            "typeswitch (5) case xs:string return 's' "
            "case xs:integer return 'i' default return 'd'"
        )
        assert run(source) == ["i"]

    def test_first_matching_case_wins(self):
        source = (
            "typeswitch (5) case xs:decimal return 'decimal' "
            "case xs:integer return 'integer' default return 'd'"
        )
        # integer derives from decimal, so the first case matches.
        assert run(source) == ["decimal"]

    def test_default(self):
        source = (
            "typeswitch ('x') case xs:integer return 'i' default return 'd'"
        )
        assert run(source) == ["d"]

    def test_case_variable_binding(self):
        source = (
            "typeswitch (<a year='1'/>) "
            "case $e as element(a) return string($e/@year) "
            "default return 'no'"
        )
        assert run(source) == ["1"]

    def test_default_variable_binding(self):
        source = (
            "typeswitch ((1,2,3)) case xs:integer return 'one' "
            "default $seq return count($seq)"
        )
        assert run(source) == [3]

    def test_occurrence_indicators(self):
        source = (
            "typeswitch ((1,2)) case xs:integer return 'one' "
            "case xs:integer+ return 'many' default return 'other'"
        )
        assert run(source) == ["many"]

    def test_empty_sequence_case(self):
        source = (
            "typeswitch (()) case empty-sequence() return 'empty' "
            "default return 'full'"
        )
        assert run(source) == ["empty"]

    def test_node_kind_cases(self):
        source = (
            "typeswitch (attribute a {1}) "
            "case element() return 'element' "
            "case attribute() return 'attribute' "
            "default return 'other'"
        )
        assert run(source) == ["attribute"]

    def test_requires_case_clause(self):
        with pytest.raises(XQueryStaticError):
            run("typeswitch (1) default return 'd'")

    def test_error_convention_dispatch(self):
        # the docgen idiom typeswitch enables: dispatch on <error> returns.
        source = """
        declare function local:risky($x) {
          if ($x lt 0) then <error><message>negative</message></error>
          else $x * 2
        };
        for $input in (3, -1)
        return
          typeswitch (local:risky($input))
            case $err as element(error) return concat("failed: ", $err/message)
            default $v return $v
        """
        assert run(source) == [6, "failed: negative"]

    def test_static_checker_sees_case_variables(self):
        module = parse_query(
            "typeswitch (1) case $v as xs:integer return $v default $d return $d"
        )
        assert check_module(module) == []

    def test_typeswitch_as_element_name_still_parses(self):
        # `typeswitch` not followed by "(" is an ordinary name test.
        result = run("<r><typeswitch>x</typeswitch></r>/typeswitch/text()")
        assert result[0].string_value() == "x"
