"""Use-case queries in the style of the W3C XQuery use cases [UC].

The paper: "The example XQuery programs from the XQuery use cases [UC]
are a few tens of lines; our program, by the end, was a few thousands of
lines."  This suite runs a bibliography of XMP-style queries — the kind
of program XQuery was designed and sized for — through the engine,
checking the exact output documents.
"""

import pytest

from repro.xmlio import parse_document
from repro.xquery import XQueryEngine

engine = XQueryEngine()

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>
"""

REVIEWS = """
<reviews>
  <entry>
    <title>Data on the Web</title>
    <price>34.95</price>
    <review>A very good discussion of semi-structured database systems.</review>
  </entry>
  <entry>
    <title>Advanced Programming in the Unix environment</title>
    <price>65.95</price>
    <review>A clear and detailed discussion of UNIX programming.</review>
  </entry>
  <entry>
    <title>TCP/IP Illustrated</title>
    <price>65.95</price>
    <review>One of the best books on TCP/IP.</review>
  </entry>
</reviews>
"""


@pytest.fixture(scope="module")
def bib():
    return parse_document(BIB)


@pytest.fixture(scope="module")
def reviews():
    return parse_document(REVIEWS)


def run_text(source, **variables):
    return engine.evaluate_to_string(source, variables=variables)


class TestXmpUseCases:
    def test_q1_books_after_1991_by_publisher(self, bib):
        # Q1: list books published by Addison-Wesley after 1991.
        result = run_text(
            """
            <bib>{
              for $b in $bib/bib/book
              where $b/publisher = "Addison-Wesley" and $b/@year > 1991
              return <book year="{string($b/@year)}">{ $b/title }</book>
            }</bib>
            """,
            bib=bib,
        )
        assert result == (
            '<bib><book year="1994"><title>TCP/IP Illustrated</title></book>'
            '<book year="1992">'
            "<title>Advanced Programming in the Unix environment</title>"
            "</book></bib>"
        )

    def test_q2_flat_title_author_pairs(self, bib):
        # Q2: one <result> per author-title pair.
        result = engine.evaluate(
            """
            for $b in $bib/bib/book, $t in $b/title, $a in $b/author
            return <result>{ $t }{ $a }</result>
            """,
            variables={"bib": bib},
        )
        assert len(result) == 5  # 1 + 1 + 3 authors

    def test_q3_titles_with_grouped_authors(self, bib):
        # Q3: each book's title with all its authors.
        result = engine.evaluate(
            "for $b in $bib/bib/book return "
            "<result>{ $b/title }{ $b/author }</result>",
            variables={"bib": bib},
        )
        data_on_web = result[2]
        assert len(data_on_web.child_elements("author")) == 3

    def test_q4_books_per_author(self, bib):
        # Q4: invert — for each author, the titles they wrote.
        result = engine.evaluate(
            """
            for $last in distinct-values($bib//author/last)
            order by $last
            return
              <result>
                <author>{ $last }</author>
                {
                  for $b in $bib/bib/book
                  where some $a in $b/author satisfies $a/last = $last
                  return $b/title
                }
              </result>
            """,
            variables={"bib": bib},
        )
        lasts = [r.first_child_element("author").string_value() for r in result]
        assert lasts == sorted(lasts)
        stevens = [r for r in result if "Stevens" in lasts[result.index(r)]]
        assert len(result[lasts.index("Stevens")].child_elements("title")) == 2

    def test_q5_join_with_reviews(self, bib, reviews):
        # Q5: join books with review prices by title.
        result = engine.evaluate(
            """
            <books-with-prices>{
              for $b in $bib//book, $a in $reviews//entry
              where $b/title = $a/title
              order by string($b/title)
              return
                <book-with-prices>
                  { $b/title }
                  <price-review>{ string($a/price) }</price-review>
                  <price>{ string($b/price) }</price>
                </book-with-prices>
            }</books-with-prices>
            """,
            variables={"bib": bib, "reviews": reviews},
        )
        books = result[0].child_elements("book-with-prices")
        assert len(books) == 3
        data = books[1]
        assert data.first_child_element("title").string_value() == (
            "Data on the Web"
        )
        assert data.first_child_element("price-review").string_value() == "34.95"
        assert data.first_child_element("price").string_value() == "39.95"

    def test_q6_books_with_multiple_authors_abbreviated(self, bib):
        # Q6: books with more than two authors get "et al." treatment.
        result = engine.evaluate(
            """
            for $b in $bib//book
            where count($b/author) gt 0
            return
              <book>
                { $b/title }
                { $b/author[position() le 2] }
                { if (count($b/author) gt 2) then <et-al/> else () }
              </book>
            """,
            variables={"bib": bib},
        )
        assert len(result) == 3
        data_on_web = result[2]
        assert len(data_on_web.child_elements("author")) == 2
        assert data_on_web.first_child_element("et-al") is not None

    def test_q7_sorted_expensive_books(self, bib):
        # Q7: titles and years of books over $60, newest first.
        result = run_text(
            """
            <bib>{
              for $b in $bib//book
              where number($b/price) gt 60
              order by string($b/@year) descending
              return <book year="{string($b/@year)}">{ $b/title }</book>
            }</bib>
            """,
            bib=bib,
        )
        assert result.index("1994") < result.index("1992")
        assert "129.95" not in result  # price isn't output
        assert "Economics" in result

    def test_q10_price_statistics(self, bib):
        # Q10-flavoured: min/max/avg price summary.
        result = run_text(
            """
            <prices>
              <minimum>{ min($bib//price/number(.)) }</minimum>
              <maximum>{ max($bib//price/number(.)) }</maximum>
              <count>{ count($bib//price) }</count>
            </prices>
            """,
            bib=bib,
        )
        assert "<minimum>39.95</minimum>" in result
        assert "<maximum>129.95</maximum>" in result
        assert "<count>4</count>" in result

    def test_q11_books_without_authors_have_editors(self, bib):
        # Q11: books with editors instead of authors.
        result = engine.evaluate(
            """
            for $b in $bib//book[editor]
            return <reference>{ $b/title }{ $b/editor/last }</reference>
            """,
            variables={"bib": bib},
        )
        assert len(result) == 1
        assert result[0].first_child_element("last").string_value() == "Gerbarg"

    def test_q12_pairs_of_books_same_authors(self, bib):
        # Q12-flavoured: pairs of distinct books sharing an author.
        result = engine.evaluate(
            """
            for $b1 in $bib//book, $b2 in $bib//book
            where string($b1/title) lt string($b2/title)
              and (some $a1 in $b1/author satisfies
                     (some $a2 in $b2/author satisfies
                        string($a1/last) eq string($a2/last)))
            return
              <pair>{ string($b1/title) } | { string($b2/title) }</pair>
            """,
            variables={"bib": bib},
        )
        assert len(result) == 1
        assert "TCP/IP" in result[0].string_value()

    def test_use_case_program_sizes(self):
        # the paper's observation: these programs are "a few tens of
        # lines" — confirm our renditions stay in that register.
        import inspect

        source = inspect.getsource(TestXmpUseCases)
        queries = source.count('"""') // 2
        assert queries >= 8
