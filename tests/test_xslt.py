"""Tests for the mini-XSLT processor."""

import pytest

from repro.xmlio import parse_document, serialize
from repro.xslt import StylesheetError, parse_match_pattern, parse_stylesheet, transform


def apply(stylesheet, xml):
    result = transform(stylesheet, parse_document(xml))
    return "".join(serialize(node) for node in result)


class TestMatchPatterns:
    def test_name_pattern(self):
        pattern = parse_match_pattern("book")
        document = parse_document("<book/>")
        assert pattern.matches(document.document_element())

    def test_path_pattern(self):
        pattern = parse_match_pattern("library/book")
        document = parse_document("<library><book/></library>")
        book = document.document_element().children[0]
        assert pattern.matches(book)
        lone = parse_document("<shop><book/></shop>").document_element().children[0]
        assert not pattern.matches(lone)

    def test_root_pattern(self):
        assert parse_match_pattern("/").matches(parse_document("<a/>"))

    def test_text_pattern(self):
        document = parse_document("<a>t</a>")
        text = document.document_element().children[0]
        assert parse_match_pattern("text()").matches(text)

    def test_wildcard(self):
        pattern = parse_match_pattern("*")
        assert pattern.matches(parse_document("<x/>").document_element())

    def test_specificity_ordering(self):
        assert (
            parse_match_pattern("a/b").specificity
            > parse_match_pattern("b").specificity
            > parse_match_pattern("*").specificity
        )

    def test_unsupported_pattern(self):
        with pytest.raises(StylesheetError):
            parse_match_pattern("a[1]")


class TestTransform:
    def test_literal_result(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="/"><out>fixed</out></xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<a/>") == "<out>fixed</out>"

    def test_value_of(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="book"><t><xsl:value-of select="title"/></t></xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<book><title>X</title></book>") == "<t>X</t>"

    def test_apply_templates_recurses(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="library"><list><xsl:apply-templates/></list></xsl:template>
          <xsl:template match="book"><item><xsl:value-of select="@id"/></item></xsl:template>
        </xsl:stylesheet>"""
        xml = '<library><book id="1"/><book id="2"/></library>'
        assert apply(stylesheet, xml) == "<list><item>1</item><item>2</item></list>"

    def test_apply_templates_with_select(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="/"><xsl:apply-templates select="lib/book"/></xsl:template>
          <xsl:template match="book"><b/></xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<lib><book/><mag/><book/></lib>") == "<b/><b/>"

    def test_copy_of(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="/"><xsl:copy-of select="r/keep"/></xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<r><keep x='1'>t</keep><drop/></r>") == '<keep x="1">t</keep>'

    def test_for_each(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="/">
            <ul><xsl:for-each select="r/v"><li><xsl:value-of select="."/></li></xsl:for-each></ul>
          </xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<r><v>1</v><v>2</v></r>") == "<ul><li>1</li><li>2</li></ul>"

    def test_if(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="v">
            <xsl:if test=". > 5"><big><xsl:value-of select="."/></big></xsl:if>
          </xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<r><v>3</v><v>9</v></r>") == "<big>9</big>"

    def test_builtin_rules_copy_text(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="b"><boom/></xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<a>keep<b>drop</b></a>") == "keep<boom/>"

    def test_more_specific_template_wins(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="*"><any/></xsl:template>
          <xsl:template match="special"><yes/></xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<special/>") == "<yes/>"

    def test_stream_split_use_case(self):
        # the paper's actual use: splitting output streams apart.
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="/">
            <xsl:copy-of select="output-streams/document/child::node()"/>
          </xsl:template>
        </xsl:stylesheet>"""
        xml = (
            "<output-streams><document><html><p>D</p></html></document>"
            "<problems><problem>P</problem></problems></output-streams>"
        )
        assert apply(stylesheet, xml) == "<html><p>D</p></html>"

    def test_unknown_instruction(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="/"><xsl:wat select="."/></xsl:template>
        </xsl:stylesheet>"""
        with pytest.raises(StylesheetError):
            apply(stylesheet, "<a/>")

    def test_bad_top_level(self):
        with pytest.raises(StylesheetError):
            parse_stylesheet("<xsl:stylesheet><div/></xsl:stylesheet>")


class TestExtendedInstructions:
    def test_choose_when_otherwise(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="v">
            <xsl:choose>
              <xsl:when test=". > 5"><big/></xsl:when>
              <xsl:when test=". > 2"><mid/></xsl:when>
              <xsl:otherwise><small/></xsl:otherwise>
            </xsl:choose>
          </xsl:template>
        </xsl:stylesheet>"""
        xml = "<r><v>9</v><v>4</v><v>1</v></r>"
        assert apply(stylesheet, xml) == "<big/><mid/><small/>"

    def test_choose_no_match_no_otherwise(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="v">
            <xsl:choose><xsl:when test=". > 100"><x/></xsl:when></xsl:choose>
          </xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<r><v>1</v></r>") == ""

    def test_choose_rejects_stray_children(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="/">
            <xsl:choose><div/></xsl:choose>
          </xsl:template>
        </xsl:stylesheet>"""
        with pytest.raises(StylesheetError):
            apply(stylesheet, "<a/>")

    def test_computed_attribute(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="book">
            <entry>
              <xsl:attribute name="title"><xsl:value-of select="@name"/></xsl:attribute>
            </entry>
          </xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, '<book name="Dune"/>') == '<entry title="Dune"/>'

    def test_literal_text_instruction(self):
        stylesheet = """
        <xsl:stylesheet>
          <xsl:template match="/"><out><xsl:text>  spaced  </xsl:text></out></xsl:template>
        </xsl:stylesheet>"""
        assert apply(stylesheet, "<a/>") == "<out>  spaced  </out>"
